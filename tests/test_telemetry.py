"""Tests for repro.telemetry: registry, tracer, profiler, handle,
exporters, and the campaign-level invariants.

The two headline invariants:

* **Determinism** — enabling telemetry changes nothing about the
  campaign: the exported dataset is byte-identical with telemetry on
  or off, fault-free and hostile alike.
* **Cumulative across process lives** — a campaign killed at a day
  boundary and resumed reports one telemetry record spanning both
  process lives: life-1 spans survive inside the anchor, life-2 spans
  accumulate after restore.
"""

import hashlib
import json
import pickle
import re

import pytest

from repro.core.study import Study, StudyConfig
from repro.io import save_dataset
from repro.reporting import render_telemetry
from repro.telemetry import (
    DEFAULT_BUCKETS,
    JSONL_NAME,
    PROMETHEUS_NAME,
    REPORT_NAME,
    STAGE_ORDER,
    MetricsRegistry,
    Profiler,
    Telemetry,
    Tracer,
    export_telemetry,
    render_prometheus,
)

pytestmark = pytest.mark.telemetry

#: Small but complete campaign: discovery, monitoring, a join day,
#: and enough post-join days to exercise every instrumented stage.
N_DAYS = 6


def _config(faults=None, **overrides):
    base = dict(
        seed=7,
        n_days=N_DAYS,
        scale=0.004,
        message_scale=0.05,
        join_day=3,
        faults=faults,
    )
    base.update(overrides)
    return StudyConfig(**base)


def _export_digest(dataset, tmp_path, name):
    """SHA-256 of the dataset's exact on-disk export."""
    path = tmp_path / f"{name}.json"
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


# -- registry ----------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("calls_total", platform="whatsapp")
        reg.inc("calls_total", 2.0, platform="whatsapp")
        reg.inc("calls_total", platform="discord")
        assert reg.counter("calls_total", platform="whatsapp") == 3.0
        assert reg.counter("calls_total", platform="discord") == 1.0
        assert reg.counter_total("calls_total") == 4.0
        assert reg.counter("calls_total", platform="telegram") == 0.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.inc("calls_total", -1.0)

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.inc("bad name!")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("records", 10.0)
        reg.set_gauge("records", 7.0)
        assert reg.gauge("records") == 7.0
        assert reg.gauge("never_set") is None

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        for value in (0.0004, 0.003, 0.4, 99.0):
            reg.observe("op_seconds", value)
        hist = reg.histogram("op_seconds")
        assert hist.count == 4
        assert hist.total == pytest.approx(0.0004 + 0.003 + 0.4 + 99.0)
        assert hist.minimum == pytest.approx(0.0004)
        assert hist.maximum == pytest.approx(99.0)
        assert hist.mean == pytest.approx(hist.total / 4)
        cumulative = hist.cumulative_buckets()
        assert [le for le, _ in cumulative] == (
            list(DEFAULT_BUCKETS) + [float("inf")]
        )
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert counts[-1] == 4, "+Inf bucket must cover every observation"

    def test_series_is_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.inc("b_total", platform="z")
        reg.inc("b_total", platform="a")
        reg.inc("a_total")
        reg.set_gauge("g", 1.0)
        reg.observe("h_seconds", 0.1)
        listing = [(kind, name, labels) for kind, name, labels, _ in reg.series()]
        assert listing == [
            ("counter", "a_total", ()),
            ("counter", "b_total", (("platform", "a"),)),
            ("counter", "b_total", (("platform", "z"),)),
            ("gauge", "g", ()),
            ("histogram", "h_seconds", ()),
        ]
        assert len(reg) == 5


# -- tracer ------------------------------------------------------------------

class TestTracer:
    def test_spans_nest_and_record_parents(self):
        tracer = Tracer()
        with tracer.span("outer", stage="discovery", day=3):
            with tracer.span("inner", stage="discovery", day=3):
                pass
        inner, outer = tracer.spans  # completion order: inner closes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.top_level()] == ["outer"]
        assert all(s.life == 1 for s in tracer.spans)
        assert all(s.wall_s >= 0.0 for s in tracer.spans)

    def test_record_externally_timed_span(self):
        tracer = Tracer()
        record = tracer.record(
            "checkpoint.write_day", stage="checkpoint", wall_s=1.5, day=4
        )
        assert record.wall_s == 1.5
        assert record.parent_id is None
        assert len(tracer) == 1

    def test_pickle_bumps_life_and_drops_open_spans(self):
        tracer = Tracer()
        with tracer.span("done", stage="world", day=0):
            pass
        with tracer.span("open", stage="world", day=1):
            clone = pickle.loads(pickle.dumps(tracer))
        assert clone.life == 2
        assert clone._stack == [], "open spans must not survive a restore"
        assert [s.name for s in clone.spans] == ["done"]
        # The original tracer keeps working after being pickled.
        assert [s.name for s in tracer.spans] == ["done", "open"]
        assert tracer.life == 1


# -- profiler ----------------------------------------------------------------

class TestProfiler:
    def test_stage_budget_rolls_up_top_level_spans(self):
        tracer = Tracer()
        tracer.record("a", stage="discovery", wall_s=3.0, day=0)
        tracer.record("b", stage="discovery", wall_s=1.0, day=1)
        tracer.record("c", stage="analysis", wall_s=4.0, day=1)
        tracer.record("z", stage="custom", wall_s=2.0)
        profiler = Profiler(tracer)
        budgets = {b.stage: b for b in profiler.stage_budget()}
        assert budgets["discovery"].spans == 2
        assert budgets["discovery"].wall_s == pytest.approx(4.0)
        assert budgets["discovery"].share == pytest.approx(0.4)
        assert budgets["discovery"].mean_s == pytest.approx(2.0)
        # Known stages render in STAGE_ORDER; ad-hoc stages sort after.
        stages = [b.stage for b in profiler.stage_budget()]
        assert stages == ["discovery", "analysis", "custom"]
        assert profiler.total_wall_s() == pytest.approx(10.0)
        assert sum(b.share for b in profiler.stage_budget()) == pytest.approx(1.0)

    def test_nested_spans_not_double_counted(self):
        tracer = Tracer()
        with tracer.span("outer", stage="monitor", day=0):
            with tracer.span("inner", stage="monitor", day=0):
                pass
        profiler = Profiler(tracer)
        assert profiler.stage_budget()[0].spans == 1

    def test_days_covered_filters_by_life(self):
        tracer = Tracer()
        tracer.record("a", stage="world", wall_s=0.0, day=0)
        tracer.record("b", stage="world", wall_s=0.0, day=2)
        restored = pickle.loads(pickle.dumps(tracer))
        restored.record("c", stage="world", wall_s=0.0, day=2)
        restored.record("d", stage="world", wall_s=0.0, day=5)
        profiler = Profiler(restored)
        assert profiler.days_covered() == [0, 2, 5]
        assert profiler.days_covered(life=1) == [0, 2]
        assert profiler.days_covered(life=2) == [2, 5]


# -- handle ------------------------------------------------------------------

class TestTelemetryHandle:
    def test_disabled_by_default_records_nothing(self):
        tel = Telemetry()
        assert not tel.enabled
        tel.count("calls_total")
        tel.gauge("records", 5.0)
        tel.observe("op_seconds", 0.1)
        with tel.span("work", stage="discovery", day=0):
            pass
        tel.record_span("late", stage="checkpoint", wall_s=1.0)
        assert len(tel.metrics) == 0
        assert len(tel.tracer) == 0
        assert tel.clock() == 0.0, "disabled handle must not read the clock"

    def test_enabled_records_everything(self):
        tel = Telemetry().enable()
        tel.count("calls_total", platform="discord")
        tel.observe("op_seconds", 0.2)
        with tel.span("work", stage="discovery", day=0):
            pass
        assert tel.metrics.counter("calls_total", platform="discord") == 1.0
        assert tel.histogram("op_seconds").count == 1
        assert len(tel.tracer) == 1
        assert tel.clock() > 0.0
        tel.disable()
        tel.count("calls_total", platform="discord")
        assert tel.metrics.counter("calls_total", platform="discord") == 1.0
        assert tel.process_lives == 1


# -- campaign instrumentation ------------------------------------------------

class TestStudyInstrumentation:
    @pytest.fixture(scope="class")
    def telemetered_study(self):
        study = Study(_config())
        study.telemetry.enable()
        dataset = study.run()
        return study, dataset

    def test_off_by_default(self):
        study = Study(_config(n_days=2, join_day=1))
        study.run()
        assert len(study.telemetry.metrics) == 0
        assert len(study.telemetry.tracer) == 0

    def test_every_pipeline_stage_traced(self, telemetered_study):
        study, _ = telemetered_study
        stages = {b.stage for b in study.telemetry.profiler().stage_budget()}
        assert {
            "world", "discovery", "monitor", "control", "join", "analysis",
        } <= stages
        assert study.telemetry.profiler().days_covered() == list(range(N_DAYS))

    def test_every_layer_reports_metrics(self, telemetered_study):
        study, dataset = telemetered_study
        metrics = study.telemetry.metrics
        # Twitter services, discovery, monitor, joiner, resilience.
        assert metrics.counter("twitter_api_calls_total", api="search") > 0
        assert metrics.counter("twitter_api_calls_total", api="stream") > 0
        assert metrics.counter_total("discovery_polls_total") > 0
        assert metrics.counter_total("discovery_tweets_total") > 0
        assert metrics.counter_total("monitor_snapshots_total") > 0
        assert metrics.counter_total("platform_lookups_total") > 0
        assert metrics.counter_total("resilience_attempts_total") > 0
        assert metrics.counter_total("join_joined_total") > 0
        assert metrics.counter_total("collect_groups_total") == len(
            dataset.joined
        )
        assert metrics.counter_total("collect_messages_total") == sum(
            data.n_messages for data in dataset.joined
        )
        assert metrics.gauge("discovery_records") == len(dataset.records)
        assert (
            metrics.counter("campaign_days_total", mode="run") == N_DAYS
        )

    def test_run_spans_labeled_run_not_replay(self, telemetered_study):
        study, _ = telemetered_study
        modes = {
            dict(s.labels).get("mode")
            for s in study.telemetry.tracer.spans
            if dict(s.labels).get("mode")
        }
        assert modes == {"run"}


# -- exporters ---------------------------------------------------------------

@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """A telemetered campaign exported to disk (all three artefacts)."""
    study = Study(_config())
    study.telemetry.enable()
    study.run()
    directory = tmp_path_factory.mktemp("telemetry")
    report = render_telemetry(study.telemetry)
    paths = export_telemetry(study.telemetry, directory, report=report)
    return study, directory, paths


class TestExporters:
    def test_writes_all_three_artefacts(self, exported):
        _, directory, paths = exported
        assert paths["jsonl"] == directory / JSONL_NAME
        assert paths["prometheus"] == directory / PROMETHEUS_NAME
        assert paths["report"] == directory / REPORT_NAME
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_jsonl_streams_line_by_line(self, exported):
        study, _, paths = exported
        lines = paths["jsonl"].read_text().splitlines()
        events = [json.loads(line) for line in lines]
        meta = events[0]
        assert meta["event"] == "meta"
        assert meta["process_lives"] == 1
        assert meta["n_spans"] == len(study.telemetry.tracer)
        kinds = {e["event"] for e in events[1:]}
        assert {"span", "counter", "gauge", "histogram"} <= kinds
        spans = [e for e in events if e["event"] == "span"]
        assert len(spans) == meta["n_spans"]
        assert all("wall_s" in s and "stage" in s for s in spans)

    def test_prometheus_text_format_parses(self, exported):
        study, _, paths = exported
        sample_re = re.compile(
            r'^repro_[a-zA-Z0-9_:]+(\{[^}]*\})? -?[0-9+.eInf-]+$'
        )
        saw_bucket = saw_type = False
        for line in paths["prometheus"].read_text().splitlines():
            if line.startswith("# TYPE "):
                saw_type = True
                continue
            assert sample_re.match(line), f"unparseable sample: {line!r}"
            if "_bucket{" in line:
                saw_bucket = True
        assert saw_type and saw_bucket
        text = paths["prometheus"].read_text()
        assert 'le="+Inf"' in text
        assert f"repro_process_lives {study.telemetry.process_lives}" in text

    def test_report_renders_stage_table(self, exported):
        study, _, paths = exported
        report = paths["report"].read_text()
        assert "Campaign telemetry (per-stage time budget)" in report
        for stage in ("world", "discovery", "monitor", "analysis"):
            assert stage in report
        assert "Busiest resilience endpoints" in report

    def test_empty_telemetry_renders_pointer(self):
        report = render_telemetry(Telemetry())
        assert "--telemetry-dir" in report

    def test_exports_of_same_state_are_byte_identical(self, exported):
        study, _, paths = exported
        assert (
            render_prometheus(study.telemetry)
            == paths["prometheus"].read_text()
        )


# -- determinism -------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("profile", [None, "hostile"])
    def test_dataset_identical_with_telemetry_on_or_off(
        self, profile, tmp_path
    ):
        golden = _export_digest(
            Study(_config(faults=profile)).run(), tmp_path, "off"
        )
        study = Study(_config(faults=profile))
        study.telemetry.enable()
        telemetered = _export_digest(study.run(), tmp_path, "on")
        assert telemetered == golden, (
            "telemetry must never perturb the campaign "
            f"(profile={profile})"
        )


# -- cumulative across process lives (kill-and-resume) -----------------------

class TestCumulativeResume:
    def test_resumed_campaign_reports_both_lives(self, tmp_path):
        golden = _export_digest(Study(_config()).run(), tmp_path, "golden")
        store_dir = tmp_path / "store"

        # Life 1: run (and checkpoint) the full campaign telemetered.
        study = Study(_config())
        study.telemetry.enable()
        study.run(checkpoint_dir=store_dir, anchor_every=3)

        # Life 2: "kill" the process (drop the study) and resume from
        # day 4 — a replay marker deferring to the day-3 anchor, so
        # the restore replays day 4 and then runs day 5 fresh.
        resumed = Study.resume(store_dir, from_day=4)
        tel = resumed.telemetry
        assert tel.enabled, "the handle's state must survive the anchor"
        dataset = resumed.run()

        assert _export_digest(dataset, tmp_path, "resumed") == golden
        assert tel.process_lives == 2
        profiler = tel.profiler()
        life1_days = profiler.days_covered(life=1)
        life2_days = profiler.days_covered(life=2)
        assert life1_days, "life-1 spans must survive inside the anchor"
        assert life2_days, "life 2 must keep accumulating after restore"
        assert profiler.days_covered() == list(range(N_DAYS))
        # The restore itself is on the books...
        assert tel.metrics.counter("checkpoint_restores_total") == 1.0
        assert profiler.stage_wall_s("restore") > 0.0
        # ...and replayed work is labelled as replay, not fresh work.
        modes = {dict(s.labels).get("mode") for s in tel.tracer.spans}
        assert "replay" in modes and "run" in modes
        # Metrics kept accumulating — from the restore point: the
        # day-3 anchor holds life 1's days 0..3 (the killed process's
        # later days are gone with it, exactly like the rest of the
        # campaign state), then life 2 replays day 4 and runs day 5.
        ran = tel.metrics.counter("campaign_days_total", mode="run")
        replayed = tel.metrics.counter("campaign_days_total", mode="replay")
        assert ran == 5.0  # days 0..3 in life 1 + day 5 in life 2
        assert replayed == 1.0  # day 4, replayed from the day-3 anchor

    def test_checkpoint_io_metered(self, tmp_path):
        store_dir = tmp_path / "store"
        study = Study(_config())
        study.telemetry.enable()
        study.run(checkpoint_dir=store_dir, anchor_every=2)
        metrics = study.telemetry.metrics
        anchors = metrics.counter("checkpoint_records_total", kind="anchor")
        markers = metrics.counter("checkpoint_records_total", kind="replay")
        assert anchors + markers == N_DAYS
        assert anchors >= 1 and markers >= 1
        assert metrics.counter_total("checkpoint_payload_bytes_total") > 0
        assert study.telemetry.histogram(
            "checkpoint_write_seconds", kind="anchor"
        ).count == anchors
        assert (
            study.telemetry.profiler().stage_wall_s("checkpoint") > 0.0
        )
        report = render_telemetry(study.telemetry)
        assert "checkpoints:" in report


# -- registry merge (parallel day barrier) -----------------------------------

class TestRegistryMerge:
    def test_counters_add_per_label_set(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("probes_total", 3, platform="whatsapp")
        b.inc("probes_total", 4, platform="whatsapp")
        b.inc("probes_total", 5, platform="telegram")
        b.inc("other_total")
        a.merge(b)
        assert a.counter("probes_total", platform="whatsapp") == 7
        assert a.counter("probes_total", platform="telegram") == 5
        assert a.counter("other_total") == 1

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("dead_urls", 3)
        b.set_gauge("dead_urls", 11)
        a.merge(b)
        assert a.gauge("dead_urls") == 11

    def test_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.001, 0.5):
            a.observe("call_seconds", value)
        for value in (0.002, 90.0):
            b.observe("call_seconds", value)
        a.merge(b)
        hist = a.histogram("call_seconds")
        assert hist.count == 4
        assert hist.total == pytest.approx(0.001 + 0.5 + 0.002 + 90.0)
        assert hist.minimum == pytest.approx(0.001)
        assert hist.maximum == pytest.approx(90.0)
        cumulative = hist.cumulative_buckets()
        assert cumulative[-1][1] == 4

    def test_histogram_bounds_mismatch_rejected(self):
        from repro.telemetry.registry import HistogramData

        a = HistogramData(bounds=(0.1, 1.0))
        b = HistogramData(bounds=(0.2, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            a.merge(b)

    def test_merge_into_empty_equals_source(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("x_total", 2, op="probe")
        b.set_gauge("g", 1.5)
        b.observe("h_seconds", 0.25)
        a.merge(b)
        assert a.to_dict() == b.to_dict()

    def test_merged_counters_are_order_independent(self):
        parts = []
        for start in (0, 1, 2):
            reg = MetricsRegistry()
            reg.inc("n_total", start + 1)
            parts.append(reg)
        fold_forward, fold_reverse = MetricsRegistry(), MetricsRegistry()
        for reg in parts:
            fold_forward.merge(reg)
        for reg in reversed(parts):
            fold_reverse.merge(reg)
        assert fold_forward.to_dict() == fold_reverse.to_dict()


# -- Prometheus exposition formatting ----------------------------------------

class TestPrometheusFormatting:
    def test_special_values_use_exposition_spelling(self):
        # Regression: -inf used to render as Python's "-inf" instead
        # of the exposition form "-Inf".
        from repro.telemetry.exporters import _format_value

        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

    def test_label_values_escape_backslash_quote_newline(self):
        from repro.telemetry.exporters import _format_labels

        rendered = _format_labels(
            (("title", 'a"b\\c\nd'), ("platform", "whatsapp"))
        )
        assert rendered == (
            '{title="a\\"b\\\\c\\nd",platform="whatsapp"}'
        )

    def test_label_escaping_round_trips(self):
        from repro.telemetry.exporters import _format_labels

        nasty = 'quote " back \\ slash \\n literal\nnewline'
        rendered = _format_labels((("v", nasty),))
        inner = rendered[len('{v="'):-len('"}')]

        def unescape(text):
            out, i = [], 0
            while i < len(text):
                if text[i] == "\\":
                    out.append(
                        {"n": "\n", "\\": "\\", '"': '"'}[text[i + 1]]
                    )
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            return "".join(out)

        assert unescape(inner) == nasty

    def test_rendered_output_passes_format_validity_check(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("probes_total", 3, title='a"b\\c\nd')
        telemetry.gauge("floor", float("-inf"))
        telemetry.gauge("ceiling", float("inf"))
        telemetry.observe("call_seconds", 0.125)
        text = render_prometheus(telemetry)

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
            r'(\{([a-zA-Z_][a-zA-Z0-9_]*="([^"\\\n]|\\[n"\\])*",?)*\})?'
            r" (NaN|[+-]Inf|[-+0-9].*)$"           # one value
        )
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), f"invalid exposition line: {line!r}"
        assert "-Inf" in text and "+Inf" in text
        assert '\\n' in text and '\\"' in text and "\\\\" in text
