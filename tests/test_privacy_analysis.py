"""Tests for the Table 4/5 PII analyses on the shared small study."""

import pytest

from repro.analysis.privacy import (
    collect_exposures,
    discord_linked_accounts,
    pii_summary,
)
from repro.privacy.pii import ExposureSource, PIIKind


class TestTable4:
    def test_whatsapp_full_phone_exposure(self, small_dataset):
        # Table 4: phone numbers for 100 % of observed WhatsApp users.
        summary = pii_summary(small_dataset, "whatsapp")
        assert summary.members_observed > 0
        assert summary.phone_frac == pytest.approx(1.0)

    def test_whatsapp_creators_observed_without_joining(self, small_dataset):
        summary = pii_summary(small_dataset, "whatsapp")
        assert summary.creators_observed > 0
        assert summary.users_observed == (
            summary.members_observed + summary.creators_observed
        )

    def test_telegram_opt_in_phone_rate(self, small_dataset):
        # Table 4: 0.68 % of Telegram users expose a phone number.
        summary = pii_summary(small_dataset, "telegram")
        assert summary.members_observed > 0
        assert summary.phone_frac < 0.03
        assert summary.creators_observed == 0

    def test_discord_no_phones_but_linked_accounts(self, small_dataset):
        # Table 4: no Discord phones; ~30 % expose linked accounts.
        summary = pii_summary(small_dataset, "discord")
        assert summary.phones_exposed == 0
        assert 0.15 < summary.linked_frac < 0.45

    def test_no_linked_accounts_outside_discord(self, small_dataset):
        for platform in ("whatsapp", "telegram"):
            assert pii_summary(small_dataset, platform).linked_exposed == 0


class TestTable5:
    def test_breakdown_rows(self, small_dataset):
        breakdown = discord_linked_accounts(small_dataset)
        assert breakdown.n_users == len(small_dataset.users_for("discord"))
        names = [name for name, _, _ in breakdown.rows]
        assert "twitch" in names
        # Table 5 ordering: Twitch is the most-linked platform.
        assert names[0] == "twitch"

    def test_fractions_relative_to_all_users(self, small_dataset):
        breakdown = discord_linked_accounts(small_dataset)
        for _, count, frac in breakdown.rows:
            assert frac == pytest.approx(count / breakdown.n_users)
            assert 0.0 < frac < 1.0


class TestExposureRecords:
    def test_exposures_typed_correctly(self, small_dataset):
        exposures = collect_exposures(small_dataset)
        assert exposures
        kinds = {e.kind for e in exposures}
        assert PIIKind.PHONE_NUMBER in kinds
        assert PIIKind.LINKED_ACCOUNT in kinds

    def test_landing_page_exposures_are_whatsapp(self, small_dataset):
        exposures = collect_exposures(small_dataset)
        landing = [
            e for e in exposures if e.source is ExposureSource.LANDING_PAGE
        ]
        assert landing
        assert all(e.platform == "whatsapp" for e in landing)

    def test_phone_values_are_digests(self, small_dataset):
        for exposure in collect_exposures(small_dataset):
            if exposure.kind is PIIKind.PHONE_NUMBER:
                assert len(exposure.value) == 64

    def test_linked_account_values_qualified(self, small_dataset):
        for exposure in collect_exposures(small_dataset):
            if exposure.kind is PIIKind.LINKED_ACCOUNT:
                platform, _, handle = exposure.value.partition(":")
                assert platform and handle
                assert exposure.platform == "discord"
