"""Tests for the collapsed-Gibbs LDA implementation."""

import numpy as np
import pytest

from repro.analysis.lda import fit_lda


def planted_corpus(n_docs=120, words_per_doc=12, seed=0):
    """Three well-separated topics with disjoint vocabularies."""
    rng = np.random.default_rng(seed)
    vocabs = [
        [f"alpha{i}" for i in range(15)],
        [f"beta{i}" for i in range(15)],
        [f"gamma{i}" for i in range(15)],
    ]
    docs, labels = [], []
    for d in range(n_docs):
        topic = d % 3
        vocab = vocabs[topic]
        docs.append([vocab[i] for i in rng.integers(0, 15, words_per_doc)])
        labels.append(topic)
    return docs, labels, vocabs


class TestValidation:
    def test_n_topics_positive(self):
        with pytest.raises(ValueError):
            fit_lda([["a"]], n_topics=0)

    def test_n_iter_positive(self):
        with pytest.raises(ValueError):
            fit_lda([["a"]], n_topics=2, n_iter=0)


class TestEdgeCases:
    def test_empty_corpus(self):
        result = fit_lda([], n_topics=3)
        assert result.n_topics == 3
        assert result.vocab == []

    def test_empty_documents_allowed(self):
        result = fit_lda([[], ["word", "word2"], []], n_topics=2, n_iter=5)
        assert len(result.vocab) == 2

    def test_single_word_corpus(self):
        result = fit_lda([["solo"]] * 5, n_topics=2, n_iter=5)
        assert result.topic_word.sum() == 5


class TestCounts:
    def test_count_invariants(self):
        docs, _, _ = planted_corpus(n_docs=30)
        result = fit_lda(docs, n_topics=3, n_iter=10, seed=1)
        n_tokens = sum(len(d) for d in docs)
        assert result.topic_word.sum() == n_tokens
        assert result.doc_topic.sum() == n_tokens
        # Per-document counts match document lengths.
        assert list(result.doc_topic.sum(axis=1)) == [len(d) for d in docs]
        assert (result.topic_word >= 0).all()

    def test_deterministic_given_seed(self):
        docs, _, _ = planted_corpus(n_docs=30)
        a = fit_lda(docs, n_topics=3, n_iter=10, seed=7)
        b = fit_lda(docs, n_topics=3, n_iter=10, seed=7)
        assert np.array_equal(a.topic_word, b.topic_word)

    def test_seed_changes_fit(self):
        docs, _, _ = planted_corpus(n_docs=30)
        a = fit_lda(docs, n_topics=3, n_iter=3, seed=1)
        b = fit_lda(docs, n_topics=3, n_iter=3, seed=2)
        assert not np.array_equal(a.topic_word, b.topic_word)


class TestRecovery:
    def test_recovers_planted_topics(self):
        docs, labels, vocabs = planted_corpus()
        result = fit_lda(docs, n_topics=3, n_iter=60, seed=3)
        # Each fitted topic's top terms should be drawn from one planted
        # vocabulary almost exclusively.
        prefixes = []
        for topic in range(3):
            top = result.top_terms(topic, 10)
            counts = {
                prefix: sum(1 for w in top if w.startswith(prefix))
                for prefix in ("alpha", "beta", "gamma")
            }
            best = max(counts, key=counts.get)
            assert counts[best] >= 8
            prefixes.append(best)
        assert set(prefixes) == {"alpha", "beta", "gamma"}

    def test_dominant_topics_partition_documents(self):
        docs, labels, _ = planted_corpus()
        result = fit_lda(docs, n_topics=3, n_iter=60, seed=4)
        dominant = result.dominant_topics()
        # Documents with the same planted label get the same fitted topic.
        agreement = 0
        for planted in range(3):
            idx = [i for i, lab in enumerate(labels) if lab == planted]
            values, counts = np.unique(dominant[idx], return_counts=True)
            agreement += counts.max()
        assert agreement / len(docs) > 0.9

    def test_topic_doc_shares_sum_to_one(self):
        docs, _, _ = planted_corpus(n_docs=60)
        result = fit_lda(docs, n_topics=3, n_iter=20, seed=5)
        assert result.topic_doc_shares().sum() == pytest.approx(1.0)

    def test_topic_word_dist_is_distribution(self):
        docs, _, _ = planted_corpus(n_docs=30)
        result = fit_lda(docs, n_topics=3, n_iter=10, seed=6)
        for topic in range(3):
            dist = result.topic_word_dist(topic)
            assert dist.sum() == pytest.approx(1.0)
            assert (dist > 0).all()  # smoothed
