"""Tests for the deterministic multi-worker probe engine.

The acceptance property (ISSUE 5): the worker count is invisible in
every artefact.  Exports, CSV checksums, fsck verdicts and run-store
day records are byte-identical between ``--workers 1`` and
``--workers {2,4,8}`` on the same seed, under the ``none`` and
``hostile`` fault profiles, including after a mid-campaign kill and
resume — even a resume under a *different* worker count.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.study import Study, StudyConfig
from repro.errors import ConfigError, ParallelError
from repro.integrity import fsck_export, fsck_store
from repro.io.export import export_all_csv
from repro.parallel import (
    ParallelEngine,
    assign_shards,
    shard_of,
    world_bootstrap,
)
from repro.simulation.world import World, WorldConfig

pytestmark = pytest.mark.parallel

#: Campaign shape shared by the identity tests: small but complete —
#: discovery, revocations, a join day, and post-join days.
_SPEC = dict(
    seed=11,
    n_days=6,
    scale=0.004,
    message_scale=0.05,
    join_day=3,
)


def _config(faults=None) -> StudyConfig:
    return StudyConfig(faults=faults, **_SPEC)


def _export_tree(directory: Path) -> dict:
    """Every exported file's bytes, keyed by name (SHA256SUMS included)."""
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Golden sequential exports per fault profile, built once."""
    cache: dict = {}

    def get(faults) -> Path:
        if faults not in cache:
            dataset = Study(_config(faults)).run()
            directory = tmp_path_factory.mktemp(f"golden-{faults}")
            export_all_csv(dataset, directory)
            cache[faults] = directory
        return cache[faults]

    return get


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def test_shard_is_a_pure_function_of_canonical(self):
        assert shard_of("whatsapp:abc", 4) == shard_of("whatsapp:abc", 4)
        assert 0 <= shard_of("telegram:xyz", 3) < 3
        assert shard_of("whatsapp:abc", 1) == 0

    def test_assignment_partitions_and_preserves_order(self):
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/g{i}", "whatsapp")
            for i in range(50)
        ]
        shards = assign_shards(probes, 4)
        assert sum(len(shard) for shard in shards) == len(probes)
        merged = [probe for shard in shards for probe in shard]
        assert sorted(merged) == sorted(probes)
        for shard in shards:
            indexes = [probes.index(probe) for probe in shard]
            assert indexes == sorted(indexes), "shard must keep caller order"

    def test_rebalancing_never_reassigns_by_order(self):
        # Same canonical, same worker count -> same shard, no matter
        # what else is in the batch.
        lone = assign_shards(
            [("whatsapp:abc", "u", "whatsapp")], 4
        )
        crowd = assign_shards(
            [("whatsapp:abc", "u", "whatsapp")]
            + [(f"telegram:{i}", "u", "telegram") for i in range(20)],
            4,
        )
        lone_idx = next(i for i, s in enumerate(lone) if s)
        assert ("whatsapp:abc", "u", "whatsapp") in crowd[lone_idx]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParallelError, match="n_workers"):
            shard_of("whatsapp:abc", 0)


# -- engine lifecycle --------------------------------------------------------


def _tiny_world() -> World:
    world = World(WorldConfig(seed=3, n_days=2, scale=0.004))
    world.generate_day(0)
    return world


class TestEngine:
    @pytest.mark.parametrize("workers", [0, -1, 1.5, True, "4"])
    def test_invalid_worker_count_is_config_error(self, workers):
        with pytest.raises(ConfigError, match="workers"):
            ParallelEngine(workers)

    def test_invalid_mode_is_config_error(self):
        with pytest.raises(ConfigError, match="mode"):
            ParallelEngine(2, mode="bogus")

    def test_snapshot_mode_requires_monitor_params(self):
        with pytest.raises(ConfigError, match="monitor_params"):
            ParallelEngine(2, mode="snapshot")

    def test_probe_before_start_is_an_error(self):
        engine = ParallelEngine(2)
        with pytest.raises(ParallelError, match="not started"):
            engine.probe_day(0, [])

    def test_close_is_idempotent_even_unstarted(self):
        engine = ParallelEngine(2)
        engine.close()
        engine.close()
        assert not engine.started

    def test_replay_roundtrip_and_unknown_url(self):
        engine = ParallelEngine(2, mode="replay")
        engine.start(_tiny_world(), 0)
        try:
            url = "https://chat.whatsapp.com/nosuchcode"
            outcomes, healths = engine.probe_day(
                0, [("whatsapp:nosuchcode", url, "whatsapp")]
            )
            assert outcomes == {url: ("unknown", None)}
            assert healths == []
        finally:
            engine.close()

    def test_worker_error_surfaces_as_parallel_error(self):
        engine = ParallelEngine(1, mode="replay")
        engine.start(_tiny_world(), 0)
        try:
            with pytest.raises(ParallelError, match="worker 0 failed"):
                engine.probe_day(0, [("x:y", "https://x/y", "bogus")])
        finally:
            engine.close()

    def test_bootstrap_strips_the_twitter_side(self):
        import pickle

        world = _tiny_world()
        replica = pickle.loads(world_bootstrap(world))
        assert replica._first_tweets == {}
        assert replica._pending == {}
        assert replica.truths == {}
        assert replica.twitter is not world.twitter
        # The replica can still advance its group state.
        replica.generate_day_groups(1)


# -- byte-identity -----------------------------------------------------------


@pytest.mark.checkpoint
class TestByteIdentity:
    @pytest.mark.parametrize("faults", [None, "hostile"])
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_worker_count_is_invisible_in_exports(
        self, faults, workers, golden, tmp_path
    ):
        dataset = Study(_config(faults)).run(workers=workers)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(faults)), (
            f"workers={workers} faults={faults} diverged from the "
            "golden sequential export"
        )
        report = fsck_export(out)
        assert report.ok, report.to_dict()

    def test_store_written_parallel_resumes_sequential(
        self, golden, tmp_path
    ):
        """A store written under ``--workers 4`` must continue under
        any other count — here the hardest case, sequential — and land
        on the golden exports.  (Anchor *bytes* are not compared:
        snapshot-mode parents skip lazily-derived service caches that
        a sequential parent materialises, which is behaviourally
        inert.)"""
        from repro.checkpoint import RunStore

        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir, workers=4)
        report = fsck_store(store_dir)
        assert report.ok, report.to_dict()
        store = RunStore.open(store_dir)
        # The worker count is recorded informationally in the
        # manifest, outside the config digest.
        assert store.manifest["engine"] == {"workers": 4}

        resumed = Study.resume(store_dir, from_day=3)
        dataset = resumed.run()  # sequential continuation
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))


# -- kill and resume ---------------------------------------------------------


class _Boom(Exception):
    pass


@pytest.mark.checkpoint
@pytest.mark.chaos
class TestKillAndResume:
    def test_abort_mid_campaign_then_resume_with_workers(
        self, golden, tmp_path
    ):
        store_dir = tmp_path / "store"
        study = Study(_config())

        def hook(day, stage):
            if day == 4 and stage == "monitor":
                raise _Boom()

        study.stage_hook = hook
        with pytest.raises(_Boom):
            study.run(checkpoint_dir=store_dir, workers=4)

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=4)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))
        assert fsck_store(store_dir).ok

    def test_sigkill_at_workers_4_resume_under_workers_2(
        self, golden, tmp_path
    ):
        """The hard variant: SIGKILL the campaign (daemon workers die
        with it), then resume under a *different* worker count."""
        store_dir = tmp_path / "store"
        script = tmp_path / "campaign.py"
        script.write_text(textwrap.dedent(
            f"""
            import os, signal
            from repro.core.study import Study, StudyConfig

            def hook(day, stage):
                if day == 4 and stage == "control":
                    os.kill(os.getpid(), signal.SIGKILL)

            # The spawn context re-imports this file as __mp_main__ in
            # every worker: the campaign must only run in the parent.
            if __name__ == "__main__":
                study = Study(StudyConfig(**{_SPEC!r}))
                study.stage_hook = hook
                study.run(
                    checkpoint_dir={os.fspath(store_dir)!r}, workers=4
                )
            """
        ))
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert fsck_store(store_dir).ok

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=2)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))
        assert fsck_store(store_dir).ok
