"""Tests for the deterministic multi-worker probe engine.

The acceptance property (ISSUE 5): the worker count is invisible in
every artefact.  Exports, CSV checksums, fsck verdicts and run-store
day records are byte-identical between ``--workers 1`` and
``--workers {2,4,8}`` on the same seed, under the ``none`` and
``hostile`` fault profiles, including after a mid-campaign kill and
resume — even a resume under a *different* worker count.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.study import Study, StudyConfig
from repro.errors import ConfigError, ParallelError
from repro.integrity import fsck_export, fsck_store
from repro.io.export import export_all_csv
from repro.parallel import (
    ParallelEngine,
    SupervisedEngine,
    SupervisionPolicy,
    assign_shards,
    lost_probes,
    shard_of,
    world_bootstrap,
)
from repro.parallel.worker import HANG_ENV
from repro.simulation.world import World, WorldConfig

pytestmark = pytest.mark.parallel

#: Campaign shape shared by the identity tests: small but complete —
#: discovery, revocations, a join day, and post-join days.
_SPEC = dict(
    seed=11,
    n_days=6,
    scale=0.004,
    message_scale=0.05,
    join_day=3,
)


def _config(faults=None) -> StudyConfig:
    return StudyConfig(faults=faults, **_SPEC)


def _export_tree(directory: Path) -> dict:
    """Every exported file's bytes, keyed by name (SHA256SUMS included)."""
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Golden sequential exports per fault profile, built once."""
    cache: dict = {}

    def get(faults) -> Path:
        if faults not in cache:
            dataset = Study(_config(faults)).run()
            directory = tmp_path_factory.mktemp(f"golden-{faults}")
            export_all_csv(dataset, directory)
            cache[faults] = directory
        return cache[faults]

    return get


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def test_shard_is_a_pure_function_of_canonical(self):
        assert shard_of("whatsapp:abc", 4) == shard_of("whatsapp:abc", 4)
        assert 0 <= shard_of("telegram:xyz", 3) < 3
        assert shard_of("whatsapp:abc", 1) == 0

    def test_assignment_partitions_and_preserves_order(self):
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(50)
        ]
        shards = assign_shards(probes, 4)
        assert sum(len(shard) for shard in shards) == len(probes)
        merged = [probe for shard in shards for probe in shard]
        assert sorted(merged) == sorted(probes)
        for shard in shards:
            indexes = [probes.index(probe) for probe in shard]
            assert indexes == sorted(indexes), "shard must keep caller order"

    def test_rebalancing_never_reassigns_by_order(self):
        # Same canonical, same worker count -> same shard, no matter
        # what else is in the batch.
        lone = assign_shards(
            [("whatsapp:abc", "u", "whatsapp")], 4
        )
        crowd = assign_shards(
            [("whatsapp:abc", "u", "whatsapp")]
            + [(f"telegram:{i}", "u", "telegram") for i in range(20)],
            4,
        )
        lone_idx = next(i for i, s in enumerate(lone) if s)
        assert ("whatsapp:abc", "u", "whatsapp") in crowd[lone_idx]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParallelError, match="n_workers"):
            shard_of("whatsapp:abc", 0)

    def test_lost_probes_replays_shard_index_order(self):
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(30)
        ]
        shards = assign_shards(probes, 4)
        # Index order, de-duplicated, caller order within each shard.
        assert lost_probes(shards, [3, 1, 1]) == shards[1] + shards[3]
        assert lost_probes(shards, []) == []
        assert lost_probes(shards, range(4)) == [
            p for shard in shards for p in shard
        ]


# -- engine lifecycle --------------------------------------------------------


def _tiny_world() -> World:
    world = World(WorldConfig(seed=3, n_days=2, scale=0.004))
    world.generate_day(0)
    return world


class TestEngine:
    @pytest.mark.parametrize("workers", [0, -1, 1.5, True, "4"])
    def test_invalid_worker_count_is_config_error(self, workers):
        with pytest.raises(ConfigError, match="workers"):
            ParallelEngine(workers)

    def test_invalid_mode_is_config_error(self):
        with pytest.raises(ConfigError, match="mode"):
            ParallelEngine(2, mode="bogus")

    def test_snapshot_mode_requires_monitor_params(self):
        with pytest.raises(ConfigError, match="monitor_params"):
            ParallelEngine(2, mode="snapshot")

    def test_probe_before_start_is_an_error(self):
        engine = ParallelEngine(2)
        with pytest.raises(ParallelError, match="not started"):
            engine.probe_day(0, [])

    def test_close_is_idempotent_even_unstarted(self):
        engine = ParallelEngine(2)
        engine.close()
        engine.close()
        assert not engine.started

    def test_replay_roundtrip_and_unknown_url(self):
        engine = ParallelEngine(2, mode="replay")
        engine.start(_tiny_world(), 0)
        try:
            url = "https://chat.whatsapp.com/nosuchcode"
            outcomes, healths = engine.probe_day(
                0, [("whatsapp:nosuchcode", url, "whatsapp")]
            )
            assert outcomes == {url: ("unknown", None)}
            assert healths == []
        finally:
            engine.close()

    def test_worker_error_surfaces_as_parallel_error(self):
        engine = ParallelEngine(1, mode="replay")
        engine.start(_tiny_world(), 0)
        try:
            with pytest.raises(ParallelError, match="worker 0 failed"):
                engine.probe_day(0, [("x:y", "https://x/y", "bogus")])
        finally:
            engine.close()

    def test_bootstrap_strips_the_twitter_side(self):
        import pickle

        world = _tiny_world()
        replica = pickle.loads(world_bootstrap(world))
        assert replica._first_tweets == {}
        assert replica._pending == {}
        assert replica.truths == {}
        assert replica.twitter is not world.twitter
        # The replica can still advance its group state.
        replica.generate_day_groups(1)


class TestEngineRobustness:
    """The engine's failure-path contracts the supervisor builds on."""

    def test_close_escalates_to_sigkill_for_stubborn_worker(self):
        """A worker that ignores SIGTERM must not outlive close()."""
        import time

        from tests.helpers import stubborn_worker

        engine = ParallelEngine(1, mode="replay", join_timeout=0.2)
        parent, child = engine._ctx.Pipe()
        proc = engine._ctx.Process(
            target=stubborn_worker, args=(child,), daemon=True
        )
        proc.start()
        child.close()
        assert parent.recv() == ("ready",)  # SIGTERM handler installed
        engine._procs = [proc]
        engine._conns = [parent]
        engine._advanced = 0
        start = time.monotonic()
        engine.close()
        elapsed = time.monotonic() - start
        assert not proc.is_alive(), "stubborn worker outlived close()"
        assert not engine.started
        # Two bounded rungs (stop wait + SIGTERM wait) then SIGKILL:
        # well under the old unbounded hang.
        assert elapsed < 5.0

    def test_stop_worker_escalates_past_sigterm(self):
        from tests.helpers import stubborn_worker

        engine = ParallelEngine(1, mode="replay", join_timeout=0.2)
        parent, child = engine._ctx.Pipe()
        proc = engine._ctx.Process(
            target=stubborn_worker, args=(child,), daemon=True
        )
        proc.start()
        child.close()
        assert parent.recv() == ("ready",)
        engine._procs = [proc]
        engine._conns = [parent]
        engine._advanced = 0
        engine.stop_worker(0)
        assert not proc.is_alive()

    def test_begin_day_wraps_dead_worker_as_parallel_error(self):
        """A worker dead between days surfaces as ParallelError, never
        a raw BrokenPipeError/OSError."""
        engine = ParallelEngine(2, mode="replay")
        engine.start(_tiny_world(), 0)
        try:
            engine.sigkill_worker(1)
            engine._procs[1].join()
            with pytest.raises(ParallelError, match="worker 1"):
                engine.begin_day(1)
        finally:
            engine.close()

    def test_failed_probe_day_leaves_no_live_workers(self):
        """A deterministic worker error must close the whole pool
        before the exception propagates — no stale siblings."""
        engine = ParallelEngine(2, mode="replay")
        engine.start(_tiny_world(), 0)
        procs = list(engine._procs)
        with pytest.raises(ParallelError, match="failed"):
            engine.probe_day(0, [("x:y", "https://x/y", "bogus")])
        assert not engine.started
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive(), "sibling survived a failed day"

    def test_dead_worker_mid_probe_raises_without_supervision(self):
        """The bare engine stays fail-fast: a crash mid-pass is a
        ParallelError (healing is the supervisor's job)."""
        engine = ParallelEngine(2, mode="replay")
        engine.start(_tiny_world(), 0)
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(8)
        ]
        # Kill both so the crash hits whichever worker owns a shard.
        engine.sigkill_worker(0)
        engine.sigkill_worker(1)
        engine._procs[0].join()
        engine._procs[1].join()
        with pytest.raises(ParallelError):
            engine.probe_day(0, probes)
        assert not engine.started


# -- supervision -------------------------------------------------------------


class TestSupervisionPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.deadline_s > 0
        assert policy.max_restarts >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"max_restarts": -1},
            {"max_restarts": 1.5},
            {"max_restarts": True},
            {"wait_slice_s": 0.0},
        ],
    )
    def test_invalid_policy_is_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisionPolicy(**kwargs)


class TestSupervisedEngine:
    def _supervised(self, workers=2, **policy_kwargs):
        engine = ParallelEngine(workers, mode="replay")
        return SupervisedEngine(
            engine, policy=SupervisionPolicy(**policy_kwargs)
        )

    def test_probe_before_start_is_an_error(self):
        sup = self._supervised()
        with pytest.raises(ParallelError, match="not started"):
            sup.probe_day(0, [])

    def test_crash_free_pass_matches_bare_engine(self):
        world = _tiny_world()
        probes = [
            ("whatsapp:nosuchcode", "https://chat.whatsapp.com/nosuchcode", "whatsapp")
        ]
        bare = ParallelEngine(2, mode="replay")
        bare.start(_tiny_world(), 0)
        try:
            expected = bare.probe_day(0, probes)
        finally:
            bare.close()
        sup = self._supervised()
        sup.start(world, 0)
        try:
            assert sup.probe_day(0, probes) == expected
        finally:
            sup.close()

    def test_deterministic_worker_error_still_raises(self):
        """An "error" reply is a deterministic failure: re-execution
        would fail identically, so supervision must propagate it (with
        the pool closed), not heal it."""
        sup = self._supervised()
        sup.start(_tiny_world(), 0)
        with pytest.raises(ParallelError, match="failed"):
            sup.probe_day(0, [("x:y", "https://x/y", "bogus")])
        assert not sup._engine.started

    def test_sigkilled_worker_is_healed_in_parent(self):
        world = _tiny_world()
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(8)
        ]
        bare = ParallelEngine(2, mode="replay")
        bare.start(_tiny_world(), 0)
        try:
            expected = bare.probe_day(0, probes)
        finally:
            bare.close()
        sup = self._supervised()
        sup.start(world, 0)
        try:
            sup._engine.sigkill_worker(0)
            sup._engine.sigkill_worker(1)
            outcomes, healths = sup.probe_day(0, probes)
            assert (outcomes, healths) == expected
            assert set(sup._lost) == {0, 1}
        finally:
            sup.close()

    def test_lost_workers_respawn_with_budget(self):
        world = World(WorldConfig(seed=3, n_days=3, scale=0.004))
        world.generate_day(0)
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(8)
        ]
        sup = self._supervised(max_restarts=2)
        sup.start(world, 0)
        try:
            sup._engine.sigkill_worker(0)
            sup.probe_day(0, probes)
            assert 0 in sup._lost
            # Next day, in study order: replicas advance at the world
            # stage, the parent generates its own day, then the probe
            # pass heals — a fresh worker bootstrapped from the world
            # exactly where the lost replica's advances would be.
            sup.begin_day(1)
            world.generate_day(1)
            outcomes, _ = sup.probe_day(1, probes)
            assert sup._lost == {}
            assert not sup.degraded
            assert sup._restarts[0] == 1
            assert len(outcomes) == len(probes)
        finally:
            sup.close()

    def test_exhausted_budget_degrades_to_sequential(self):
        world = World(WorldConfig(seed=3, n_days=3, scale=0.004))
        world.generate_day(0)
        probes = [
            (f"whatsapp:g{i}", f"https://chat.whatsapp.com/testinvite{i:04d}", "whatsapp")
            for i in range(8)
        ]
        sup = self._supervised(max_restarts=0)
        sup.start(world, 0)
        try:
            sup._engine.sigkill_worker(1)
            first = sup.probe_day(0, probes)
            assert len(first[0]) == len(probes)
            sup.begin_day(1)
            world.generate_day(1)
            # Heal attempt finds the budget exhausted: pool closes,
            # the day still completes in-parent, and the engine stays
            # degraded (started stays True so the study does not try
            # to restart it).
            outcomes, _ = sup.probe_day(1, probes)
            assert sup.degraded
            assert sup.started
            assert not sup._engine.started
            assert len(outcomes) == len(probes)
        finally:
            sup.close()


# -- byte-identity -----------------------------------------------------------


@pytest.mark.checkpoint
class TestByteIdentity:
    @pytest.mark.parametrize("faults", [None, "hostile"])
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_worker_count_is_invisible_in_exports(
        self, faults, workers, golden, tmp_path
    ):
        dataset = Study(_config(faults)).run(workers=workers)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(faults)), (
            f"workers={workers} faults={faults} diverged from the "
            "golden sequential export"
        )
        report = fsck_export(out)
        assert report.ok, report.to_dict()

    def test_store_written_parallel_resumes_sequential(
        self, golden, tmp_path
    ):
        """A store written under ``--workers 4`` must continue under
        any other count — here the hardest case, sequential — and land
        on the golden exports.  (Anchor *bytes* are not compared:
        snapshot-mode parents skip lazily-derived service caches that
        a sequential parent materialises, which is behaviourally
        inert.)"""
        from repro.checkpoint import RunStore

        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir, workers=4)
        report = fsck_store(store_dir)
        assert report.ok, report.to_dict()
        store = RunStore.open(store_dir)
        # The worker count is recorded informationally in the
        # manifest, outside the config digest.
        assert store.manifest["engine"] == {"workers": 4}

        resumed = Study.resume(store_dir, from_day=3)
        dataset = resumed.run()  # sequential continuation
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))


# -- kill and resume ---------------------------------------------------------


class _Boom(Exception):
    pass


@pytest.mark.checkpoint
@pytest.mark.chaos
class TestKillAndResume:
    def test_abort_mid_campaign_then_resume_with_workers(
        self, golden, tmp_path
    ):
        store_dir = tmp_path / "store"
        study = Study(_config())

        def hook(day, stage):
            if day == 4 and stage == "monitor":
                raise _Boom()

        study.stage_hook = hook
        with pytest.raises(_Boom):
            study.run(checkpoint_dir=store_dir, workers=4)

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=4)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))
        assert fsck_store(store_dir).ok

    def test_sigkill_at_workers_4_resume_under_workers_2(
        self, golden, tmp_path
    ):
        """The hard variant: SIGKILL the campaign (daemon workers die
        with it), then resume under a *different* worker count."""
        store_dir = tmp_path / "store"
        script = tmp_path / "campaign.py"
        script.write_text(textwrap.dedent(
            f"""
            import os, signal
            from repro.core.study import Study, StudyConfig

            def hook(day, stage):
                if day == 4 and stage == "control":
                    os.kill(os.getpid(), signal.SIGKILL)

            # The spawn context re-imports this file as __mp_main__ in
            # every worker: the campaign must only run in the parent.
            if __name__ == "__main__":
                study = Study(StudyConfig(**{_SPEC!r}))
                study.stage_hook = hook
                study.run(
                    checkpoint_dir={os.fspath(store_dir)!r}, workers=4
                )
            """
        ))
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert fsck_store(store_dir).ok

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=2)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))
        assert fsck_store(store_dir).ok


# -- supervision byte-identity -----------------------------------------------


@pytest.mark.chaos
class TestSupervisionByteIdentity:
    """ISSUE 6 acceptance: a campaign that loses a worker mid-probe
    completes without intervention and its artefacts are byte-identical
    to the golden sequential run."""

    @pytest.mark.parametrize("faults", [None, "hostile"])
    def test_worker_sigkill_mid_campaign_is_invisible(
        self, faults, golden, tmp_path
    ):
        study = Study(_config(faults))
        study.telemetry.enable()
        fired = []

        def hook(day):
            if day == 2 and not fired:
                fired.append(True)
                return 1
            return None

        study.worker_kill_hook = hook
        dataset = study.run(workers=2)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert fired, "worker-kill hook never fired"
        assert _export_tree(out) == _export_tree(golden(faults)), (
            f"supervised campaign diverged from golden (faults={faults})"
        )
        assert fsck_export(out).ok
        reg = study.telemetry.metrics
        assert reg.counter_total("parallel_worker_crashes_total") == 1
        assert reg.counter_total("parallel_shard_reexecutions_total") == 1
        assert reg.counter_total("parallel_worker_restarts_total") == 1
        assert reg.counter_total("parallel_degraded_total") == 0

    def test_hung_worker_is_detected_and_shard_reexecuted(
        self, golden, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(HANG_ENV, "2:0:600")
        study = Study(_config())
        study.telemetry.enable()
        dataset = study.run(workers=2, worker_deadline=3.0)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None)), (
            "campaign with a hung worker diverged from golden"
        )
        reg = study.telemetry.metrics
        assert reg.counter_total(
            "parallel_worker_deadline_misses_total"
        ) == 1
        assert reg.counter_total("parallel_shard_reexecutions_total") == 1
        assert reg.counter_total("parallel_degraded_total") == 0

    @pytest.mark.parametrize("faults", [None, "hostile"])
    def test_budget_exhaustion_degrades_and_finishes(
        self, faults, golden, tmp_path
    ):
        study = Study(_config(faults))
        study.telemetry.enable()
        fired = []

        def hook(day):
            if day == 1 and not fired:
                fired.append(True)
                return 0
            return None

        study.worker_kill_hook = hook
        dataset = study.run(workers=2, worker_restarts=0)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(faults)), (
            f"degraded campaign diverged from golden (faults={faults})"
        )
        assert study.telemetry.metrics.counter_total(
            "parallel_degraded_total"
        ) == 1

    @pytest.mark.checkpoint
    def test_worker_kill_then_campaign_kill_then_resume(
        self, golden, tmp_path
    ):
        """The stacked failure: a worker dies at day 2 (healed by
        supervision), the campaign dies at day 4 (healed by resume),
        and the final artefacts still match golden."""
        store_dir = tmp_path / "store"
        study = Study(_config())
        fired = []

        def worker_hook(day):
            if day == 2 and not fired:
                fired.append(True)
                return 0
            return None

        def stage_hook(day, stage):
            if day == 4 and stage == "control":
                raise _Boom()

        study.worker_kill_hook = worker_hook
        study.stage_hook = stage_hook
        with pytest.raises(_Boom):
            study.run(checkpoint_dir=store_dir, workers=2)
        assert fired, "worker-kill hook never fired"

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=2)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))
        assert fsck_store(store_dir).ok

    def test_supervision_knobs_require_a_pool(self):
        with pytest.raises(ConfigError, match="workers"):
            Study(_config()).run(worker_deadline=10.0)
        with pytest.raises(ConfigError, match="workers"):
            Study(_config()).run(worker_restarts=1)
