"""Tests for the WhatsApp simulator: service, web client, accounts."""

import pytest

from repro.errors import JoinLimitError, NotAMemberError, RevokedURLError
from repro.platforms.whatsapp import (
    WHATSAPP_CAPABILITIES,
    WHATSAPP_MAX_MEMBERS,
    WhatsAppAccount,
    WhatsAppService,
    WhatsAppWebClient,
)

from tests.helpers import make_plan, make_whatsapp


class TestService:
    def test_capabilities_match_table1(self):
        caps = WHATSAPP_CAPABILITIES
        assert caps.registration == "Phone"
        assert caps.max_members == 257
        assert not caps.has_data_api
        assert caps.end_to_end_encryption == "Yes"

    def test_invite_url_pattern(self):
        service = make_whatsapp()
        url = service.invite_url("WA1")
        assert url.startswith("https://chat.whatsapp.com/")
        assert len(url.rsplit("/", 1)[1]) == 22

    def test_parse_invite_url(self):
        service = make_whatsapp()
        url = service.invite_url("WA1")
        assert WhatsAppService.parse_invite_url(url) == service.invite_code("WA1")

    def test_parse_rejects_other_platforms(self):
        with pytest.raises(ValueError):
            WhatsAppService.parse_invite_url("https://t.me/something")

    def test_parse_accepts_bare_host_form(self):
        code = WhatsAppService.parse_invite_url("chat.whatsapp.com/AbCdEfGh1234")
        assert code == "AbCdEfGh1234"


class TestWebClient:
    def _setup(self, **kwargs):
        service = make_whatsapp()
        record = service.register_group(make_plan(gid="WA1", **kwargs))
        return service, record, WhatsAppWebClient(service)

    def test_preview_fields(self):
        service, record, client = self._setup(size0=80, slope=0.0)
        preview = client.preview(service.invite_url("WA1"), 2.0)
        assert preview.size == record.size_on(2.0)
        assert preview.title == record.title
        assert preview.creator_phone is not None
        assert preview.creator_dialing_code == preview.creator_phone.dialing_code

    def test_preview_leaks_creator_phone_without_joining(self):
        # The paper's headline WhatsApp finding: the landing page shows
        # the creator's phone number to non-members.
        service, record, client = self._setup()
        preview = client.preview(service.invite_url("WA1"), 2.0)
        creator = service.user_profile(record.creator_id)
        assert preview.creator_phone == creator.phone

    def test_preview_of_revoked_url_raises(self):
        service, _, client = self._setup(revoke_t=3.0)
        with pytest.raises(RevokedURLError):
            client.preview(service.invite_url("WA1"), 3.5)

    def test_preview_alive_before_revocation(self):
        service, _, client = self._setup(revoke_t=3.0)
        assert client.preview(service.invite_url("WA1"), 2.9).size > 0


class TestAccount:
    def _setup(self, **kwargs):
        service = make_whatsapp()
        record = service.register_group(make_plan(gid="WA1", **kwargs))
        return service, record, WhatsAppAccount(service, "acct-0")

    def test_join_limit_in_empirical_range(self):
        _, _, account = self._setup()
        assert 250 <= account.join_limit <= 300

    def test_join_and_membership(self):
        service, record, account = self._setup()
        joined = account.join(service.invite_url("WA1"), 2.0)
        assert joined.gid == "WA1"
        assert account.joined_gids == ["WA1"]

    def test_join_revoked_raises(self):
        service, _, account = self._setup(revoke_t=1.0)
        with pytest.raises(RevokedURLError):
            account.join(service.invite_url("WA1"), 2.0)

    def test_join_limit_enforced(self):
        service = make_whatsapp()
        account = WhatsAppAccount(service, "acct-0")
        for i in range(account.join_limit):
            service.register_group(make_plan(gid=f"WA{i}"))
            account.join(service.invite_url(f"WA{i}"), 1.9)
        service.register_group(make_plan(gid="WAover"))
        with pytest.raises(JoinLimitError):
            account.join(service.invite_url("WAover"), 2.0)

    def test_messages_require_membership(self):
        _, _, account = self._setup()
        with pytest.raises(NotAMemberError):
            list(account.messages("WA1", 5.0))

    def test_messages_only_after_join(self):
        # WhatsApp shows no pre-join history (unlike Telegram/Discord).
        service, _, account = self._setup(created_t=-30.0, msg_rate=40.0)
        account.join(service.invite_url("WA1"), 4.0)
        messages = list(account.messages("WA1", 8.0))
        assert messages
        assert all(m.t >= 4.0 for m in messages)

    def test_creation_date_visible_after_join(self):
        service, record, account = self._setup(created_t=-12.5)
        account.join(service.invite_url("WA1"), 2.0)
        assert account.creation_date("WA1") == -12.5

    def test_creation_date_requires_membership(self):
        _, _, account = self._setup()
        with pytest.raises(NotAMemberError):
            account.creation_date("WA1")

    def test_member_phones_visible_after_join(self):
        service, record, account = self._setup(size0=30)
        account.join(service.invite_url("WA1"), 2.0)
        phones = account.member_phone_numbers("WA1", 2.0)
        assert len(phones) == record.size_on(2.0)
        assert all(phone.e164.startswith("+") for phone in phones.values())

    def test_member_phones_require_membership(self):
        _, _, account = self._setup()
        with pytest.raises(NotAMemberError):
            account.member_phone_numbers("WA1", 2.0)

    def test_rejoin_keeps_original_join_time(self):
        service, _, account = self._setup(created_t=-30.0, msg_rate=40.0)
        account.join(service.invite_url("WA1"), 3.0)
        account.join(service.invite_url("WA1"), 6.0)
        messages = list(account.messages("WA1", 8.0))
        assert any(m.t < 6.0 for m in messages)


class TestGroupFull:
    def test_join_full_group_rejected(self):
        from repro.errors import GroupFullError
        from tests.helpers import make_plan, make_whatsapp
        from repro.platforms.whatsapp import WhatsAppAccount

        service = make_whatsapp()
        service.register_group(
            make_plan(gid="WAfull", size0=257, slope=0.0, member_cap=257)
        )
        account = WhatsAppAccount(service, "acct-full")
        with pytest.raises(GroupFullError):
            account.join(service.invite_url("WAfull"), 2.0)

    def test_existing_member_unaffected_by_fullness(self):
        from tests.helpers import make_plan, make_whatsapp
        from repro.platforms.whatsapp import WhatsAppAccount

        service = make_whatsapp()
        service.register_group(
            make_plan(gid="WAgrow", size0=200, slope=60.0, member_cap=257)
        )
        account = WhatsAppAccount(service, "acct-grow")
        account.join(service.invite_url("WAgrow"), 0.0)
        # The group fills up later; re-joining (a no-op) still works.
        account.join(service.invite_url("WAgrow"), 10.0)
        assert account.joined_gids == ["WAgrow"]
