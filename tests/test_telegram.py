"""Tests for the Telegram simulator: service, web preview, data API."""

import pytest

from repro.errors import (
    MemberListHiddenError,
    NotAMemberError,
    RevokedURLError,
)
from repro.platforms.base import GroupKind
from repro.platforms.telegram import (
    TELEGRAM_CAPABILITIES,
    TelegramAPI,
    TelegramService,
    TelegramWebClient,
)
from repro.platforms.telegram.service import MEMBER_LIST_HIDDEN_PROB

from tests.helpers import make_plan, make_telegram


class TestService:
    def test_capabilities_match_table1(self):
        caps = TELEGRAM_CAPABILITIES
        assert caps.registration == "Phone"
        assert caps.has_data_api
        assert "secret" in caps.end_to_end_encryption

    def test_invite_url_variants_all_parse(self):
        service = make_telegram()
        seen_hosts = set()
        for i in range(60):
            url = service.invite_url(f"TG{i}")
            seen_hosts.add(url.split("/")[2])
            assert TelegramService.parse_invite_url(url) == service.invite_code(
                f"TG{i}"
            )
        assert "t.me" in seen_hosts
        assert "telegram.me" in seen_hosts

    def test_joinchat_form_parses(self):
        assert (
            TelegramService.parse_invite_url("https://t.me/joinchat/AbCd1234")
            == "AbCd1234"
        )

    def test_parse_rejects_whatsapp(self):
        with pytest.raises(ValueError):
            TelegramService.parse_invite_url("https://chat.whatsapp.com/AbCdEf123456")

    def test_member_list_hidden_is_stable(self):
        service = make_telegram()
        assert service.member_list_hidden("TG1") == service.member_list_hidden("TG1")

    def test_member_list_hidden_rate(self):
        service = make_telegram()
        hidden = sum(service.member_list_hidden(f"TG{i}") for i in range(2000))
        assert abs(hidden / 2000 - MEMBER_LIST_HIDDEN_PROB) < 0.05


class TestWebClient:
    def _setup(self, **kwargs):
        service = make_telegram()
        record = service.register_group(make_plan(gid="TG1", **kwargs))
        return service, record, TelegramWebClient(service)

    def test_preview_fields(self):
        service, record, client = self._setup(online_frac=0.3)
        preview = client.preview(service.invite_url("TG1"), 2.0)
        assert preview.size == record.size_on(2.0)
        assert 0 <= preview.online <= preview.size
        assert preview.kind is GroupKind.GROUP

    def test_preview_reports_channel_kind(self):
        service, record, client = self._setup(kind=GroupKind.CHANNEL)
        preview = client.preview(service.invite_url("TG1"), 2.0)
        assert preview.kind is GroupKind.CHANNEL

    def test_revoked_preview_raises(self):
        service, _, client = self._setup(revoke_t=1.5)
        with pytest.raises(RevokedURLError):
            client.preview(service.invite_url("TG1"), 2.0)


class TestAPI:
    def _setup(self, phone_visible_prob=0.5, **kwargs):
        service = make_telegram(phone_visible_prob=phone_visible_prob)
        record = service.register_group(make_plan(gid="TG1", **kwargs))
        return service, record, TelegramAPI(service, "acct")

    def test_join_and_kind(self):
        service, _, api = self._setup()
        api.join(service.invite_url("TG1"), 2.0)
        assert api.kind("TG1") is GroupKind.GROUP
        assert api.joined_gids == ["TG1"]

    def test_join_revoked_raises(self):
        service, _, api = self._setup(revoke_t=1.0)
        with pytest.raises(RevokedURLError):
            api.join(service.invite_url("TG1"), 2.0)

    def test_history_includes_prejoin_messages(self):
        # Telegram (unlike WhatsApp) serves history since creation.
        service, _, api = self._setup(created_t=-20.0, msg_rate=30.0)
        api.join(service.invite_url("TG1"), 4.0)
        messages = list(api.history("TG1", 6.0))
        assert any(m.t < 4.0 for m in messages)

    def test_history_requires_membership(self):
        _, _, api = self._setup()
        with pytest.raises(NotAMemberError):
            list(api.history("TG1", 5.0))

    def test_creation_date_and_creator_after_join(self):
        service, record, api = self._setup(created_t=-7.0, creator_id="teu5")
        api.join(service.invite_url("TG1"), 2.0)
        assert api.creation_date("TG1") == -7.0
        assert api.creator("TG1") == "teu5"

    def test_creator_requires_membership(self):
        _, _, api = self._setup()
        with pytest.raises(NotAMemberError):
            api.creator("TG1")

    def test_members_raise_when_hidden(self):
        service = make_telegram()
        api = TelegramAPI(service, "acct")
        hidden_gid = next(
            f"TGH{i}" for i in range(200) if service.member_list_hidden(f"TGH{i}")
        )
        service.register_group(make_plan(gid=hidden_gid))
        api.join(service.invite_url(hidden_gid), 2.0)
        with pytest.raises(MemberListHiddenError):
            api.members(hidden_gid, 2.0)

    def test_members_visible_when_not_hidden(self):
        service = make_telegram()
        api = TelegramAPI(service, "acct")
        visible_gid = next(
            f"TGV{i}"
            for i in range(200)
            if not service.member_list_hidden(f"TGV{i}")
        )
        record = service.register_group(make_plan(gid=visible_gid, size0=25))
        api.join(service.invite_url(visible_gid), 2.0)
        assert len(api.members(visible_gid, 2.0)) == record.size_on(2.0)

    def test_phone_respects_opt_in(self):
        # With opt-in probability 0, no profile exposes a phone.
        service, record, api = self._setup(phone_visible_prob=0.0, size0=40)
        api.join(service.invite_url("TG1"), 2.0)
        for user_id in record.roster(2.0)[:20]:
            assert api.get_user(user_id).phone is None

    def test_phone_exposed_when_opted_in(self):
        service, record, api = self._setup(phone_visible_prob=1.0, size0=40)
        api.join(service.invite_url("TG1"), 2.0)
        exposed = [
            api.get_user(u).phone for u in record.roster(2.0)[:20]
        ]
        assert all(phone is not None for phone in exposed)


class TestRateLimit:
    def _setup(self, max_calls):
        from repro.platforms.telegram import TelegramAPI
        service = make_telegram()
        service.register_group(make_plan(gid="TG1"))
        return service, TelegramAPI(service, "acct", max_calls=max_calls)

    def test_max_calls_validation(self):
        from repro.platforms.telegram import TelegramAPI
        with pytest.raises(ValueError):
            TelegramAPI(make_telegram(), "acct", max_calls=0)

    def test_flood_wait_after_quota(self):
        from repro.errors import APIRateLimitError
        service, api = self._setup(max_calls=2)
        api.join(service.invite_url("TG1"), 2.0)     # call 1
        api.creation_date("TG1")                     # call 2
        with pytest.raises(APIRateLimitError):
            api.kind("TG1")                          # call 3 -> flood wait

    def test_reset_quota_restores_access(self):
        service, api = self._setup(max_calls=2)
        api.join(service.invite_url("TG1"), 2.0)
        api.creation_date("TG1")
        api.reset_quota()
        assert api.kind("TG1") is not None

    def test_unthrottled_by_default(self):
        service, api = self._setup(max_calls=None)
        api.join(service.invite_url("TG1"), 2.0)
        for _ in range(500):
            api.creation_date("TG1")
        assert api.calls_made == 501
