"""Tests for the serve daemon: the long-lived campaign query API.

The headline invariants:

* a live daemon answers concurrent reads *while* the campaign
  advances, and a not-yet-published day is a clean 404, never a torn
  read or a 500;
* the second identical ``/v1/day/{n}`` request is a recorded cache
  hit (``X-Cache: HIT``) with a byte-identical body;
* ``/metrics`` is valid Prometheus text and byte-identical to the
  file exporter's output for the same registry state;
* SIGTERM (or ``shutdown()``) drains at a day boundary, exits
  cleanly, and the store resumes to a byte-identical export.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.study import Study, StudyConfig
from repro.errors import CheckpointError, ConfigError
from repro.serve import (
    CampaignDriver,
    ResponseCache,
    ServeConfig,
    ServeDaemon,
    StoreView,
    cache_key,
    run_load,
)
from repro.serve.load import percentile
from repro.telemetry.exporters import render_prometheus_registry

pytestmark = pytest.mark.serve

#: Same small-but-complete campaign the checkpoint suite uses.
N_DAYS = 6


def _config(**overrides):
    base = dict(
        seed=7,
        n_days=N_DAYS,
        scale=0.004,
        message_scale=0.05,
        join_day=3,
    )
    base.update(overrides)
    return StudyConfig(**base)


def _get(url, timeout=30):
    """(status, headers, body) for one GET against the daemon."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _get_error(url, timeout=30):
    """(status, decoded JSON error body) for a GET expected to fail."""
    try:
        urllib.request.urlopen(url, timeout=timeout)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{url} unexpectedly succeeded")


@pytest.fixture
def daemon(tmp_path):
    """A daemon over a fresh campaign, stopped and closed afterwards."""
    study = Study(_config())
    instance = ServeDaemon(
        study, ServeConfig(), checkpoint_dir=tmp_path / "store"
    )
    instance.start()
    try:
        yield instance
    finally:
        instance.close()


@pytest.fixture
def finished_daemon(daemon):
    """The same daemon, after its campaign ran to completion."""
    assert daemon.driver.finished.wait(180)
    assert daemon.driver.phase == "complete"
    return daemon


class TestResponseCache:
    def test_get_miss_put_hit_lru_eviction(self):
        cache = ResponseCache(2)
        assert cache.get("a") is None
        cache.put("a", (200, "t", b"A"))
        cache.put("b", (200, "t", b"B"))
        assert cache.get("a") == (200, "t", b"A")  # bumps "a"
        cache.put("c", (200, "t", b"C"))  # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        stats = cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["entries"] == 2

    def test_rejects_empty_capacity(self):
        with pytest.raises(ConfigError):
            ResponseCache(0)

    def test_cache_key_sorts_params(self):
        assert cache_key("day", "d1", {"b": "2", "a": "1"}) == cache_key(
            "day", "d1", {"a": "1", "b": "2"}
        )
        assert cache_key("day", "d1", {}) != cache_key("day", "d2", {})


class TestStoreView:
    def test_unpublished_day_is_checkpoint_error(self, tmp_path):
        study = Study(_config())
        store = study.attach_store(tmp_path / "store", anchor_every=1)
        view = StoreView(store)
        with pytest.raises(CheckpointError, match="no published days yet"):
            view.entry(0)
        assert view.days() == []
        assert view.latest_day() is None

    def test_publish_exposes_only_published_days(self, tmp_path):
        study = Study(_config())
        store = study.attach_store(tmp_path / "store", anchor_every=1)
        study.run(day_hook=lambda day: None)
        view = StoreView(store)
        view.publish_day(0, store.day_entry(0))
        assert view.days() == [0]
        # Day 1 is on disk but unpublished: invisible to readers.
        with pytest.raises(CheckpointError, match="day 1 is not published"):
            view.entry(1)
        view.publish_existing()
        assert view.days() == list(range(N_DAYS))
        assert view.latest_day() == N_DAYS - 1

    def test_record_decodes_and_caches_by_digest(self, tmp_path):
        study = Study(_config())
        store = study.attach_store(tmp_path / "store", anchor_every=1)
        study.run(day_hook=lambda day: None)
        view = StoreView(store)
        view.publish_existing()
        record = view.record(2)
        assert record["kind"] == "anchor"
        assert record["study"].config == study.config
        # Same digest -> the identical cached decode comes back.
        assert view.record(2) is record
        # record_fresh bypasses the LRU: a private object graph.
        assert view.record_fresh(2) is not record


class TestLiveDaemon:
    def test_concurrent_reads_while_campaign_advances(self, daemon):
        """Readers hammer the API from several threads mid-campaign;
        every response is a clean 200 or 404 — never a 500, never a
        torn body."""
        url = daemon.url
        failures = []

        def reader():
            for _ in range(25):
                for path in ("/v1/status", "/v1/days", "/v1/day/1"):
                    try:
                        status, _, body = _get(url + path)
                        json.loads(body)
                    except urllib.error.HTTPError as exc:
                        if exc.code != 404:
                            failures.append((path, exc.code))
                        json.loads(exc.read())  # error body is JSON too
                    except Exception as exc:  # noqa: BLE001
                        failures.append((path, repr(exc)))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert daemon.driver.finished.wait(180)
        assert daemon.driver.phase == "complete"

    def test_status_days_and_slices(self, finished_daemon):
        url = finished_daemon.url
        status, _, body = _get(url + "/v1/status")
        payload = json.loads(body)
        assert status == 200
        assert payload["phase"] == "complete"
        assert payload["latest_day"] == N_DAYS - 1
        assert payload["published_days"] == N_DAYS
        assert payload["response_cache"]["max_entries"] > 0
        assert payload["read_cache"]["enabled"] == 1
        # The scenario identity rides on status (paper-weather here).
        assert payload["scenario"] == {
            "name": "paper-weather", "personas": {"baseline": 1.0},
        }

        _, _, body = _get(url + "/v1/days")
        days = json.loads(body)["days"]
        assert [d["day"] for d in days] == list(range(N_DAYS))
        assert all(
            re.fullmatch(r"[0-9a-f]{64}", d["digest"]) for d in days
        )
        # Serve-mode default: every day an anchor, directly decodable.
        assert {d["kind"] for d in days} == {"anchor"}

        _, _, body = _get(url + f"/v1/day/{N_DAYS - 1}")
        day = json.loads(body)
        assert day["kind"] == "anchor"
        assert day["observed_groups"] > 0
        assert day["returned_groups"] == len(day["timelines"])
        assert set(day["membership"]) == {"whatsapp", "telegram", "discord"}
        # Post-join-day the campaign has joined groups somewhere.
        assert sum(day["membership"].values()) > 0
        for entry in day["timelines"]:
            assert entry["day"] == N_DAYS - 1
            assert entry["platform"] in ("whatsapp", "telegram", "discord")

    def test_day_slice_params(self, finished_daemon):
        url = finished_daemon.url
        _, _, body = _get(url + "/v1/day/2?platform=telegram&limit=3")
        day = json.loads(body)
        assert day["returned_groups"] <= 3
        assert all(
            t["platform"] == "telegram" for t in day["timelines"]
        )
        # Group timelines: pick any canonical from the full slice.
        _, _, body = _get(url + "/v1/day/2?limit=1")
        canonical = json.loads(body)["timelines"][0]["canonical"]
        _, _, body = _get(url + f"/v1/day/2?group={canonical}")
        timeline = json.loads(body)
        assert timeline["found"]
        assert timeline["group"] == canonical
        assert [s["day"] for s in timeline["timeline"]] == sorted(
            s["day"] for s in timeline["timeline"]
        )
        assert all(s["day"] <= 2 for s in timeline["timeline"])

    def test_second_identical_request_is_cache_hit(self, finished_daemon):
        url = finished_daemon.url + "/v1/day/2?limit=5"
        before = finished_daemon.cache.stats()
        status1, headers1, body1 = _get(url)
        status2, headers2, body2 = _get(url)
        assert (status1, status2) == (200, 200)
        assert headers1["X-Cache"] == "MISS"
        assert headers2["X-Cache"] == "HIT"
        assert body1 == body2
        after = finished_daemon.cache.stats()
        assert after["hits"] == before["hits"] + 1
        # The hit is also on the /metrics scrape.
        _, _, scrape = _get(finished_daemon.url + "/metrics")
        sample = re.search(
            r"^repro_serve_cache_hits_total (\d+)$",
            scrape.decode(),
            re.MULTILINE,
        )
        assert sample is not None
        assert int(sample.group(1)) >= after["hits"]

    def test_error_mapping(self, finished_daemon):
        url = finished_daemon.url
        code, body = _get_error(url + "/v1/day/99")
        assert code == 404
        assert "not published" in body["error"]
        code, body = _get_error(url + "/v1/day/nope")
        assert code == 400
        code, body = _get_error(url + "/v1/day/2?limit=0")
        assert code == 400
        code, body = _get_error(url + "/v1/day/2?platform=icq")
        assert code == 400
        code, body = _get_error(url + "/v1/day/2?frobnicate=1")
        assert code == 400
        assert "unknown query parameters" in body["error"]
        code, body = _get_error(url + "/v1/missing")
        assert code == 404

    def test_health_and_report_render(self, finished_daemon):
        url = finished_daemon.url
        _, headers, body = _get(url + "/v1/health")
        assert "Collection health" in body.decode()
        assert headers["Content-Type"].startswith("text/plain")
        _, _, body = _get(url + "/v1/report")
        text = body.decode()
        assert f"Campaign report as of day {N_DAYS - 1}" in text
        assert "Collection health" in text
        # Cached on repeat, byte-identical.
        _, headers, body2 = _get(url + "/v1/report")
        assert headers["X-Cache"] == "HIT"
        assert body2 == body


class TestMetricsEndpoint:
    SAMPLE_RE = re.compile(
        r'^repro_[a-zA-Z0-9_:]+(\{[^}]*\})? -?[0-9+.eInf-]+$'
    )

    def test_scrape_is_valid_prometheus_text(self, finished_daemon):
        # Prime the serve-side counters (the scrape excludes itself).
        _get(finished_daemon.url + "/v1/status")
        _, headers, body = _get(finished_daemon.url + "/metrics")
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        text = body.decode()
        saw_type = saw_bucket = False
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                saw_type = True
                continue
            assert self.SAMPLE_RE.match(line), f"unparseable: {line!r}"
            if "_bucket{" in line:
                saw_bucket = True
        assert saw_type and saw_bucket
        assert 'le="+Inf"' in text
        # Campaign-side and serve-side series share one scrape.
        assert "repro_checkpoint_records_total" in text
        assert "repro_serve_requests_total" in text
        assert "repro_process_lives 1" in text

    def test_scrape_matches_file_exporter_byte_for_byte(
        self, finished_daemon, tmp_path
    ):
        """The wire scrape and the exporters.py *file* output for the
        same registry state are the same bytes: one rendering path."""
        from types import SimpleNamespace

        from repro.telemetry.exporters import export_prometheus

        _, _, wire = _get(finished_daemon.url + "/metrics")
        registry, lives = finished_daemon.scrape_state()
        # export_prometheus consumes a Telemetry; feed it the scrape's
        # exact registry state through the same attribute surface.
        path = export_prometheus(
            SimpleNamespace(metrics=registry, process_lives=lives),
            tmp_path / "metrics.prom",
        )
        assert wire == path.read_bytes()
        assert wire.decode() == render_prometheus_registry(registry, lives)

    def test_quiesced_scrapes_are_byte_identical(self, finished_daemon):
        """/metrics does not count itself, so back-to-back scrapes of
        an idle daemon return identical bodies."""
        _, _, first = _get(finished_daemon.url + "/metrics")
        _, _, second = _get(finished_daemon.url + "/metrics")
        assert first == second


class TestDrainAndResume:
    def test_shutdown_drains_then_resume_is_byte_identical(
        self, tmp_path
    ):
        """Stop the daemon mid-campaign at a day boundary; the store
        passes resume and the finished export matches the golden
        uninterrupted run byte for byte."""
        import hashlib

        from repro.io import save_dataset

        def digest_of(dataset, name):
            path = tmp_path / f"{name}.json"
            save_dataset(dataset, path)
            return hashlib.sha256(path.read_bytes()).hexdigest()

        golden = digest_of(Study(_config()).run(), "golden")

        store_dir = tmp_path / "store"
        study = Study(_config())
        daemon = ServeDaemon(study, ServeConfig(), checkpoint_dir=store_dir)

        boundary = threading.Event()
        original = daemon.driver._after_day

        def stop_after_day_2(day):
            original(day)
            if day == 2:
                boundary.set()

        daemon.driver._after_day = stop_after_day_2
        daemon.start()
        assert boundary.wait(120)
        daemon.shutdown()
        daemon.close()
        assert daemon.driver.phase in ("drained", "complete")
        # Campaign stopped at a boundary >= 2, not at the end.
        store_days = daemon.study.store.days()
        assert 2 in store_days

        resumed = Study.resume(store_dir)
        assert digest_of(resumed.run(), "resumed") == golden

    def test_close_is_idempotent(self, finished_daemon):
        finished_daemon.close()
        finished_daemon.close()

    def test_sigint_handler_requests_drain_like_sigterm(self, daemon):
        """The installed handler maps SIGINT to the same drain request
        SIGTERM gets: stop flag set, then a clean close."""
        import signal

        daemon._on_signal(signal.SIGINT, None)
        assert daemon._stop.is_set()
        daemon.close()
        assert daemon.driver.phase in ("drained", "complete")

    def test_keyboard_interrupt_drains_exactly_like_sigterm(
        self, tmp_path
    ):
        """Ctrl-C is a drain, not a crash: the serve loop absorbs the
        KeyboardInterrupt, exits 0, and leaves a resumable store that
        finishes byte-identical to an uninterrupted run."""
        import hashlib

        from repro.io import save_dataset

        def digest_of(dataset, name):
            path = tmp_path / f"{name}.json"
            save_dataset(dataset, path)
            return hashlib.sha256(path.read_bytes()).hexdigest()

        golden = digest_of(Study(_config()).run(), "golden")

        store_dir = tmp_path / "store"
        daemon = ServeDaemon(
            Study(_config()), ServeConfig(), checkpoint_dir=store_dir
        )
        boundary = threading.Event()
        original_after = daemon.driver._after_day

        def mark(day):
            original_after(day)
            if day == 2:
                boundary.set()

        daemon.driver._after_day = mark
        original_wait = daemon._stop.wait

        def interrupted_wait(timeout=None):
            # Simulate Ctrl-C landing in the serve loop's wait (SIGINT
            # before the handler is installed raises right here).
            if boundary.wait(120):
                raise KeyboardInterrupt
            return original_wait(timeout)

        daemon._stop.wait = interrupted_wait
        assert daemon.serve(install_signals=False) == 0
        assert daemon.driver.phase in ("drained", "complete")
        assert 2 in daemon.study.store.days()

        resumed = Study.resume(store_dir)
        assert digest_of(resumed.run(), "resumed") == golden


class TestTransientStoreErrors:
    """A published day whose record read fails is a retryable 503,
    never a 500 — and never a 404, which is reserved for days that
    genuinely aren't published."""

    @staticmethod
    def _get_503(url):
        try:
            urllib.request.urlopen(url, timeout=30)
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())
        raise AssertionError(f"{url} unexpectedly succeeded")

    def test_day_record_read_race_maps_to_503(
        self, finished_daemon, monkeypatch
    ):
        url = finished_daemon.url

        def torn_read(day):
            raise CheckpointError(f"day {day} digest mismatch mid-read")

        monkeypatch.setattr(finished_daemon.view, "record", torn_read)
        status, headers, body = self._get_503(f"{url}/v1/day/2?limit=7")
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert "retry shortly" in body["error"]
        # An unpublished day is still a 404, not dressed up as a 503.
        status, body = _get_error(f"{url}/v1/day/999")
        assert status == 404

        # The 503 was never cached: once the store read heals, the
        # same request succeeds as a plain cache MISS.
        monkeypatch.undo()
        status, headers, _ = _get(f"{url}/v1/day/2?limit=7")
        assert status == 200
        assert headers["X-Cache"] == "MISS"
        assert "serve_errors_total{status=\"503\"} 1" in (
            finished_daemon.render_metrics()
        )

    def test_report_record_read_race_maps_to_503(
        self, finished_daemon, monkeypatch
    ):
        url = finished_daemon.url

        def torn_read(day):
            raise CheckpointError(f"day {day} record torn mid-read")

        monkeypatch.setattr(
            finished_daemon.view, "record_fresh", torn_read
        )
        status, headers, body = self._get_503(f"{url}/v1/report")
        assert status == 503
        assert headers["Retry-After"] == "1"
        monkeypatch.undo()
        status, _, report = _get(f"{url}/v1/report")
        assert status == 200 and report


class TestLoadHarness:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([], 0.5) == 0.0

    def test_load_run_is_deterministic_and_error_free(
        self, finished_daemon
    ):
        report = run_load(
            finished_daemon.url, clients=4, requests=12, seed=11
        )
        assert report.total_errors == 0
        assert report.total_requests == 4 * 12
        # The load personas come from the scenario registry (all of
        # them except the identity baseline).
        assert set(report.personas) == {
            "lurker", "poster", "spammer", "admin",
        }
        # Every persona actually ran (4 clients round-robin the 4).
        assert all(
            s.requests == 12 for s in report.personas.values()
        )
        # The poster persona replays a fixed day set: repeats hit,
        # and the spammer hammers one hot day so it hits even harder.
        assert report.personas["poster"].cache_hits > 0
        assert report.personas["spammer"].cache_hits > 0
        table = report.format_table()
        assert "p99_ms" in table and "throughput" in table
        # Determinism: the same seed replays the same request mix, so
        # hit/miss tallies now come entirely from a warm cache.
        again = run_load(
            finished_daemon.url, clients=4, requests=12, seed=11
        )
        assert again.total_errors == 0
        assert again.personas["poster"].cache_misses == 0

    def test_run_load_validates_inputs(self):
        with pytest.raises(ConfigError):
            run_load("http://127.0.0.1:1", clients=0)
        with pytest.raises(ConfigError):
            run_load("http://127.0.0.1:1", requests=0)


class TestServeConfigAndCLI:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(port=70000)
        with pytest.raises(ConfigError):
            ServeConfig(cache_entries=0)
        with pytest.raises(ConfigError):
            ServeConfig(read_cache_entries=-1)
        with pytest.raises(ConfigError):
            ServeConfig(day_delay_s=-0.5)
        assert ServeConfig(read_cache_entries=0).read_cache_entries == 0

    def test_serve_requires_checkpoint_dir(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve"])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_serve_rejects_bad_cadence(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(ConfigError, match="--checkpoint-every"):
            main(
                [
                    "serve",
                    "--checkpoint-dir", str(tmp_path / "s"),
                    "--checkpoint-every", "0",
                ]
            )

    def test_daemon_without_store_or_dir_rejected(self):
        with pytest.raises(ConfigError, match="checkpoint directory"):
            ServeDaemon(Study(_config()), ServeConfig())

    def test_serve_scenario_flags_validated(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(ConfigError, match="mutually exclusive"):
            main(
                [
                    "serve",
                    "--checkpoint-dir", str(tmp_path / "s"),
                    "--scenario", "spam-wave",
                    "--scenario-file", str(tmp_path / "pack.json"),
                ]
            )
        with pytest.raises(ConfigError, match="fresh runs only"):
            main(
                [
                    "serve",
                    "--checkpoint-dir", str(tmp_path / "s"),
                    "--resume",
                    "--scenario", "spam-wave",
                ]
            )


class TestStreamingReportSource:
    """``/v1/report?source=streaming``: the bounded-memory view."""

    @pytest.fixture
    def slices_daemon(self, tmp_path):
        """A daemon whose store records per-day analysis slices."""
        study = Study(_config())
        instance = ServeDaemon(
            study,
            ServeConfig(),
            checkpoint_dir=tmp_path / "store",
            slices=True,
        )
        instance.start()
        try:
            assert instance.driver.finished.wait(180)
            assert instance.driver.phase == "complete"
            yield instance
        finally:
            instance.close()

    def test_streaming_report_renders_and_caches(self, slices_daemon):
        url = slices_daemon.url + "/v1/report?source=streaming"
        status, headers, body = _get(url)
        text = body.decode()
        assert status == 200
        assert headers["X-Cache"] == "MISS"
        assert f"Streaming campaign report as of day {N_DAYS - 1}" in text
        assert (
            f"{N_DAYS}/{N_DAYS} day slices folded, campaign rollup "
            "folded" in text
        )
        assert "Epoch rollups" in text
        _, headers2, body2 = _get(url)
        assert headers2["X-Cache"] == "HIT"
        assert body2 == body

    def test_batch_and_streaming_cache_separately(self, slices_daemon):
        url = slices_daemon.url
        _, _, streaming = _get(url + "/v1/report?source=streaming")
        _, headers, batch = _get(url + "/v1/report")
        # The explicit default is the same cache entry as no param.
        assert headers["X-Cache"] == "MISS"
        _, headers, batch2 = _get(url + "/v1/report?source=batch")
        assert headers["X-Cache"] == "HIT"
        assert batch2 == batch
        assert batch != streaming

    def test_source_validation(self, slices_daemon):
        url = slices_daemon.url
        code, body = _get_error(url + "/v1/report?source=nope")
        assert code == 400
        assert "source must be" in body["error"]
        code, body = _get_error(url + "/v1/report?frobnicate=1")
        assert code == 400
        assert "unknown query parameters" in body["error"]

    def test_sliceless_store_is_404(self, finished_daemon):
        code, body = _get_error(
            finished_daemon.url + "/v1/report?source=streaming"
        )
        assert code == 404
        assert "--slices" in body["error"]

    def test_serve_slices_flag_validated(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(ConfigError, match="fresh runs only"):
            main(
                [
                    "serve",
                    "--checkpoint-dir", str(tmp_path / "s"),
                    "--resume",
                    "--slices",
                ]
            )
