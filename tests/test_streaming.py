"""Tests for the bounded-memory streaming analysis layer.

The headline invariant: folding a slice-enabled run store through
:class:`~repro.analysis.streaming.StreamingAnalyzer` reproduces every
batch analysis result **byte-identically** while every distribution
sample fits its reservoir — same dataclasses, same ECDF arrays, same
rendered report sections.  The ``-m streaming`` matrix extends the
guarantee across worker counts, fault profiles, and a kill-and-resume
mid-campaign, because the slices are part of the deterministic
checkpoint stream.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    content,
    interplay,
    language,
    membership,
    messages,
    revocation,
    sharing,
    staleness,
)
from repro.analysis.stats import ecdf
from repro.analysis.streaming import (
    DEFAULT_EPOCH_DAYS,
    RESERVOIR_THRESHOLD,
    StreamingAnalyzer,
    StreamingECDF,
    _label_seed,
    iter_day_slices,
)
from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.errors import CheckpointError
from repro.platforms.whatsapp import WHATSAPP_MAX_MEMBERS
from repro.reporting import (
    STREAMING_SECTIONS,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_health,
    render_interplay,
    render_streaming_report,
    render_table2,
    streaming_sections,
)

#: Same small-but-complete campaign the checkpoint suite uses:
#: discovery, monitoring, a join day, and post-join days.
N_DAYS = 6

PLATFORMS = ("whatsapp", "telegram", "discord")

#: Streaming section name -> the batch renderer it must reproduce.
BATCH_RENDERERS = {
    "fig1": render_fig1,
    "fig2": render_fig2,
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
    "health": render_health,
    "interplay": render_interplay,
    "table2": render_table2,
}


def _config(faults=None, **overrides):
    base = dict(
        seed=7,
        n_days=N_DAYS,
        scale=0.004,
        message_scale=0.05,
        join_day=3,
        faults=faults,
    )
    base.update(overrides)
    return StudyConfig(**base)


def assert_same(a, b, path=""):
    """Recursive equality that treats numpy arrays elementwise."""
    where = path or "<root>"
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=where)
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), where
        for field in dataclasses.fields(a):
            assert_same(
                getattr(a, field.name),
                getattr(b, field.name),
                f"{where}.{field.name}",
            )
    elif isinstance(a, dict):
        assert isinstance(b, dict) and sorted(a) == sorted(b), where
        for key in a:
            assert_same(a[key], b[key], f"{where}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b), where
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same(x, y, f"{where}[{i}]")
    else:
        assert a == b, f"{where}: {a!r} != {b!r}"


def _streaming_equals_batch(dataset, store_dir) -> None:
    """Every overlapping report section, byte for byte."""
    analyzer = StreamingAnalyzer.from_store(RunStore.open(store_dir))
    builders = streaming_sections(analyzer, dataset.scale)
    for name, batch_renderer in BATCH_RENDERERS.items():
        try:
            expected = batch_renderer(dataset)
        except ValueError as exc:
            with pytest.raises(ValueError, match=str(exc)):
                builders[name]()
            continue
        assert builders[name]() == expected, f"section {name} diverged"


# ---------------------------------------------------------------------------
# The sampler itself: deterministic, exact below threshold.
# ---------------------------------------------------------------------------


class TestStreamingECDF:
    def test_exact_below_threshold(self):
        values = [3.0, 1.0, 2.0, 2.0, 5.0]
        sampler = StreamingECDF(seed=11, threshold=8)
        sampler.extend(values)
        assert sampler.exact
        assert sampler.n == 5
        assert_same(sampler.to_ecdf(), ecdf(values))

    def test_reservoir_bounds_memory(self):
        sampler = StreamingECDF(seed=11, threshold=8)
        sampler.extend(float(i) for i in range(1000))
        assert not sampler.exact
        assert sampler.n == 1000
        result = sampler.to_ecdf()
        assert len(result.values) == 8
        assert set(result.values) <= {float(i) for i in range(1000)}

    def test_reservoir_is_seed_deterministic(self):
        def fill(seed):
            sampler = StreamingECDF(seed=seed, threshold=16)
            sampler.extend(float(i) for i in range(500))
            return sampler.to_ecdf().values

        np.testing.assert_array_equal(fill(3), fill(3))
        assert not np.array_equal(fill(3), fill(4))

    def test_label_seed_is_stable_and_distinct(self):
        assert _label_seed(7, "fig2:whatsapp") == _label_seed(
            7, "fig2:whatsapp"
        )
        assert _label_seed(7, "fig2:whatsapp") != _label_seed(
            7, "fig2:telegram"
        )
        assert _label_seed(7, "fig2:whatsapp") != _label_seed(
            8, "fig2:whatsapp"
        )


# ---------------------------------------------------------------------------
# Accessor-for-accessor parity against the batch analyses.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def slice_run(tmp_path_factory):
    """One campaign checkpointed with slices, plus its batch dataset."""
    store_dir = tmp_path_factory.mktemp("streaming") / "store"
    dataset = Study(_config()).run(checkpoint_dir=store_dir, slices=True)
    return store_dir, dataset


@pytest.fixture(scope="module")
def analyzer(slice_run):
    return StreamingAnalyzer.from_store(RunStore.open(slice_run[0]))


class TestAccessorParity:
    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_daily_discovery(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.daily_discovery(platform),
            sharing.daily_discovery(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_tweets_per_url(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.tweets_per_url(platform),
            sharing.tweets_per_url(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_entity_prevalence(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.entity_prevalence(platform),
            content.entity_prevalence(slice_run[1], platform),
        )

    def test_control_prevalence(self, analyzer, slice_run):
        assert_same(
            analyzer.control_prevalence(),
            content.control_prevalence(slice_run[1]),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_language_shares(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.language_shares(platform),
            language.language_shares(slice_run[1], platform),
        )

    def test_control_language_shares(self, analyzer, slice_run):
        assert_same(
            analyzer.control_language_shares(),
            language.control_language_shares(slice_run[1]),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_staleness(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.staleness(platform),
            staleness.staleness(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_revocation(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.revocation(platform),
            revocation.revocation(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_membership(self, analyzer, slice_run, platform):
        cap = WHATSAPP_MAX_MEMBERS if platform == "whatsapp" else None
        assert_same(
            analyzer.membership(platform, member_cap=cap),
            membership.membership(slice_run[1], platform, member_cap=cap),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_message_types(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.message_types(platform),
            messages.message_types(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_group_activity(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.group_activity(platform),
            messages.group_activity(slice_run[1], platform),
        )

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_user_activity(self, analyzer, slice_run, platform):
        assert_same(
            analyzer.user_activity(platform),
            messages.user_activity(slice_run[1], platform),
        )

    def test_interplay(self, analyzer, slice_run):
        assert_same(
            analyzer.interplay(), interplay.interplay(slice_run[1])
        )

    def test_health_and_survival(self, analyzer, slice_run):
        dataset = slice_run[1]
        assert_same(analyzer.health(), dataset.health)
        expected_snapshots = sum(
            len(series) for series in dataset.snapshots.values()
        )
        assert analyzer.n_snapshots == expected_snapshots
        assert analyzer.days_folded == N_DAYS

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_table2_counts(self, analyzer, slice_run, platform):
        dataset = slice_run[1]
        tweets = dataset.tweets_for(platform)
        counts = analyzer.table2_counts(platform)
        assert counts["n_tweets"] == len(tweets)
        assert counts["n_authors"] == len({t.author_id for t in tweets})
        assert counts["n_records"] == len(dataset.records_for(platform))


# ---------------------------------------------------------------------------
# Rendered report: streaming sections byte-identical to batch.
# ---------------------------------------------------------------------------


class TestRenderedReport:
    def test_sections_byte_identical(self, slice_run):
        _streaming_equals_batch(slice_run[1], slice_run[0])

    def test_full_report_contains_every_section(self, analyzer, slice_run):
        report = render_streaming_report(analyzer, slice_run[1].scale)
        assert "campaign rollup folded" in report
        assert "Epoch rollups" in report
        assert "unavailable in streaming view" not in report

    def test_only_filters_and_validates(self, analyzer, slice_run):
        report = render_streaming_report(
            analyzer, slice_run[1].scale, only=["fig2"]
        )
        assert "Fig 2" in report and "Fig 3" not in report
        with pytest.raises(ValueError, match="unknown streaming"):
            render_streaming_report(
                analyzer, slice_run[1].scale, only=["fig99"]
            )

    def test_epoch_rollups_cover_every_day(self, analyzer):
        rollups = analyzer.epoch_rollups()
        assert analyzer.epoch_days == DEFAULT_EPOCH_DAYS
        assert [r["epoch"] for r in rollups] == list(
            range(len(rollups))
        )
        assert sum(r["snapshots"] for r in rollups) == analyzer.n_snapshots

    def test_mid_campaign_view_degrades_not_fails(self, slice_run):
        store = RunStore.open(slice_run[0])
        partial = StreamingAnalyzer.from_store(store, through_day=2)
        assert partial.days_folded == 3
        assert not partial.has_rollup
        report = render_streaming_report(partial, slice_run[1].scale)
        # Joined-group sections need the end-of-campaign rollup; they
        # degrade to a one-line placeholder, never an exception.
        assert "unavailable in streaming view" in report
        assert "Fig 1" in report

    def test_reservoir_mode_keeps_scalars_exact(self, slice_run):
        store_dir, dataset = slice_run
        tiny = StreamingAnalyzer.from_store(
            RunStore.open(store_dir), reservoir_threshold=4
        )
        for platform in PLATFORMS:
            batch = sharing.tweets_per_url(dataset, platform)
            stream = tiny.tweets_per_url(platform)
            # Scalars fold from exact counters; only the CDF samples.
            assert stream.single_share_frac == batch.single_share_frac
            assert stream.mean_shares == batch.mean_shares
            assert stream.max_shares == batch.max_shares
            assert len(stream.cdf.values) <= 4

    def test_default_threshold_is_exact_at_this_scale(self, analyzer):
        assert RESERVOIR_THRESHOLD == 4096
        for platform in PLATFORMS:
            assert analyzer.tweets_per_url(platform).cdf.n <= 4096


# ---------------------------------------------------------------------------
# Store plumbing: gates, gaps, and slice-less stores.
# ---------------------------------------------------------------------------


class TestStorePlumbing:
    def test_sliceless_store_is_rejected(self, tmp_path):
        store_dir = tmp_path / "plain"
        Study(_config(n_days=3, join_day=1)).run(checkpoint_dir=store_dir)
        store = RunStore.open(store_dir)
        with pytest.raises(CheckpointError, match="slices"):
            StreamingAnalyzer.from_store(store)

    def test_iter_day_slices_is_ordered(self, slice_run):
        days = [day for day, _ in iter_day_slices(RunStore.open(slice_run[0]))]
        assert days == list(range(N_DAYS))


# ---------------------------------------------------------------------------
# The -m streaming matrix: workers x faults, plus kill-and-resume.
# ---------------------------------------------------------------------------


class _StopAfterDay(Exception):
    pass


@pytest.mark.streaming
class TestStreamingMatrix:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("faults", [None, "hostile"])
    def test_matrix_streaming_equals_batch(self, tmp_path, workers, faults):
        store_dir = tmp_path / "store"
        dataset = Study(_config(faults=faults)).run(
            checkpoint_dir=store_dir, slices=True, workers=workers
        )
        _streaming_equals_batch(dataset, store_dir)

    def test_kill_and_resume_mid_campaign(self, tmp_path):
        golden = Study(_config()).run()

        def stop_after(day):
            if day == 3:
                raise _StopAfterDay

        store_dir = tmp_path / "store"
        with pytest.raises(_StopAfterDay):
            Study(_config()).run(
                checkpoint_dir=store_dir, slices=True, day_hook=stop_after
            )
        resumed = Study.resume(store_dir).run()
        _streaming_equals_batch(resumed, store_dir)
        _streaming_equals_batch(golden, store_dir)
