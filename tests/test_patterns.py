"""Tests for URL-pattern extraction and canonicalisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import (
    DEFAULT_PATTERNS,
    GroupURL,
    extract_group_urls,
    platform_of_url,
)


class TestDefaultPatterns:
    def test_six_patterns_as_in_paper(self):
        assert len(DEFAULT_PATTERNS) == 6
        assert set(DEFAULT_PATTERNS) == {
            "chat.whatsapp.com/",
            "t.me/",
            "telegram.me/",
            "telegram.org/",
            "discord.gg/",
            "discord.com/",
        }


class TestPlatformOfUrl:
    @pytest.mark.parametrize(
        "url,platform",
        [
            ("https://chat.whatsapp.com/AbCdEf123456", "whatsapp"),
            ("chat.whatsapp.com/invite/AbCdEf123456", "whatsapp"),
            ("https://t.me/somegroup", "telegram"),
            ("https://t.me/joinchat/XyZ123ab", "telegram"),
            ("https://telegram.me/somegroup", "telegram"),
            ("https://discord.gg/abc123", "discord"),
            ("https://discord.com/invite/abc123", "discord"),
        ],
    )
    def test_known_urls(self, url, platform):
        assert platform_of_url(url) == platform

    @pytest.mark.parametrize(
        "url",
        [
            "https://example.com/x",
            "https://twitter.com/user/status/1",
            "",
            "https://discord.com/channels/1/2/",  # no invite code
        ],
    )
    def test_non_group_urls(self, url):
        assert platform_of_url(url) is None


class TestExtractGroupUrls:
    def test_extracts_code(self):
        found = extract_group_urls(["https://t.me/joinchat/AbCd1234"])
        assert found == [
            GroupURL(platform="telegram", code="AbCd1234",
                     url="https://t.me/joinchat/AbCd1234")
        ]

    def test_canonical_key(self):
        found = extract_group_urls(["https://discord.gg/xYz12345"])[0]
        assert found.canonical == "discord:xYz12345"

    def test_variants_canonicalise_together(self):
        # t.me and telegram.me forms of the same name deduplicate.
        a = extract_group_urls(["https://t.me/mygroup1"])[0]
        b = extract_group_urls(["https://telegram.me/mygroup1"])[0]
        assert a.canonical == b.canonical

    def test_multiple_urls_one_tweet(self):
        found = extract_group_urls(
            [
                "https://chat.whatsapp.com/AbCdEf123456",
                "https://discord.gg/qqq111",
                "https://example.com/ignore",
            ]
        )
        assert [g.platform for g in found] == ["whatsapp", "discord"]

    def test_empty_input(self):
        assert extract_group_urls([]) == []

    def test_duplicates_preserved(self):
        url = "https://t.me/dupgroup"
        assert len(extract_group_urls([url, url])) == 2

    def test_whatsapp_code_length_bounds(self):
        assert not extract_group_urls(["chat.whatsapp.com/short"])
        assert extract_group_urls(["chat.whatsapp.com/longenough1"])

    @given(st.lists(st.text(max_size=60), max_size=8))
    def test_never_crashes_on_arbitrary_urls(self, urls):
        for group_url in extract_group_urls(urls):
            assert group_url.platform in ("whatsapp", "telegram", "discord")
            assert group_url.code
