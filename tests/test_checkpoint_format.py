"""Format-versioning tests: dataset files and checkpoint stores.

A golden dataset fixture committed at ``FORMAT_VERSION`` guards the
on-disk layout (bumping the version forces regenerating it), and
every unsupported-version or corrupt-input path must fail with the
documented domain error naming the offending file — never a deep
traceback out of ``json``/``gzip``/``pickle``.
"""

import gzip
import json
import pathlib
import pickle

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    MANIFEST_NAME,
    RunStore,
    STATE_VERSION,
    decode_day_record,
    replay_marker,
    restore_campaign,
)
from repro.core.study import StudyConfig
from repro.errors import CheckpointError, DatasetError
from repro.io import load_dataset
from repro.io.serialize import FORMAT_VERSION

pytestmark = pytest.mark.checkpoint

GOLDEN_DATASET = pathlib.Path(__file__).parent / "data" / "dataset_v1.json"


class TestDatasetGoldenFixture:
    def test_fixture_is_at_current_format_version(self):
        document = json.loads(GOLDEN_DATASET.read_text())
        assert document["format_version"] == FORMAT_VERSION, (
            "FORMAT_VERSION changed: regenerate tests/data/dataset_v1.json"
        )

    def test_fixture_loads(self):
        dataset = load_dataset(GOLDEN_DATASET)
        assert dataset.n_days == 2
        assert list(dataset.records) == ["whatsapp:AbCdEfGh123"]
        assert dataset.tweets[1].urls == (
            "https://chat.whatsapp.com/AbCdEfGh123",
        )
        snapshot = dataset.snapshots["whatsapp:AbCdEfGh123"][0]
        assert snapshot.alive and snapshot.size == 57
        assert dataset.joined[0].n_messages == 2
        assert dataset.users[("whatsapp", "wa1")].country == "BR"

    def test_unknown_dataset_version_rejected(self, tmp_path):
        document = json.loads(GOLDEN_DATASET.read_text())
        document["format_version"] = FORMAT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document))
        with pytest.raises(
            DatasetError, match="unsupported dataset format version"
        ) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_dataset_error_is_a_value_error(self, tmp_path):
        # Backward compatibility: the version check used to raise
        # bare ValueError.
        document = json.loads(GOLDEN_DATASET.read_text())
        document["format_version"] = 0
        path = tmp_path / "old.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_dataset(path)


class TestCorruptDatasetInput:
    def test_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"format_version": 1, "records": [')
        with pytest.raises(DatasetError, match="invalid JSON") as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_gzip_names_path(self, tmp_path):
        path = tmp_path / "truncated.json.gz"
        intact = gzip.compress(GOLDEN_DATASET.read_bytes())
        path.write_bytes(intact[: len(intact) // 2])
        with pytest.raises(DatasetError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_not_gzip_at_all_names_path(self, tmp_path):
        path = tmp_path / "plain.json.gz"
        path.write_bytes(GOLDEN_DATASET.read_bytes())
        with pytest.raises(DatasetError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_missing_file_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.json")


def _store_config():
    return StudyConfig(
        seed=7, n_days=4, scale=0.004, message_scale=0.05, join_day=2
    )


class TestCheckpointStoreVersioning:
    def test_unknown_manifest_version_rejected(self, tmp_path):
        RunStore.create(tmp_path, _store_config())
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(
            CheckpointError, match="unsupported checkpoint format version"
        ) as excinfo:
            RunStore.open(tmp_path)
        assert str(manifest_path) in str(excinfo.value)

    def test_corrupt_manifest_names_path(self, tmp_path):
        RunStore.create(tmp_path, _store_config())
        manifest_path = tmp_path / MANIFEST_NAME
        manifest_path.write_text("{ not json")
        with pytest.raises(
            CheckpointError, match="corrupt checkpoint manifest"
        ) as excinfo:
            RunStore.open(tmp_path)
        assert str(manifest_path) in str(excinfo.value)

    def test_unknown_state_version_rejected(self):
        payload = pickle.dumps(
            {"state_version": STATE_VERSION + 1, "study": None}
        )
        with pytest.raises(
            CheckpointError, match="unsupported checkpoint state version"
        ):
            restore_campaign(payload)

    def test_non_envelope_payload_rejected(self):
        with pytest.raises(CheckpointError, match="envelope"):
            restore_campaign(pickle.dumps(["not", "an", "envelope"]))

    def test_undecodable_payload_rejected(self):
        with pytest.raises(CheckpointError, match="undecodable"):
            restore_campaign(b"\x80\x04 this is not a pickle")

    def test_replay_marker_roundtrips(self):
        record = decode_day_record(replay_marker(4))
        assert record == {"kind": "replay", "anchor_day": 4}

    def test_restore_rejects_replay_marker(self):
        # A marker holds no state; it must be resolved through the
        # store (Study.resume), never passed to restore_campaign.
        with pytest.raises(CheckpointError, match="replay marker"):
            restore_campaign(replay_marker(4))

    def test_marker_with_bad_anchor_day_rejected(self):
        payload = pickle.dumps(
            {"state_version": STATE_VERSION, "kind": "replay"}
        )
        with pytest.raises(CheckpointError, match="envelope"):
            decode_day_record(payload)


class TestCorruptDayRecords:
    def _store_with_day(self, tmp_path):
        store = RunStore.create(tmp_path, _store_config())
        digest = store.write_day(0, b"campaign state bytes")
        return store, tmp_path / "objects" / f"{digest}.bin.gz"

    def test_truncated_record_names_path(self, tmp_path):
        store, path = self._store_with_day(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(
            CheckpointError, match="corrupt checkpoint day record"
        ) as excinfo:
            store.read_day(0)
        assert str(path) in str(excinfo.value)

    def test_digest_mismatch_names_path(self, tmp_path):
        store, path = self._store_with_day(tmp_path)
        path.write_bytes(gzip.compress(b"tampered state"))
        with pytest.raises(
            CheckpointError, match="fails its digest check"
        ) as excinfo:
            store.read_day(0)
        assert str(path) in str(excinfo.value)

    def test_missing_record_names_path(self, tmp_path):
        store, path = self._store_with_day(tmp_path)
        path.unlink()
        with pytest.raises(
            CheckpointError, match="missing checkpoint day record"
        ):
            store.read_day(0)

    def test_unrecorded_day_reports_range(self, tmp_path):
        store, _ = self._store_with_day(tmp_path)
        with pytest.raises(CheckpointError, match="days 0..0"):
            store.read_day(7)

    def test_config_mismatch_rejected(self, tmp_path):
        store, _ = self._store_with_day(tmp_path)
        with pytest.raises(CheckpointError, match="digest mismatch"):
            store.check_config(
                StudyConfig(
                    seed=8, n_days=4, scale=0.004,
                    message_scale=0.05, join_day=2,
                )
            )
