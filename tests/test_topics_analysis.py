"""Tests for the Table 3 topic-modeling analysis (LDA on tweets)."""

import pytest

from repro.analysis.topics import extract_topics, label_topics
from repro.analysis.lda import fit_lda
from repro.reporting.tables import render_table3
from repro.text.topicbank import PLATFORM_TOPICS


@pytest.fixture(scope="module")
def whatsapp_topics(small_dataset):
    return extract_topics(
        small_dataset, "whatsapp", n_topics=10, n_iter=30, seed=1
    )


class TestExtractTopics:
    def test_ten_topics(self, whatsapp_topics):
        assert len(whatsapp_topics.topics) == 10

    def test_shares_sum_to_one(self, whatsapp_topics):
        assert sum(t.share for t in whatsapp_topics.topics) == pytest.approx(1.0)

    def test_sorted_by_share(self, whatsapp_topics):
        shares = [t.share for t in whatsapp_topics.topics]
        assert shares == sorted(shares, reverse=True)

    def test_labels_come_from_bank(self, whatsapp_topics):
        bank_labels = {s.label for s in PLATFORM_TOPICS["whatsapp"]}
        for topic in whatsapp_topics.topics:
            assert topic.label in bank_labels | {"(unmatched)"}

    def test_majority_of_topics_labelled(self, whatsapp_topics):
        labelled = [
            t for t in whatsapp_topics.topics if t.label != "(unmatched)"
        ]
        assert len(labelled) >= 7

    def test_advertisement_topic_recovered(self, whatsapp_topics):
        # Table 3's dominant WhatsApp topic (30 % of tweets).
        assert whatsapp_topics.share_of_label(
            "WhatsApp group advertisement"
        ) > 0.1

    def test_no_politics_topic(self, whatsapp_topics):
        # Paper: "we do not find any politics-related topics".
        assert all("politic" not in t.label.lower()
                   for t in whatsapp_topics.topics)

    def test_top_terms_present(self, whatsapp_topics):
        for topic in whatsapp_topics.topics:
            assert len(topic.top_terms) == 10

    def test_raises_without_english_tweets(self, small_dataset):
        with pytest.raises(ValueError):
            extract_topics(small_dataset, "whatsapp", n_topics=0)


class TestLabelTopics:
    def test_unmatched_below_threshold(self):
        # A model over a vocabulary disjoint from the bank matches nothing.
        docs = [[f"zz{i}" for i in range(8)] for _ in range(20)]
        model = fit_lda(docs, n_topics=2, n_iter=10, seed=0)
        labels = label_topics(model, "whatsapp")
        assert all(label == "(unmatched)" for label, _ in labels)

    def test_planted_bank_topic_matched(self):
        spec = PLATFORM_TOPICS["discord"][-1]  # Hentai
        docs = [list(spec.terms[:8]) for _ in range(30)]
        model = fit_lda(docs, n_topics=2, n_iter=10, seed=0)
        labels = label_topics(model, "discord")
        assert any(label == spec.label for label, _ in labels)


class TestRenderTable3:
    def test_render(self, small_dataset, whatsapp_topics):
        text = render_table3({"whatsapp": whatsapp_topics})
        assert "Table 3 [whatsapp]" in text
        assert "%" in text
