"""Tests for the daily metadata monitor."""

import pytest

from repro.core.discovery import URLRecord
from repro.core.monitor import MONITOR_HOUR_FRAC, MetadataMonitor
from repro.platforms.base import GroupKind
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher

from tests.helpers import make_discord, make_plan, make_telegram, make_whatsapp


def record_for(service, platform, gid, first_seen_t=0.1):
    return URLRecord(
        canonical=f"{platform}:{service.invite_code(gid)}",
        platform=platform,
        code=service.invite_code(gid),
        url=service.invite_url(gid),
        first_seen_t=first_seen_t,
        shares=[(1, first_seen_t)],
    )


@pytest.fixture()
def services():
    return make_whatsapp(), make_telegram(), make_discord()


@pytest.fixture()
def monitor(services):
    whatsapp, telegram, discord = services
    return MetadataMonitor(
        whatsapp=WhatsAppWebClient(whatsapp),
        telegram=TelegramWebClient(telegram),
        discord=DiscordAPI(discord, "monitor"),
        hasher=PhoneHasher("test"),
    )


class TestObservation:
    def test_whatsapp_snapshot_fields(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", size0=50))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.alive
        assert snap.size > 0
        assert snap.creator_dialing_code
        assert snap.creator_phone_hash is not None
        assert snap.kind is GroupKind.GROUP

    def test_whatsapp_phone_is_hashed_not_raw(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert len(snap.creator_phone_hash.digest) == 64

    def test_telegram_snapshot_has_online(self, services, monitor):
        _, telegram, _ = services
        telegram.register_group(make_plan(gid="TG1", online_frac=0.3))
        record = record_for(telegram, "telegram", "TG1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.online is not None
        assert 0 <= snap.online <= snap.size

    def test_discord_snapshot_has_creator_and_creation(self, services, monitor):
        _, _, discord = services
        discord.register_group(
            make_plan(gid="DC1", creator_id="diu9", created_t=-33.0)
        )
        record = record_for(discord, "discord", "DC1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.creator_id == "diu9"
        assert snap.created_t == -33.0

    def test_daily_series_accumulates(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1")
        for day in range(5):
            monitor.observe_day(day, [record])
        snaps = monitor.snapshots[record.canonical]
        assert [s.day for s in snaps] == [0, 1, 2, 3, 4]

    def test_not_observed_before_discovery(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1", first_seen_t=2.5)
        monitor.observe_day(0, [record])
        monitor.observe_day(1, [record])
        assert record.canonical not in monitor.snapshots
        monitor.observe_day(2, [record])
        assert len(monitor.snapshots[record.canonical]) == 1


class TestRevocation:
    def test_revoked_snapshot_then_dropped(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=2.5))
        record = record_for(whatsapp, "whatsapp", "WA1")
        for day in range(5):
            monitor.observe_day(day, [record])
        snaps = monitor.snapshots[record.canonical]
        assert [s.alive for s in snaps] == [True, True, False]
        assert monitor.is_dead(record.canonical)

    def test_dead_before_first_observation(self, services, monitor):
        _, _, discord = services
        # Dies within the discovery day, before the evening check.
        discord.register_group(make_plan(gid="DC1", revoke_t=0.4))
        record = record_for(discord, "discord", "DC1", first_seen_t=0.2)
        monitor.observe_day(0, [record])
        snaps = monitor.snapshots[record.canonical]
        assert len(snaps) == 1
        assert not snaps[0].alive

    def test_revoked_snapshot_carries_no_metadata(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=0.2))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.size is None
        assert snap.title == ""
        assert snap.creator_phone_hash is None

    def test_monitor_hour_is_late_evening(self):
        assert 0.9 < MONITOR_HOUR_FRAC < 1.0
