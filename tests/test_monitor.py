"""Tests for the daily metadata monitor."""

import pytest

from repro.core.discovery import URLRecord
from repro.core.monitor import MONITOR_HOUR_FRAC, MetadataMonitor
from repro.errors import APIRateLimitError
from repro.platforms.base import GroupKind
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher

from tests.helpers import make_discord, make_plan, make_telegram, make_whatsapp


def record_for(service, platform, gid, first_seen_t=0.1):
    return URLRecord(
        canonical=f"{platform}:{service.invite_code(gid)}",
        platform=platform,
        code=service.invite_code(gid),
        url=service.invite_url(gid),
        first_seen_t=first_seen_t,
        shares=[(1, first_seen_t)],
    )


@pytest.fixture()
def services():
    return make_whatsapp(), make_telegram(), make_discord()


@pytest.fixture()
def monitor(services):
    whatsapp, telegram, discord = services
    return MetadataMonitor(
        whatsapp=WhatsAppWebClient(whatsapp),
        telegram=TelegramWebClient(telegram),
        discord=DiscordAPI(discord, "monitor"),
        hasher=PhoneHasher("test"),
    )


class TestObservation:
    def test_whatsapp_snapshot_fields(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", size0=50))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.alive
        assert snap.size > 0
        assert snap.creator_dialing_code
        assert snap.creator_phone_hash is not None
        assert snap.kind is GroupKind.GROUP

    def test_whatsapp_phone_is_hashed_not_raw(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert len(snap.creator_phone_hash.digest) == 64

    def test_telegram_snapshot_has_online(self, services, monitor):
        _, telegram, _ = services
        telegram.register_group(make_plan(gid="TG1", online_frac=0.3))
        record = record_for(telegram, "telegram", "TG1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.online is not None
        assert 0 <= snap.online <= snap.size

    def test_discord_snapshot_has_creator_and_creation(self, services, monitor):
        _, _, discord = services
        discord.register_group(
            make_plan(gid="DC1", creator_id="diu9", created_t=-33.0)
        )
        record = record_for(discord, "discord", "DC1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.creator_id == "diu9"
        assert snap.created_t == -33.0

    def test_daily_series_accumulates(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1")
        for day in range(5):
            monitor.observe_day(day, [record])
        snaps = monitor.snapshots[record.canonical]
        assert [s.day for s in snaps] == [0, 1, 2, 3, 4]

    def test_not_observed_before_discovery(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1", first_seen_t=2.5)
        monitor.observe_day(0, [record])
        monitor.observe_day(1, [record])
        assert record.canonical not in monitor.snapshots
        monitor.observe_day(2, [record])
        assert len(monitor.snapshots[record.canonical]) == 1


class TestRevocation:
    def test_revoked_snapshot_then_dropped(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=2.5))
        record = record_for(whatsapp, "whatsapp", "WA1")
        for day in range(5):
            monitor.observe_day(day, [record])
        snaps = monitor.snapshots[record.canonical]
        assert [s.alive for s in snaps] == [True, True, False]
        assert monitor.is_dead(record.canonical)

    def test_dead_before_first_observation(self, services, monitor):
        _, _, discord = services
        # Dies within the discovery day, before the evening check.
        discord.register_group(make_plan(gid="DC1", revoke_t=0.4))
        record = record_for(discord, "discord", "DC1", first_seen_t=0.2)
        monitor.observe_day(0, [record])
        snaps = monitor.snapshots[record.canonical]
        assert len(snaps) == 1
        assert not snaps[0].alive

    def test_revoked_snapshot_carries_no_metadata(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=0.2))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.size is None
        assert snap.title == ""
        assert snap.creator_phone_hash is None

    def test_monitor_hour_is_late_evening(self):
        assert 0.9 < MONITOR_HOUR_FRAC < 1.0


class TestDeathReason:
    def test_revoked_url_records_revoked_reason(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=0.2))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert not snap.alive
        assert snap.death_reason == "revoked"
        assert snap.state == ""

    def test_unknown_url_records_unknown_reason(self, services, monitor):
        # The invite token is a pure hash, so a URL for a gid that was
        # never registered is well-formed but matches no group: the
        # landing page raises UnknownURLError, not RevokedURLError.
        whatsapp, _, _ = services
        record = record_for(whatsapp, "whatsapp", "GHOST")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert not snap.alive
        assert snap.state == "unknown"
        assert snap.death_reason == "unknown"
        assert monitor.is_dead(record.canonical)

    def test_live_snapshot_has_no_death_reason(self, services, monitor):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        record = record_for(whatsapp, "whatsapp", "WA1")
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.alive
        assert snap.death_reason is None

    def test_unknown_urls_excluded_from_revocation_analysis(
        self, services, monitor
    ):
        from repro.analysis.revocation import revocation
        from repro.core.dataset import StudyDataset

        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1", revoke_t=1.5))
        revoked = record_for(whatsapp, "whatsapp", "WA1")
        ghost = record_for(whatsapp, "whatsapp", "GHOST")
        for day in range(3):
            monitor.observe_day(day, [revoked, ghost])
        dataset = StudyDataset(n_days=3, scale=0.01)
        dataset.records = {r.canonical: r for r in (revoked, ghost)}
        dataset.snapshots = monitor.snapshots
        result = revocation(dataset, "whatsapp")
        assert result.n_urls == 2
        assert result.revoked_frac == 0.5
        assert result.n_unknown == 1


class _RateLimitedDiscord:
    """Discord stub: every call before day 1 hits the rate limit."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def get_invite(self, url, t):
        self.calls += 1
        if t < 1.0:
            raise APIRateLimitError("429: slow down")
        return self._inner.get_invite(url, t)


class TestTransientDegradation:
    def test_discord_rate_limit_defers_instead_of_crashing(self, services):
        # Regression: APIRateLimitError from the Discord monitor used
        # to escape observe_day and abort the whole day's pass.
        whatsapp, telegram, discord = services
        discord.register_group(make_plan(gid="DC1"))
        discord.register_group(make_plan(gid="DC2"))
        monitor = MetadataMonitor(
            whatsapp=WhatsAppWebClient(whatsapp),
            telegram=TelegramWebClient(telegram),
            discord=_RateLimitedDiscord(DiscordAPI(discord, "monitor")),
            hasher=PhoneHasher("test"),
        )
        records = [
            record_for(discord, "discord", "DC1"),
            record_for(discord, "discord", "DC2"),
        ]
        monitor.observe_day(0, records)  # must not raise
        for record in records:
            (snap,) = monitor.snapshots[record.canonical]
            assert snap.alive
            assert snap.missed
            assert not monitor.is_dead(record.canonical)
        assert monitor.health.total("missed", "discord") == 2

        # Next day the limit clears and both URLs get real snapshots.
        monitor.observe_day(1, records)
        for record in records:
            last = monitor.snapshots[record.canonical][-1]
            assert last.day == 1
            assert last.alive and not last.missed
            assert last.size is not None


class _AlwaysLimitedPreview:
    """A preview client whose every call hits the rate limiter."""

    def preview(self, url, t):
        raise APIRateLimitError("429: slow down")


class TestHealthAccounting:
    def test_deferred_probe_counted_exactly_once(self, services):
        # Regression: a probe deferred by an open breaker used to bump
        # *both* ``deferred`` and ``missed``, so the ledger's per-day
        # totals exceeded the number of probes issued.
        from repro.resilience import ResilienceExecutor

        whatsapp, telegram, discord = services
        for i in range(5):
            whatsapp.register_group(make_plan(gid=f"WA{i}"))
        monitor = MetadataMonitor(
            whatsapp=_AlwaysLimitedPreview(),
            telegram=TelegramWebClient(telegram),
            discord=DiscordAPI(discord, "monitor"),
            hasher=PhoneHasher("test"),
            resilience=ResilienceExecutor(
                failure_threshold=2, cooldown_hours=24.0
            ),
        )
        records = [
            record_for(whatsapp, "whatsapp", f"WA{i}") for i in range(5)
        ]
        monitor.observe_day(0, records)

        ledger = monitor.health
        missed = ledger.total("missed", "whatsapp")
        deferred = ledger.total("deferred", "whatsapp")
        assert deferred >= 1, "the breaker must have opened mid-pass"
        assert missed + deferred == len(records), (
            "each probe must be counted exactly once: "
            f"missed={missed} deferred={deferred} probes={len(records)}"
        )
        # Deferral degrades, never drops: every probe still yielded
        # exactly one (missed) snapshot and stays in the active set.
        for record in records:
            (snap,) = monitor.snapshots[record.canonical]
            assert snap.missed and snap.alive
            assert not monitor.is_dead(record.canonical)


class TestDiscoveryBoundary:
    def test_url_discovered_at_observation_instant_is_probed(
        self, services, monitor
    ):
        # The boundary is closed: first_seen_t == t probes the same
        # day, so sharded and sequential due-sets can never disagree.
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        t = MetadataMonitor.observation_time(0)
        record = record_for(whatsapp, "whatsapp", "WA1", first_seen_t=t)
        assert monitor.due(record, t)
        monitor.observe_day(0, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.day == 0 and snap.alive

    def test_url_discovered_after_observation_instant_waits(
        self, services, monitor
    ):
        whatsapp, _, _ = services
        whatsapp.register_group(make_plan(gid="WA1"))
        t = MetadataMonitor.observation_time(0)
        record = record_for(
            whatsapp, "whatsapp", "WA1", first_seen_t=t + 1e-9
        )
        assert not monitor.due(record, t)
        monitor.observe_day(0, [record])
        assert record.canonical not in monitor.snapshots
        monitor.observe_day(1, [record])
        (snap,) = monitor.snapshots[record.canonical]
        assert snap.day == 1
