"""Fault-injection subsystem tests: plans, injector, proxies, and the
end-to-end determinism / graceful-degradation guarantees."""

import hashlib

import pytest

from repro.core.study import Study, StudyConfig
from repro.errors import (
    APIRateLimitError,
    ConfigError,
    NetworkTimeoutError,
    TemporarilyUnavailableError,
    TransientError,
)
from repro.faults import (
    Burst,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultySearchAPI,
)
from repro.io import save_dataset

pytestmark = pytest.mark.faults

#: sha256 of the exported dataset of ``_golden_config()`` as produced
#: by the pre-resilience pipeline.  The faults-off path must keep
#: reproducing it byte for byte.
GOLDEN_SHA = "e1f068bb61b4b3a9d254dd8cfb0056a1bbb0cafff47e5bc8bb045b569a37bb75"


def _golden_config(**overrides):
    base = dict(
        seed=11,
        n_days=6,
        scale=0.004,
        message_scale=0.05,
        join_targets={"whatsapp": 20, "telegram": 10, "discord": 10},
        join_day=2,
    )
    base.update(overrides)
    return StudyConfig(**base)


def _export_sha(dataset, tmp_path, name):
    path = tmp_path / name
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest(), path


# -- plans -------------------------------------------------------------------


class TestFaultPlan:
    def test_profiles_exist(self):
        for name in ("none", "paper-like", "hostile"):
            plan = FaultPlan.profile(name)
            assert plan.name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.profile("apocalyptic")

    def test_none_profile_is_idle(self):
        assert FaultPlan.profile("none").idle
        assert not FaultPlan.profile("hostile").idle

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(specs={"myspace.preview": FaultSpec(rate=0.1)})

    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(rate=1.5)
        with pytest.raises(ConfigError):
            FaultSpec(kinds=("bluescreen",))
        with pytest.raises(ConfigError):
            Burst(start=3.0, end=3.0, rate=0.5)

    def test_burst_overrides_base_rate(self):
        spec = FaultSpec(rate=0.1, bursts=(Burst(start=2.0, end=3.0, rate=0.9),))
        assert spec.effective_rate(1.5) == 0.1
        assert spec.effective_rate(2.5) == 0.9
        assert spec.effective_rate(3.0) == 0.1


# -- injector ----------------------------------------------------------------


def _always(endpoint, kinds=("timeout",), **kw):
    return FaultPlan(specs={endpoint: FaultSpec(rate=1.0, kinds=kinds, **kw)})


class TestInjector:
    def test_rate_one_always_faults(self):
        injector = FaultInjector(_always("discord.invite"), seed=1)
        for _ in range(10):
            with pytest.raises(NetworkTimeoutError):
                injector.before_call("discord.invite", "discord", 0.5)

    def test_rate_zero_never_faults(self):
        injector = FaultInjector(FaultPlan.profile("none"), seed=1)
        for _ in range(100):
            injector.before_call("discord.invite", "discord", 0.5)

    def test_kind_maps_to_exception(self):
        cases = {
            ("rate_limit",): APIRateLimitError,
            ("unreachable",): TemporarilyUnavailableError,
            ("timeout",): NetworkTimeoutError,
        }
        for kinds, error in cases.items():
            injector = FaultInjector(_always("telegram.preview", kinds), seed=1)
            with pytest.raises(error):
                injector.before_call("telegram.preview", "telegram", 0.5)

    def test_decision_sequence_is_seed_deterministic(self):
        plan = FaultPlan(specs={"twitter.search": FaultSpec(rate=0.5)})

        def outcomes(seed):
            injector = FaultInjector(plan, seed=seed)
            out = []
            for _ in range(50):
                try:
                    injector.before_call("twitter.search", "twitter", 1.0)
                    out.append(False)
                except TransientError:
                    out.append(True)
            return out

        assert outcomes(3) == outcomes(3)
        assert outcomes(3) != outcomes(4)
        assert any(outcomes(3)) and not all(outcomes(3))

    def test_truncation_keeps_leading_fraction(self):
        plan = FaultPlan(
            specs={
                "twitter.search": FaultSpec(
                    truncate_rate=1.0, truncate_frac=0.5
                )
            }
        )
        injector = FaultInjector(plan, seed=1)
        page = list(range(10))
        kept = injector.filter_results("twitter.search", "twitter", 1.0, page)
        assert kept == page[:5]


# -- proxies -----------------------------------------------------------------


class TestProxies:
    def test_passthrough_of_unwrapped_attributes(self):
        class Target:
            recall = 0.93

            def search(self, patterns, now, since=None):
                return ["tweet"]

        proxy = FaultySearchAPI(Target(), FaultInjector(FaultPlan.profile("none"), seed=1))
        assert proxy.recall == 0.93
        assert proxy.search((), 1.0) == ["tweet"]

    def test_guarded_endpoint_raises(self):
        class Target:
            def search(self, patterns, now, since=None):  # pragma: no cover
                raise AssertionError("platform must not be touched")

        proxy = FaultySearchAPI(Target(), FaultInjector(_always("twitter.search"), seed=1))
        with pytest.raises(NetworkTimeoutError):
            proxy.search((), 1.0)


# -- end-to-end guarantees ---------------------------------------------------


@pytest.fixture(scope="module")
def hostile_study():
    study = Study(_golden_config(faults="hostile"))
    dataset = study.run()
    return study, dataset


class TestEndToEnd:
    def test_faults_off_is_byte_identical_to_seed_output(self, tmp_path):
        dataset = Study(_golden_config()).run()
        sha, _ = _export_sha(dataset, tmp_path, "bare.json")
        assert sha == GOLDEN_SHA

    def test_profile_none_matches_bare_pipeline(self, tmp_path):
        dataset = Study(_golden_config(faults="none")).run()
        sha, path = _export_sha(dataset, tmp_path, "none.json")
        assert sha == GOLDEN_SHA
        assert b'"health"' not in path.read_bytes()
        assert b'"state"' not in path.read_bytes()

    def test_same_seed_same_plan_is_byte_identical(
        self, hostile_study, tmp_path
    ):
        _, first = hostile_study
        second = Study(_golden_config(faults="hostile")).run()
        sha1, _ = _export_sha(first, tmp_path, "h1.json")
        sha2, _ = _export_sha(second, tmp_path, "h2.json")
        assert sha1 == sha2

    def test_fault_seed_varies_schedule_only(self, hostile_study, tmp_path):
        _, first = hostile_study
        other = Study(_golden_config(faults="hostile", fault_seed=99)).run()
        sha1, _ = _export_sha(first, tmp_path, "fs1.json")
        sha2, _ = _export_sha(other, tmp_path, "fs2.json")
        assert sha1 != sha2
        # Same world underneath: discovery cannot exceed the bare run,
        # and the record keys come from the same tweet population.
        assert set(other.records) <= set(
            Study(_golden_config()).run().records
        ) | set(first.records)

    def test_hostile_run_completes_with_degradation(self, hostile_study):
        _, dataset = hostile_study
        health = dataset.health
        assert health is not None and not health.is_clean()
        assert health.total("faults") > 0
        assert health.total("retries") > 0
        assert health.total("trips") > 0
        assert health.total("missed") > 0

    def test_no_live_group_falsely_marked_dead(self, hostile_study):
        study, dataset = hostile_study
        for canonical, snaps in dataset.snapshots.items():
            last = snaps[-1]
            if last.alive:
                continue
            platform, code = canonical.split(":", 1)
            if last.death_reason == "unknown":
                continue
            record = study.world.platform(platform).group_by_invite(code)
            assert record.is_revoked_at(last.t), (
                f"{canonical} marked dead at t={last.t} but not revoked"
            )

    def test_missed_groups_are_reprobed_next_day(self, hostile_study):
        _, dataset = hostile_study
        recovered = 0
        for snaps in dataset.snapshots.values():
            for prev, nxt in zip(snaps, snaps[1:]):
                if prev.missed:
                    assert nxt.day == prev.day + 1
                    if nxt.alive and not nxt.missed:
                        recovered += 1
        assert recovered > 0

    def test_health_round_trips_through_export(self, hostile_study, tmp_path):
        from repro.io import load_dataset

        _, dataset = hostile_study
        path = tmp_path / "health.json"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.health is not None
        assert loaded.health == dataset.health
        n_missed = sum(
            1 for s in loaded.snapshots.values() for snap in s if snap.missed
        )
        assert n_missed == sum(
            1 for s in dataset.snapshots.values() for snap in s if snap.missed
        )

    def test_health_report_renders(self, hostile_study):
        from repro.reporting import render_health

        _, dataset = hostile_study
        text = render_health(dataset)
        assert "Collection health" in text
        assert "missed" in text

    def test_clean_report_renders_all_clear(self):
        from repro.core.dataset import StudyDataset
        from repro.reporting import render_health

        text = render_health(StudyDataset(n_days=1, scale=0.01))
        assert "clean campaign" in text
