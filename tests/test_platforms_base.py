"""Tests for the shared platform ground-truth model (GroupRecord etc.)."""

import numpy as np
import pytest

from repro.errors import UnknownURLError
from repro.platforms.base import (
    GroupKind,
    HISTORY_DAYS_CAP,
    Message,
    MessageType,
    ROSTER_MATERIALISE_CAP,
)

from tests.helpers import make_discord, make_plan, make_telegram, make_whatsapp


class TestRegistration:
    def test_register_and_lookup(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(gid="WA1"))
        assert service.group("WA1") is record

    def test_unknown_gid_raises(self):
        with pytest.raises(UnknownURLError):
            make_whatsapp().group("nope")

    def test_invite_roundtrip(self):
        service = make_whatsapp()
        service.register_group(make_plan(gid="WA1"))
        code = service.invite_code("WA1")
        assert service.group_by_invite(code).gid == "WA1"

    def test_unknown_invite_raises(self):
        with pytest.raises(UnknownURLError):
            make_whatsapp().group_by_invite("A" * 22)

    def test_invite_code_stable(self):
        service = make_whatsapp()
        assert service.invite_code("WA1") == service.invite_code("WA1")

    def test_invite_codes_unique(self):
        service = make_whatsapp()
        codes = {service.invite_code(f"WA{i}") for i in range(500)}
        assert len(codes) == 500


class TestTrajectory:
    def test_size_grows_with_positive_slope(self):
        service = make_whatsapp()
        record = service.register_group(
            make_plan(size0=50, slope=5.0, anchor_t=0.0, member_cap=100_000)
        )
        assert record.size_on(20.0) > record.size_on(0.0)

    def test_size_respects_cap(self):
        service = make_whatsapp()
        record = service.register_group(
            make_plan(size0=250, slope=100.0, member_cap=257)
        )
        assert record.size_on(30.0) <= 257

    def test_size_never_below_one(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(size0=5, slope=-50.0))
        assert record.size_on(30.0) >= 1

    def test_size_deterministic(self):
        service = make_whatsapp()
        record = service.register_group(make_plan())
        assert record.size_on(3.0) == record.size_on(3.0)

    def test_revocation_boundary(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(revoke_t=5.0))
        assert not record.is_revoked_at(4.99)
        assert record.is_revoked_at(5.0)

    def test_never_revoked(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(revoke_t=None))
        assert not record.is_revoked_at(1e9)

    def test_online_bounded_by_size(self):
        service = make_telegram()
        record = service.register_group(make_plan(gid="TG1", online_frac=0.9))
        for day in range(6):
            assert 0 <= record.online_on(float(day)) <= record.size_on(float(day))


class TestRoster:
    def test_roster_size_matches_group_size(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(size0=40, slope=0.0))
        assert len(record.roster(2.0)) == record.size_on(2.0)

    def test_roster_capped(self):
        service = make_telegram()
        record = service.register_group(
            make_plan(gid="TG1", size0=ROSTER_MATERIALISE_CAP + 500,
                      member_cap=200_000)
        )
        assert len(record.roster(2.0)) <= ROSTER_MATERIALISE_CAP

    def test_roster_prefix_stable_over_growth(self):
        service = make_whatsapp()
        record = service.register_group(
            make_plan(size0=30, slope=3.0, anchor_t=0.0, member_cap=100_000)
        )
        early = record.roster(1.0)
        late = record.roster(10.0)
        assert late[: len(early)] == early

    def test_creator_always_member(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(creator_id="whu99"))
        assert "whu99" in record.roster(2.0)

    def test_roster_ids_unique(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(size0=200, member_cap=257))
        roster = record.roster(2.0)
        assert len(set(roster)) == len(roster)

    def test_active_members_subset(self):
        service = make_whatsapp()
        record = service.register_group(make_plan(active_frac=0.3))
        active = record.active_members(2.0)
        assert set(active) <= set(record.roster(2.0))
        assert len(active) >= 1

    def test_channel_has_few_posters(self):
        service = make_telegram()
        record = service.register_group(
            make_plan(gid="TG2", kind=GroupKind.CHANNEL, size0=5000,
                      member_cap=1_000_000, active_frac=0.9)
        )
        assert len(record.active_members(2.0)) <= 3


class TestMessages:
    def _record(self, **kwargs):
        service = make_whatsapp()
        return service.register_group(make_plan(**kwargs))

    def test_messages_deterministic(self):
        record = self._record()
        a = [m.message_id for m in record.messages_between(2.0, 5.0)]
        b = [m.message_id for m in record.messages_between(2.0, 5.0)]
        assert a == b

    def test_messages_ordered_in_time(self):
        record = self._record(msg_rate=30.0)
        times = [m.t for m in record.messages_between(2.0, 6.0)]
        assert times == sorted(times)

    def test_messages_within_window(self):
        record = self._record(msg_rate=30.0)
        for message in record.messages_between(2.5, 4.5):
            assert 2.5 <= message.t < 4.5

    def test_no_messages_before_creation(self):
        record = self._record(created_t=3.0, msg_rate=50.0)
        assert not list(record.messages_between(0.0, 3.0))

    def test_no_messages_after_revocation(self):
        record = self._record(revoke_t=4.0, msg_rate=50.0)
        assert not list(record.messages_between(6.0, 9.0))

    def test_history_cap(self):
        record = self._record(created_t=-2000.0, msg_rate=5.0)
        messages = list(record.messages_between(-2000.0, 10.0))
        assert all(m.t >= 10.0 - HISTORY_DAYS_CAP for m in messages)

    def test_senders_are_active_members(self):
        record = self._record(msg_rate=40.0)
        active = set(record.active_members(6.0))
        for message in record.messages_between(2.0, 6.0):
            assert message.sender_id in active

    def test_scale_thins_volume(self):
        record = self._record(msg_rate=100.0)
        full = len(list(record.messages_between(2.0, 8.0, scale=1.0)))
        thin = len(list(record.messages_between(2.0, 8.0, scale=0.1)))
        assert thin < full / 3

    def test_with_text_false_skips_bodies(self):
        record = self._record(msg_rate=40.0)
        for message in record.messages_between(2.0, 4.0, with_text=False):
            assert message.text == ""

    def test_text_messages_have_topic_words(self):
        record = self._record(msg_rate=60.0, topic_label="Cryptocurrencies")
        texts = [
            m.text
            for m in record.messages_between(2.0, 6.0)
            if m.mtype is MessageType.TEXT
        ]
        assert texts
        joined = " ".join(texts)
        assert any(word in joined for word in ("bitcoin", "crypto", "ethereum"))

    def test_type_mix_mostly_text(self):
        record = self._record(msg_rate=200.0)
        messages = list(record.messages_between(2.0, 8.0))
        text_frac = sum(
            1 for m in messages if m.mtype is MessageType.TEXT
        ) / len(messages)
        assert 0.65 < text_frac < 0.9  # WhatsApp calibration is 78 %

    def test_message_ids_unique(self):
        record = self._record(msg_rate=80.0)
        ids = [m.message_id for m in record.messages_between(2.0, 6.0)]
        assert len(set(ids)) == len(ids)


class TestUserProfiles:
    def test_profile_cached_and_deterministic(self):
        service = make_whatsapp()
        assert service.user_profile("whu7") is service.user_profile("whu7")

    def test_profile_deterministic_across_instances(self):
        a = make_whatsapp(seed=9).user_profile("whu7")
        b = make_whatsapp(seed=9).user_profile("whu7")
        assert a.phone == b.phone
        assert a.country == b.country

    def test_phone_present_when_model_requires(self):
        profile = make_whatsapp().user_profile("whu7")
        assert profile.phone is not None
        assert profile.phone.country == profile.country

    def test_no_phone_on_discord_model(self):
        profile = make_discord().user_profile("diu7")
        assert profile.phone is None

    def test_linked_accounts_only_on_discord_model(self):
        service = make_discord()
        linked = [
            service.user_profile(f"diu{i}").linked_accounts for i in range(200)
        ]
        frac = sum(1 for accounts in linked if accounts) / len(linked)
        assert 0.3 < frac < 0.7  # model prob is 0.5

    def test_linked_account_platforms_valid(self):
        service = make_discord()
        for i in range(100):
            for account in service.user_profile(f"diu{i}").linked_accounts:
                assert account.platform in ("twitch", "steam")

    def test_country_distribution_followed(self):
        service = make_whatsapp()
        countries = [service.user_profile(f"whu{i}").country for i in range(400)]
        frac_br = countries.count("BR") / len(countries)
        assert 0.4 < frac_br < 0.6  # model prob is 0.5
