"""Resilience-layer tests: circuit breakers, seeded backoff, the
executor, the health ledger, and the determinism guard."""

from pathlib import Path

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    NetworkTimeoutError,
    RevokedURLError,
)
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CollectionHealth,
    ResilienceExecutor,
    RetryPolicy,
    backoff_hours,
    backoff_schedule,
)

pytestmark = pytest.mark.faults


# -- circuit breaker ---------------------------------------------------------


class TestCircuitBreaker:
    def test_full_lifecycle_closed_open_half_open_closed(self):
        breaker = CircuitBreaker("discord", failure_threshold=3,
                                 cooldown_hours=6.0)
        assert breaker.state_at(0.0) is BreakerState.CLOSED

        for _ in range(3):
            assert breaker.allow(1.0)
            breaker.record_failure(1.0)
        assert breaker.state_at(1.0) is BreakerState.OPEN
        assert not breaker.allow(1.0)
        assert breaker.trips == 1

        # Still open strictly before the cooldown elapses (6 h = 0.25 d).
        assert breaker.state_at(1.0 + 0.25 - 1e-9) is BreakerState.OPEN
        assert breaker.state_at(1.25) is BreakerState.HALF_OPEN
        assert breaker.allow(1.25)

        breaker.record_success(1.25)
        assert breaker.state_at(1.25) is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("telegram", failure_threshold=2,
                                 cooldown_hours=12.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state_at(0.0) is BreakerState.OPEN

        t_probe = 0.0 + 12.0 / 24.0
        assert breaker.state_at(t_probe) is BreakerState.HALF_OPEN
        breaker.record_failure(t_probe)
        assert breaker.state_at(t_probe) is BreakerState.OPEN
        assert breaker.trips == 2
        # The new cooldown counts from the probe, not the first trip.
        assert breaker.state_at(t_probe + 0.5) is BreakerState.HALF_OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("whatsapp", failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state_at(0.0) is BreakerState.CLOSED

    def test_trip_bumps_health_ledger(self):
        health = CollectionHealth()
        breaker = CircuitBreaker("discord", failure_threshold=1, health=health)
        breaker.record_failure(4.7)
        assert health.total("trips", "discord") == 1
        assert health.by_day("trips", "discord") == {4: 1}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_hours=0.0)


# -- seeded backoff ----------------------------------------------------------


class TestBackoff:
    def test_schedule_is_reproducible(self):
        policy = RetryPolicy(max_attempts=5)
        first = backoff_schedule(policy, seed=7, key="telegram/observe/0")
        second = backoff_schedule(policy, seed=7, key="telegram/observe/0")
        assert first == second
        assert len(first) == 4

    def test_schedule_varies_with_seed_and_key(self):
        policy = RetryPolicy(max_attempts=4)
        base = backoff_schedule(policy, seed=7, key="a")
        assert base != backoff_schedule(policy, seed=8, key="a")
        assert base != backoff_schedule(policy, seed=7, key="b")

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_hours=0.5, multiplier=2.0,
            max_delay_hours=4.0, jitter=0.25,
        )
        for attempt in range(1, policy.max_attempts):
            raw = min(
                policy.max_delay_hours,
                policy.base_delay_hours * policy.multiplier ** (attempt - 1),
            )
            for seed in range(20):
                delay = backoff_hours(policy, attempt, seed, "k")
                assert raw * 0.75 <= delay <= raw * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay_hours=1.0,
                             multiplier=2.0, max_delay_hours=16.0, jitter=0.0)
        assert backoff_schedule(policy, seed=1, key="k") == [1.0, 2.0, 4.0]

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_hours=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)


# -- executor ----------------------------------------------------------------


class _Flaky:
    """Callable failing transiently the first ``n_failures`` times."""

    def __init__(self, n_failures):
        self.n_failures = n_failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise NetworkTimeoutError(f"flake #{self.calls}")
        return "ok"


class TestExecutor:
    def test_retries_until_success(self):
        ex = ResilienceExecutor(seed=1)
        fn = _Flaky(2)
        assert ex.call("telegram", "observe", 1.0, fn) == "ok"
        assert fn.calls == 3
        assert ex.health.total("retries", "telegram") == 2
        assert ex.health.total("failures", "telegram") == 2
        assert ex.health.total("backoff_hours", "telegram") > 0

    def test_exhaustion_reraises_last_transient(self):
        ex = ResilienceExecutor(seed=1, policy=RetryPolicy(max_attempts=2),
                                failure_threshold=100)
        fn = _Flaky(10)
        with pytest.raises(NetworkTimeoutError):
            ex.call("discord", "invite", 1.0, fn)
        assert fn.calls == 2

    def test_breaker_trip_stops_retries_early(self):
        ex = ResilienceExecutor(seed=1, policy=RetryPolicy(max_attempts=5),
                                failure_threshold=2)
        fn = _Flaky(10)
        with pytest.raises(NetworkTimeoutError):
            ex.call("discord", "invite", 1.0, fn)
        assert fn.calls == 2  # tripped after 2 consecutive failures
        assert ex.breaker("discord", "invite").trips == 1

    def test_open_breaker_rejects_without_touching_platform(self):
        ex = ResilienceExecutor(seed=1, policy=RetryPolicy(max_attempts=1),
                                failure_threshold=1, cooldown_hours=6.0)
        with pytest.raises(NetworkTimeoutError):
            ex.call("whatsapp", "preview", 1.0, _Flaky(5))
        probe = _Flaky(0)
        with pytest.raises(CircuitOpenError):
            ex.call("whatsapp", "preview", 1.01, probe)
        assert probe.calls == 0
        assert ex.health.total("rejected", "whatsapp") == 1

    def test_half_open_probe_closes_breaker(self):
        ex = ResilienceExecutor(seed=1, policy=RetryPolicy(max_attempts=1),
                                failure_threshold=1, cooldown_hours=6.0)
        with pytest.raises(NetworkTimeoutError):
            ex.call("whatsapp", "preview", 1.0, _Flaky(5))
        assert ex.call("whatsapp", "preview", 1.5, _Flaky(0)) == "ok"
        assert ex.breaker("whatsapp", "preview").state_at(1.5) is (
            BreakerState.CLOSED
        )

    def test_non_transient_errors_pass_through(self):
        ex = ResilienceExecutor(seed=1)

        def revoked():
            raise RevokedURLError("gone for real")

        with pytest.raises(RevokedURLError):
            ex.call("telegram", "observe", 1.0, revoked)
        assert ex.health.total("retries") == 0
        assert ex.health.total("failures") == 0

    def test_breakers_isolated_per_platform_op(self):
        ex = ResilienceExecutor(seed=1, policy=RetryPolicy(max_attempts=1),
                                failure_threshold=1)
        with pytest.raises(NetworkTimeoutError):
            ex.call("discord", "invite", 1.0, _Flaky(5))
        assert ex.call("discord", "join", 1.0, _Flaky(0)) == "ok"
        assert ex.call("telegram", "invite", 1.0, _Flaky(0)) == "ok"


# -- health ledger -----------------------------------------------------------


class TestCollectionHealth:
    def test_clean_until_dirty_field_bumped(self):
        health = CollectionHealth()
        assert health.is_clean()
        health.bump("twitter", 0, "attempts", 100)
        assert health.is_clean()  # attempts alone is normal operation
        health.bump("twitter", 0, "retries")
        assert not health.is_clean()

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            CollectionHealth().bump("twitter", 0, "vibes")

    def test_round_trip_and_equality(self):
        health = CollectionHealth()
        health.bump("telegram", 2, "missed", 3)
        health.bump("discord", 5, "backoff_hours", 1.75)
        clone = CollectionHealth.from_dict(health.to_dict())
        assert clone == health
        assert clone.by_day("missed", "telegram") == {2: 3}
        clone.bump("discord", 5, "trips")
        assert clone != health


# -- determinism guard -------------------------------------------------------

_FORBIDDEN = (
    "time.time(",
    "import random",
    "from random",
    "datetime.now",
    "perf_counter",
)


def test_no_wall_clock_or_stdlib_random_in_fault_packages():
    """The fault/resilience subsystem must stay a pure function of the
    seed: grep its sources for wall-clock and stdlib-random usage."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for package in ("faults", "resilience"):
        for path in sorted((src / package).glob("*.py")):
            text = path.read_text()
            for token in _FORBIDDEN:
                if token in text:
                    offenders.append(f"{path.name}: {token}")
    assert not offenders, f"nondeterministic calls found: {offenders}"
