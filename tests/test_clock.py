"""Tests for the simulation clock."""

from datetime import date

import pytest

from repro.clock import STUDY_DAYS, STUDY_START, SimClock, sim_day_to_date


class TestConstants:
    def test_study_start_matches_paper(self):
        assert STUDY_START == date(2020, 4, 8)

    def test_window_is_38_days(self):
        assert STUDY_DAYS == 38

    def test_window_ends_may_15(self):
        # Day 37 is the last collection day: 2020-05-15.
        assert sim_day_to_date(37) == date(2020, 5, 15)


class TestSimDayToDate:
    def test_day_zero(self):
        assert sim_day_to_date(0.0) == STUDY_START

    def test_fractional_day_rounds_down(self):
        assert sim_day_to_date(0.99) == STUDY_START

    def test_next_day(self):
        assert sim_day_to_date(1.0) == date(2020, 4, 9)


class TestSimClock:
    def test_initial_state(self):
        clock = SimClock()
        assert clock.t == 0.0
        assert clock.day == 0
        assert not clock.finished

    def test_advance_hours(self):
        clock = SimClock()
        clock.advance_hours(12)
        assert clock.t == pytest.approx(0.5)
        assert clock.day == 0

    def test_advance_to_day(self):
        clock = SimClock()
        clock.advance_to_day(5)
        assert clock.day == 5

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to_day(3)
        with pytest.raises(ValueError):
            clock.advance_to_day(2)

    def test_days_iterator_covers_window(self):
        clock = SimClock(n_days=5)
        assert list(clock.days()) == [0, 1, 2, 3, 4]
        assert clock.finished

    def test_today_is_calendar_date(self):
        clock = SimClock()
        clock.advance_to_day(7)
        assert clock.today == date(2020, 4, 15)
