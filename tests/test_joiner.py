"""Tests for the group joiner and in-group collection."""

import pytest

from repro.core.discovery import URLRecord
from repro.core.joiner import DEFAULT_JOIN_TARGETS, GroupJoiner
from repro.platforms.base import GroupKind, MessageType
from repro.privacy.hashing import PhoneHasher

from tests.helpers import make_discord, make_plan, make_telegram, make_whatsapp


def record_for(service, platform, gid, first_seen_t=0.1):
    return URLRecord(
        canonical=f"{platform}:{service.invite_code(gid)}",
        platform=platform,
        code=service.invite_code(gid),
        url=service.invite_url(gid),
        first_seen_t=first_seen_t,
        shares=[(1, first_seen_t)],
    )


@pytest.fixture()
def setup():
    whatsapp = make_whatsapp()
    telegram = make_telegram(phone_visible_prob=1.0)
    discord = make_discord()
    joiner = GroupJoiner(
        whatsapp, telegram, discord, hasher=PhoneHasher("t"), seed=1,
        member_fetch_cap=50,
    )
    return whatsapp, telegram, discord, joiner


class TestDefaults:
    def test_paper_join_targets(self):
        assert DEFAULT_JOIN_TARGETS == {
            "whatsapp": 416,
            "telegram": 100,
            "discord": 100,
        }


class TestJoining:
    def test_joins_up_to_target(self, setup):
        whatsapp, _, _, joiner = setup
        records = []
        for i in range(10):
            whatsapp.register_group(make_plan(gid=f"WA{i}"))
            records.append(record_for(whatsapp, "whatsapp", f"WA{i}"))
        joined = joiner.join_sample(records, {"whatsapp": 4}, join_t=2.0)
        assert joined == 4

    def test_joins_all_when_fewer_candidates(self, setup):
        whatsapp, _, _, joiner = setup
        whatsapp.register_group(make_plan(gid="WA0"))
        records = [record_for(whatsapp, "whatsapp", "WA0")]
        assert joiner.join_sample(records, {"whatsapp": 99}, join_t=2.0) == 1

    def test_dead_invites_skipped(self, setup):
        whatsapp, _, _, joiner = setup
        records = []
        for i in range(6):
            revoke = 1.0 if i % 2 else None
            whatsapp.register_group(make_plan(gid=f"WA{i}", revoke_t=revoke))
            records.append(record_for(whatsapp, "whatsapp", f"WA{i}"))
        joined = joiner.join_sample(records, {"whatsapp": 6}, join_t=2.0)
        assert joined == 3  # only the unrevoked half

    def test_whatsapp_spawns_accounts_past_ban_limit(self, setup):
        whatsapp, _, _, joiner = setup
        n = 320  # above one account's 250-300 ban threshold
        records = []
        for i in range(n):
            whatsapp.register_group(make_plan(gid=f"WA{i}", msg_rate=0.0))
            records.append(record_for(whatsapp, "whatsapp", f"WA{i}"))
        joined = joiner.join_sample(records, {"whatsapp": n}, join_t=2.0)
        assert joined == n
        assert len(joiner._wa_accounts) >= 2

    def test_discord_spawns_accounts_past_100(self, setup):
        _, _, discord, joiner = setup
        n = 120
        records = []
        for i in range(n):
            discord.register_group(
                make_plan(gid=f"DC{i}", creator_id="diu1", msg_rate=0.0)
            )
            records.append(record_for(discord, "discord", f"DC{i}"))
        joined = joiner.join_sample(records, {"discord": n}, join_t=2.0)
        assert joined == n
        assert len(joiner._dc_apis) == 2


class TestCollection:
    def test_whatsapp_collection(self, setup):
        whatsapp, _, _, joiner = setup
        whatsapp.register_group(
            make_plan(gid="WA1", msg_rate=30.0, created_t=-5.0, size0=20)
        )
        records = [record_for(whatsapp, "whatsapp", "WA1")]
        joiner.join_sample(records, {"whatsapp": 1}, join_t=2.0)
        joined, users = joiner.collect(until_t=8.0)
        (data,) = joined
        assert data.platform == "whatsapp"
        assert data.created_t == -5.0
        assert data.n_messages > 0
        # Only post-join days are counted (WhatsApp shows no history).
        assert min(data.daily_counts) >= 2
        assert data.size_at_join == len(data.member_ids)
        # Every member's phone leaked (hashed) into the observations.
        assert len(users) == len(data.member_ids)
        assert all(u.phone_hash is not None for u in users.values())

    def test_telegram_collection_visible_members(self, setup):
        _, telegram, _, joiner = setup
        gid = next(
            f"TGV{i}"
            for i in range(200)
            if not telegram.member_list_hidden(f"TGV{i}")
        )
        telegram.register_group(
            make_plan(gid=gid, msg_rate=20.0, created_t=-10.0, size0=30)
        )
        records = [record_for(telegram, "telegram", gid)]
        joiner.join_sample(records, {"telegram": 1}, join_t=2.0)
        joined, users = joiner.collect(until_t=6.0)
        (data,) = joined
        assert not data.member_list_hidden
        assert data.member_ids
        assert data.size_at_join is not None  # from the web preview
        # History reaches back before the join (since creation).
        assert min(data.daily_counts) < 2
        assert users  # member profiles observed

    def test_telegram_collection_hidden_members(self, setup):
        _, telegram, _, joiner = setup
        gid = next(
            f"TGH{i}" for i in range(200) if telegram.member_list_hidden(f"TGH{i}")
        )
        telegram.register_group(make_plan(gid=gid, msg_rate=20.0, created_t=-3.0))
        records = [record_for(telegram, "telegram", gid)]
        joiner.join_sample(records, {"telegram": 1}, join_t=2.0)
        joined, users = joiner.collect(until_t=6.0)
        (data,) = joined
        assert data.member_list_hidden
        assert not data.member_ids
        # Posters are still observed via their messages.
        poster_users = [u for u in users.values() if u.via == "poster"]
        assert poster_users

    def test_discord_collection(self, setup):
        _, _, discord, joiner = setup
        discord.register_group(
            make_plan(gid="DC1", creator_id="diu1", msg_rate=25.0,
                      created_t=-8.0, size0=40)
        )
        records = [record_for(discord, "discord", "DC1")]
        joiner.join_sample(records, {"discord": 1}, join_t=2.0)
        joined, users = joiner.collect(until_t=6.0)
        (data,) = joined
        assert data.created_t == -8.0
        assert data.creator_id == "diu1"
        assert data.n_messages > 0
        # Observed users are exactly the posters.
        assert set(u.user_id for u in users.values()) == set(data.sender_counts)

    def test_message_scale_thins_collection(self, setup):
        whatsapp, _, _, joiner = setup
        whatsapp.register_group(make_plan(gid="WA1", msg_rate=100.0))
        records = [record_for(whatsapp, "whatsapp", "WA1")]
        joiner.join_sample(records, {"whatsapp": 1}, join_t=2.0)
        full, _ = joiner.collect(until_t=10.0, message_scale=1.0)
        thin, _ = joiner.collect(until_t=10.0, message_scale=0.05)
        assert thin[0].n_messages < full[0].n_messages / 5

    def test_type_counts_sum_to_total(self, setup):
        whatsapp, _, _, joiner = setup
        whatsapp.register_group(make_plan(gid="WA1", msg_rate=50.0))
        records = [record_for(whatsapp, "whatsapp", "WA1")]
        joiner.join_sample(records, {"whatsapp": 1}, join_t=2.0)
        joined, _ = joiner.collect(until_t=8.0)
        (data,) = joined
        assert sum(data.type_counts.values()) == data.n_messages
        assert sum(data.daily_counts.values()) == data.n_messages
        assert sum(data.sender_counts.values()) == data.n_messages

    def test_member_fetch_cap_respected(self, setup):
        _, telegram, _, joiner = setup
        gid = next(
            f"TGc{i}"
            for i in range(300)
            if not telegram.member_list_hidden(f"TGc{i}")
        )
        telegram.register_group(
            make_plan(gid=gid, size0=500, member_cap=10_000, msg_rate=1.0)
        )
        records = [record_for(telegram, "telegram", gid)]
        joiner.join_sample(records, {"telegram": 1}, join_t=2.0)
        joined, _ = joiner.collect(until_t=4.0)
        assert len(joined[0].member_ids) <= 50  # fixture cap
