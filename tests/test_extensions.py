"""Tests for the future-work extensions (focused collection, toxicity)."""

import pytest

from repro.extensions import (
    FocusedCollector,
    TopicFilter,
    ToxicityScorer,
    platform_toxicity,
)
from repro.extensions.focused import BUILTIN_TOPICS


class TestTopicFilter:
    def test_builtin_lookup(self):
        topic = TopicFilter.builtin("cryptocurrency")
        assert topic.name == "cryptocurrency"
        assert "bitcoin" in topic.keywords

    def test_unknown_builtin(self):
        with pytest.raises(KeyError):
            TopicFilter.builtin("astrology")

    def test_tweet_matches(self):
        topic = TopicFilter.builtin("cryptocurrency")
        assert topic.tweet_matches("join our bitcoin trading group")
        assert not topic.tweet_matches("cute cat pictures daily")

    def test_builtin_topics_cover_paper_themes(self):
        assert {"cryptocurrency", "gaming", "adult", "moneymaking"} <= set(
            BUILTIN_TOPICS
        )


class TestFocusedCollector:
    @pytest.fixture(scope="class")
    def crypto_catalogue(self, small_dataset):
        collector = FocusedCollector(TopicFilter.builtin("cryptocurrency"))
        return collector, collector.collect(small_dataset)

    def test_catalogue_structure(self, crypto_catalogue):
        _, catalogue = crypto_catalogue
        assert set(catalogue) == {"whatsapp", "telegram", "discord"}

    def test_groups_carry_snapshots(self, crypto_catalogue):
        _, catalogue = crypto_catalogue
        groups = [g for groups in catalogue.values() for g in groups]
        assert groups
        assert any(g.snapshots for g in groups)

    def test_crypto_is_wa_tg_phenomenon(self, small_dataset, crypto_catalogue):
        # Table 3: crypto topics on WhatsApp/Telegram, none on Discord.
        collector, _ = crypto_catalogue
        prevalence = {
            p: collector.prevalence(small_dataset, p)
            for p in ("whatsapp", "telegram", "discord")
        }
        assert prevalence["telegram"] > prevalence["discord"]
        assert prevalence["whatsapp"] > prevalence["discord"]

    def test_gaming_is_discord_phenomenon(self, small_dataset):
        collector = FocusedCollector(TopicFilter.builtin("gaming"))
        prevalence = {
            p: collector.prevalence(small_dataset, p)
            for p in ("whatsapp", "telegram", "discord")
        }
        assert prevalence["discord"] > prevalence["whatsapp"]

    def test_growth_computed_when_two_observations(self, crypto_catalogue):
        _, catalogue = crypto_catalogue
        for groups in catalogue.values():
            for group in groups:
                if len(group.alive_sizes) >= 2:
                    assert group.growth == (
                        group.alive_sizes[-1] - group.alive_sizes[0]
                    )
                else:
                    assert group.growth is None


class TestToxicityScorer:
    def test_score_range(self):
        scorer = ToxicityScorer()
        assert scorer.score("") == 0.0
        assert scorer.score("hello friendly world") == 0.0
        assert 0.0 < scorer.score("hot nude girls") <= 1.0

    def test_score_monotone_in_hits(self):
        scorer = ToxicityScorer()
        mild = scorer.score("girls chat")
        strong = scorer.score("nude girls porn sex")
        assert strong > mild

    def test_is_toxic_threshold(self):
        scorer = ToxicityScorer(threshold=0.5)
        assert scorer.is_toxic("porn sex nude")
        assert not scorer.is_toxic("join our study group")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ToxicityScorer(threshold=0.0)

    def test_score_many_shape(self):
        scorer = ToxicityScorer()
        scores = scorer.score_many(["a", "porn", "hello"])
        assert scores.shape == (3,)


class TestPlatformToxicity:
    def test_telegram_most_toxic(self, small_dataset):
        # Follows the paper's topic findings: sex topics are 23 % of
        # Telegram's English tweets; WhatsApp's are money-centric.
        results = platform_toxicity(small_dataset)
        assert results["telegram"].toxic_frac > results["whatsapp"].toxic_frac
        assert results["telegram"].mean_score > results["whatsapp"].mean_score

    def test_discord_toxicity_from_hentai(self, small_dataset):
        results = platform_toxicity(small_dataset)
        assert results["discord"].toxic_frac > results["whatsapp"].toxic_frac

    def test_counts_positive(self, small_dataset):
        for summary in platform_toxicity(small_dataset).values():
            assert summary.n_scored > 0
            assert 0.0 <= summary.toxic_frac <= 1.0
