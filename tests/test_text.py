"""Tests for the text stack: stopwords, tokenizer, language ID, topic bank."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    ENGLISH_STOPWORDS,
    detect_language,
    is_stopword,
    tokenize,
    tokenize_for_lda,
)
from repro.text.topicbank import (
    COMMON_TERMS,
    LANGUAGE_VOCAB,
    PLATFORM_TOPICS,
    topic_shares,
)


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "of", "a", "is"):
            assert is_stopword(word)

    def test_content_words_are_not(self):
        for word in ("bitcoin", "group", "join", "hentai"):
            assert not is_stopword(word)

    def test_twitter_noise_filtered(self):
        for word in ("rt", "https", "amp"):
            assert is_stopword(word)

    def test_frozen_set(self):
        assert isinstance(ENGLISH_STOPWORDS, frozenset)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Bitcoin GROUP") == ["bitcoin", "group"]

    def test_strips_urls(self):
        tokens = tokenize("join https://chat.whatsapp.com/AbCdEf123456 now")
        assert "join" in tokens and "now" in tokens
        assert all("whatsapp" not in t for t in tokens)

    def test_strips_mentions(self):
        assert "alice" not in tokenize("hey @alice join us")

    def test_hashtags_contribute_word(self):
        assert "crypto" in tokenize("#crypto is pumping")

    def test_empty_text(self):
        assert tokenize("") == []

    def test_punctuation_ignored(self):
        assert tokenize("join, now!!!") == ["join", "now"]

    @given(st.text(max_size=200))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token[0].isalpha()


class TestTokenizeForLda:
    def test_removes_stopwords(self):
        tokens = tokenize_for_lda("the bitcoin group is the best")
        assert "the" not in tokens
        assert "bitcoin" in tokens

    def test_removes_short_tokens(self):
        assert "ab" not in tokenize_for_lda("ab bitcoin")

    def test_min_len_configurable(self):
        assert "ab" in tokenize_for_lda("ab bitcoin", min_len=2)

    @given(st.text(max_size=200))
    def test_subset_of_tokenize(self, text):
        assert set(tokenize_for_lda(text)) <= set(tokenize(text))


class TestDetectLanguage:
    def test_english(self):
        assert detect_language("join the group and make money with you") == "en"

    def test_spanish(self):
        assert detect_language("unete al grupo gratis para ganar dinero") == "es"

    def test_arabic_script(self):
        assert detect_language("انضم مجموعة رابط") == "ar"

    def test_japanese_script(self):
        assert detect_language("サーバー に 参加") == "ja"

    def test_cyrillic_script(self):
        assert detect_language("группа бесплатно") == "ru"

    def test_unknown(self):
        assert detect_language("zxqv 123") == "und"

    def test_empty(self):
        assert detect_language("") == "und"


class TestTopicBank:
    def test_ten_topics_per_platform(self):
        for platform in ("whatsapp", "telegram", "discord"):
            assert len(PLATFORM_TOPICS[platform]) == 10

    def test_shares_normalise_to_one(self):
        for platform in PLATFORM_TOPICS:
            assert sum(topic_shares(platform)) == pytest.approx(1.0)

    def test_advertisement_is_dominant_whatsapp_topic(self):
        # Table 3: "WhatsApp group advertisement" is 30 % of tweets.
        specs = PLATFORM_TOPICS["whatsapp"]
        top = max(specs, key=lambda s: s.share)
        assert top.label == "WhatsApp group advertisement"

    def test_sex_topics_only_on_telegram(self):
        labels = {p: {s.label for s in specs} for p, specs in PLATFORM_TOPICS.items()}
        assert "Sex" in labels["telegram"]
        assert "Sex" not in labels["whatsapp"]
        assert "Sex" not in labels["discord"]

    def test_hentai_only_on_discord(self):
        assert any(s.label == "Hentai" for s in PLATFORM_TOPICS["discord"])
        assert not any(s.label == "Hentai" for s in PLATFORM_TOPICS["telegram"])

    def test_crypto_on_whatsapp_and_telegram_not_discord(self):
        # The paper's meso-topic: crypto exists on WA and TG, not DC.
        def has_crypto(platform):
            return any(
                s.label == "Cryptocurrencies" for s in PLATFORM_TOPICS[platform]
            )

        assert has_crypto("whatsapp")
        assert has_crypto("telegram")
        assert not has_crypto("discord")

    def test_terms_are_nonempty_lowercase(self):
        for specs in PLATFORM_TOPICS.values():
            for spec in specs:
                assert spec.terms
                for term in spec.terms:
                    assert term == term.lower()

    def test_paper_languages_have_vocab(self):
        for lang in ("es", "pt", "ar", "tr", "ja"):
            assert lang in LANGUAGE_VOCAB
            assert LANGUAGE_VOCAB[lang]

    def test_common_terms_exist(self):
        assert len(COMMON_TERMS) >= 10
