"""Integration tests: pipeline estimates vs world ground truth.

The measurement pipeline observes the world only through the Twitter
and platform APIs; these tests open the hood and compare its estimates
against the generator's ground truth — the strongest end-to-end check
the reproduction has.
"""

import pytest

from repro.core.study import Study, StudyConfig


@pytest.fixture(scope="module")
def study_and_dataset():
    config = StudyConfig(
        seed=21,
        n_days=10,
        scale=0.006,
        message_scale=0.05,
        join_targets={"whatsapp": 25, "telegram": 15, "discord": 15},
        join_day=3,
    )
    study = Study(config)
    dataset = study.run()
    return study, dataset


class TestDiscoveryAccuracy:
    def test_nearly_all_shared_urls_discovered(self, study_and_dataset):
        study, dataset = study_and_dataset
        truths = study.world.ground_truth()
        discovered = 0
        for truth in truths.values():
            canonical = next(iter(dataset.records), None)
            # Re-derive the canonical key the pipeline would use.
        from repro.core.patterns import extract_group_urls

        found = 0
        for truth in truths.values():
            key = extract_group_urls([truth.url])[0].canonical
            if key in dataset.records:
                found += 1
        # Merged Search+Stream recall is 1-(1-.93)(1-.90) = 99.3 % per
        # tweet; per-URL recall is higher still (any share suffices).
        assert found / len(truths) > 0.97

    def test_first_seen_matches_first_share(self, study_and_dataset):
        study, dataset = study_and_dataset
        from repro.core.patterns import extract_group_urls

        close = total = 0
        for truth in study.world.ground_truth().values():
            key = extract_group_urls([truth.url])[0].canonical
            record = dataset.records.get(key)
            if record is None:
                continue
            total += 1
            if abs(record.first_seen_t - truth.first_share_t) < 1e-9:
                close += 1
        # The first tweet can be missed by both APIs, so not 100 %.
        assert close / total > 0.9

    def test_share_counts_close_to_truth(self, study_and_dataset):
        study, dataset = study_and_dataset
        from repro.core.patterns import extract_group_urls

        measured = truth_total = 0
        for truth in study.world.ground_truth().values():
            key = extract_group_urls([truth.url])[0].canonical
            record = dataset.records.get(key)
            if record is not None:
                measured += record.n_shares
        truth_total = sum(
            1 for t in study.world.twitter.all_tweets() if t.urls
        )
        assert measured / truth_total > 0.97


class TestMonitorAccuracy:
    def test_revocation_detection_matches_truth(self, study_and_dataset):
        study, dataset = study_and_dataset
        from repro.core.patterns import extract_group_urls

        agree = total = 0
        for truth in study.world.ground_truth().values():
            key = extract_group_urls([truth.url])[0].canonical
            snaps = dataset.snapshots.get(key)
            if not snaps:
                continue
            total += 1
            detected_dead = not snaps[-1].alive
            last_obs_t = snaps[-1].t
            truly_dead = truth.revoke_t is not None and truth.revoke_t <= last_obs_t
            if detected_dead == truly_dead:
                agree += 1
        assert agree / total > 0.99

    def test_sizes_match_ground_truth(self, study_and_dataset):
        study, dataset = study_and_dataset
        from repro.core.patterns import extract_group_urls

        checked = 0
        for truth in study.world.ground_truth().values():
            key = extract_group_urls([truth.url])[0].canonical
            snaps = [s for s in dataset.snapshots.get(key, []) if s.alive]
            if not snaps:
                continue
            group = study.world.platform(truth.platform).group(truth.gid)
            for snap in snaps[:3]:
                assert snap.size == group.size_on(snap.t)
                checked += 1
        assert checked > 50


class TestJoinedAccuracy:
    def test_creation_dates_match_truth(self, study_and_dataset):
        study, dataset = study_and_dataset
        for data in dataset.joined:
            if data.created_t is None:
                continue
            group = study.world.platform(data.platform).group(data.gid)
            assert data.created_t == group.plan.created_t

    def test_message_counts_match_replay(self, study_and_dataset):
        study, dataset = study_and_dataset
        for data in dataset.joined[:10]:
            group = study.world.platform(data.platform).group(data.gid)
            start = (
                data.join_t if data.platform == "whatsapp"
                else group.plan.created_t
            )
            replay = sum(
                1
                for _ in group.messages_between(
                    start, float(dataset.n_days),
                    scale=dataset.message_scale, with_text=False,
                )
            )
            assert replay == data.n_messages

    def test_whatsapp_phone_hashes_match_service_truth(self, study_and_dataset):
        study, dataset = study_and_dataset
        service = study.world.platform("whatsapp")
        joined_wa = dataset.joined_for("whatsapp")
        assert joined_wa
        data = joined_wa[0]
        for user_id in data.member_ids[:10]:
            observation = dataset.users[("whatsapp", user_id)]
            profile = service.user_profile(user_id)
            assert observation.phone_hash.country == profile.phone.country
