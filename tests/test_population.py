"""Tests for author pools, creator assignment, and user models."""

import numpy as np
import pytest

from repro.simulation.calibration import CALIBRATIONS
from repro.simulation.population import (
    AuthorPool,
    CreatorAssigner,
    build_user_model,
)


class TestAuthorPool:
    def test_draws_within_range(self):
        pool = AuthorPool(base_id=1000, size=50)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert 1000 <= pool.draw(rng) < 1050

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AuthorPool(0, 0)


class TestCreatorAssigner:
    def _assigner(self, single_frac=0.927, seed=0):
        return CreatorAssigner(
            np.random.default_rng(seed),
            population=100_000,
            single_creator_frac=single_frac,
            format_user_id=lambda n: f"u{n}",
        )

    def _per_creator_counts(self, assigner, n):
        counts = {}
        for _ in range(n):
            creator = assigner.assign()
            counts[creator] = counts.get(creator, 0) + 1
        return np.array(list(counts.values()))

    def test_single_frac_validation(self):
        with pytest.raises(ValueError):
            self._assigner(single_frac=0.0)
        with pytest.raises(ValueError):
            self._assigner(single_frac=1.5)

    def test_counts_groups(self):
        assigner = self._assigner()
        for _ in range(10):
            assigner.assign()
        assert assigner.n_groups_assigned == 10

    def test_all_single_gives_distinct_creators(self):
        assigner = self._assigner(single_frac=1.0)
        creators = [assigner.assign() for _ in range(500)]
        assert len(set(creators)) == 500

    def test_single_creator_fraction_matches_paper(self):
        # Section 5: 92.7 % of WhatsApp creators own a single group.
        per_creator = self._per_creator_counts(self._assigner(seed=1), 30_000)
        assert abs(np.mean(per_creator == 1) - 0.927) < 0.03

    def test_heavy_tail_of_serial_creators(self):
        # The paper observed creators with 28 (WhatsApp) and 61
        # (Discord) groups.
        per_creator = self._per_creator_counts(self._assigner(seed=2), 30_000)
        assert per_creator.max() >= 10
        assert per_creator.max() <= 61 + 1

    def test_serial_groups_interleaved_over_time(self):
        assigner = self._assigner(single_frac=0.5, seed=3)
        creators = [assigner.assign() for _ in range(2000)]
        # A serial creator's groups should not be consecutive: find one
        # with >=3 groups and check their positions spread out.
        positions = {}
        for i, creator in enumerate(creators):
            positions.setdefault(creator, []).append(i)
        spread = [p for p in positions.values() if len(p) >= 3]
        assert spread
        assert any(p[-1] - p[0] > len(p) * 3 for p in spread)


class TestBuildUserModel:
    def test_probs_normalised(self):
        for cal in CALIBRATIONS.values():
            model = build_user_model(cal)
            assert sum(model.country_probs) == pytest.approx(1.0)
            assert len(model.countries) == len(model.country_probs)

    def test_whatsapp_model_has_phone(self):
        model = build_user_model(CALIBRATIONS["whatsapp"])
        assert model.has_phone
        assert model.phone_visible_prob == 1.0

    def test_telegram_opt_in_rate(self):
        model = build_user_model(CALIBRATIONS["telegram"])
        assert model.phone_visible_prob == pytest.approx(0.0068)

    def test_discord_model_phone_free_with_links(self):
        model = build_user_model(CALIBRATIONS["discord"])
        assert not model.has_phone
        assert model.linked_account_prob == pytest.approx(0.30)
        assert len(model.linked_platform_weights) == 11  # Table 5 rows

    def test_brazil_tops_whatsapp_countries(self):
        model = build_user_model(CALIBRATIONS["whatsapp"])
        top = model.countries[int(np.argmax(model.country_probs))]
        assert top == "BR"
