"""Shared fixtures: worlds and study datasets at test-friendly scales.

Building a study is the expensive part of the suite, so the datasets
are session-scoped and shared read-only across test modules.
"""

from __future__ import annotations

import pytest

from repro.core.study import Study, StudyConfig
from repro.simulation.world import World, WorldConfig

#: Scale/duration used by the shared small study.
SMALL_CONFIG = StudyConfig(
    seed=2,
    n_days=14,
    scale=0.01,
    message_scale=0.05,
    join_targets={"whatsapp": 60, "telegram": 40, "discord": 40},
    join_day=4,
)


@pytest.fixture(scope="session")
def small_study():
    """A small but complete study (pipeline + world), already run."""
    study = Study(SMALL_CONFIG)
    dataset = study.run()
    return study, dataset


@pytest.fixture(scope="session")
def small_dataset(small_study):
    """The dataset of the shared small study."""
    return small_study[1]


@pytest.fixture(scope="session")
def tiny_world():
    """A fully generated 6-day world (no pipeline attached)."""
    world = World(WorldConfig(seed=3, n_days=6, scale=0.004))
    world.generate_all()
    return world
