"""Tests for the non-English topic analyses (paper Section 4 prose).

"We find some topics that do not emerge in our English analysis mainly
due to the COVID-19 pandemic (in Spanish for WhatsApp and Telegram) and
politics-related groups (in Spanish for Telegram and in Portuguese for
WhatsApp)."
"""

import pytest

from repro.analysis.topics import extract_topics
from repro.core.study import Study, StudyConfig
from repro.text.topicbank import LANGUAGE_TOPIC_BANKS, language_bank


@pytest.fixture(scope="module")
def lang_dataset():
    """A wider-but-shorter study: enough es/pt documents for LDA.

    The shared small fixture has only ~100 docs per non-English
    language — too few to recover 4-5 topics reliably.
    """
    config = StudyConfig(
        seed=5,
        n_days=10,
        scale=0.04,
        message_scale=0.02,
        join_targets={"whatsapp": 5, "telegram": 5, "discord": 5},
        join_day=3,
    )
    return Study(config).run()


class TestLanguageBanks:
    def test_spanish_banks_exist(self):
        assert language_bank("whatsapp", "es")
        assert language_bank("telegram", "es")

    def test_portuguese_whatsapp_bank_exists(self):
        assert language_bank("whatsapp", "pt")

    def test_no_bank_returns_empty(self):
        assert language_bank("discord", "es") == []
        assert language_bank("whatsapp", "ja") == []

    def test_covid_in_spanish_banks(self):
        for platform in ("whatsapp", "telegram"):
            labels = {s.label for s in language_bank(platform, "es")}
            assert any("COVID" in label for label in labels)

    def test_politics_in_spanish_telegram_and_portuguese_whatsapp(self):
        tg_es = {s.label for s in language_bank("telegram", "es")}
        wa_pt = {s.label for s in language_bank("whatsapp", "pt")}
        assert any("Politics" in label for label in tg_es)
        assert any("Politics" in label for label in wa_pt)

    def test_no_politics_in_spanish_whatsapp(self):
        wa_es = {s.label for s in language_bank("whatsapp", "es")}
        assert not any("Politics" in label for label in wa_es)

    def test_bank_terms_ascii_tokenisable(self):
        from repro.text.tokenize import tokenize

        for banks in LANGUAGE_TOPIC_BANKS.values():
            for specs in banks.values():
                for spec in specs:
                    for term in spec.terms:
                        # Most terms survive the ASCII tokenizer whole.
                        tokens = tokenize(term)
                        assert tokens, term


class TestMultilingualExtraction:
    @staticmethod
    def _emerges(dataset, platform, lang, label_fragment):
        # A single Gibbs run can merge small topics, so (like any LDA
        # practitioner) try a couple of restarts before concluding
        # absence.
        for seed in (1, 2):
            result = extract_topics(
                dataset, platform, n_topics=5, n_iter=60, seed=seed, lang=lang
            )
            if any(label_fragment in t.label for t in result.topics):
                return True
        return False

    def test_covid_topic_emerges_in_spanish_whatsapp(self, lang_dataset):
        assert self._emerges(lang_dataset, "whatsapp", "es", "COVID")

    def test_covid_topic_emerges_in_spanish_telegram(self, lang_dataset):
        assert self._emerges(lang_dataset, "telegram", "es", "COVID")

    def test_politics_emerges_in_portuguese_whatsapp(self, lang_dataset):
        assert self._emerges(lang_dataset, "whatsapp", "pt", "Politics")

    def test_politics_emerges_in_spanish_telegram(self, lang_dataset):
        assert self._emerges(lang_dataset, "telegram", "es", "Politics")

    def test_no_covid_or_politics_in_english(self, small_dataset):
        # Footnote 1 / prose: these topics never appear in English.
        result = extract_topics(
            small_dataset, "whatsapp", n_topics=10, n_iter=25, seed=1
        )
        for topic in result.topics:
            assert "COVID" not in topic.label
            assert "Politics" not in topic.label

    def test_unknown_language_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            extract_topics(small_dataset, "discord", lang="es")
