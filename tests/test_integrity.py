"""Tests for the store/export integrity layer (fsck + repair).

The two headline properties:

* **Zero false negatives** — flipping any single byte of a day-record
  object, the manifest, or its checksum sidecar is caught by
  ``fsck_store`` (exhaustively for small artefacts, a dense
  deterministic sample for multi-kilobyte anchors).
* **Repair restores the campaign** — with a surviving anchor, damaged
  markers are rebuilt byte-identical, damaged anchors are regenerated
  by deterministic replay, and the repaired store resumes to a
  dataset byte-identical to the uninterrupted run.  Without a
  surviving anchor, repair refuses and leaves the store untouched.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import shutil
from pathlib import Path

import pytest

from repro.checkpoint import (
    MANIFEST_BACKUP_NAME,
    MANIFEST_CHECKSUM_NAME,
    MANIFEST_NAME,
    RunStore,
)
from repro.core.study import Study, StudyConfig
from repro.errors import CheckpointError
from repro.integrity import (
    DamageKind,
    fsck_export,
    fsck_path,
    fsck_store,
    repair_store,
)
from repro.io import export_all_csv, save_dataset
from repro.io.sums import SHA256SUMS_NAME, parse_sha256sums
from repro.telemetry import Telemetry

pytestmark = pytest.mark.integrity


def _config(**overrides):
    base = dict(
        seed=7,
        n_days=6,
        scale=0.004,
        message_scale=0.05,
        join_day=3,
        faults="hostile",
    )
    base.update(overrides)
    return StudyConfig(**base)


def _export_digest(dataset, tmp_path, name):
    path = tmp_path / f"{name}.json"
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _snapshot(directory, ignore=("quarantine",)):
    """name -> sha256 for every file under ``directory``."""
    out = {}
    for path in sorted(Path(directory).rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(directory)
        if rel.parts[0] in ignore:
            continue
        out[str(rel)] = hashlib.sha256(path.read_bytes()).hexdigest()
    return out


def _flip(path, offset):
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One checkpointed hostile campaign + its golden export digest.

    ``anchor_every=2`` interleaves anchors (days 0, 2, 4) with markers
    (days 1, 3, 5) so damage tests cover both record kinds.  Tests
    must treat the store as read-only and copy it before damaging.
    """
    root = tmp_path_factory.mktemp("integrity")
    store = root / "store"
    dataset = Study(_config()).run(checkpoint_dir=store, anchor_every=2)
    golden = _export_digest(dataset, root, "golden")
    return store, golden, dataset


def _damaged_copy(campaign, tmp_path):
    store, golden, _ = campaign
    copy = tmp_path / "store"
    shutil.copytree(store, copy)
    return copy, golden


def _manifest_days(store):
    return json.loads((store / MANIFEST_NAME).read_text())["days"]


class TestFsckCleanStore:
    def test_clean_store_verifies(self, campaign):
        store, _, _ = campaign
        report = fsck_store(store)
        assert report.ok
        assert not report.findings
        assert report.days_checked == 6

    def test_fsck_is_read_only(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        _flip(store / "objects" / (days["1"]["digest"] + ".bin.gz"), 10)
        _flip(store / MANIFEST_NAME, 100)
        before = _snapshot(store, ignore=())
        report = fsck_store(store)
        assert not report.ok
        assert _snapshot(store, ignore=()) == before, (
            "fsck must never modify a store, damaged or not"
        )


class TestSingleByteFlipDetection:
    """The zero-false-negative property, per artefact kind."""

    @pytest.fixture(scope="class")
    def tiny_store(self, tmp_path_factory):
        """The smallest store with an anchor, a marker, and a manifest."""
        store = tmp_path_factory.mktemp("tiny") / "store"
        Study(_config(n_days=3, scale=0.002, join_day=1)).run(
            checkpoint_dir=store, anchor_every=2
        )
        return store

    def _flipped_positions(self, path, stride):
        size = path.stat().st_size
        dense = set(range(0, min(size, 64)))
        dense.update(range(max(0, size - 64), size))
        dense.update(range(0, size, stride))
        return sorted(dense)

    def _assert_every_flip_caught(self, store, target, stride=1):
        pristine = target.read_bytes()
        missed = []
        for offset in self._flipped_positions(target, stride):
            data = bytearray(pristine)
            data[offset] ^= 0xFF
            target.write_bytes(bytes(data))
            if fsck_store(store).ok:
                missed.append(offset)
        target.write_bytes(pristine)
        assert not missed, (
            f"fsck missed single-byte flips in {target.name} at "
            f"offsets {missed[:10]}{'...' if len(missed) > 10 else ''}"
        )

    def test_every_byte_of_marker_object(self, tiny_store):
        days = _manifest_days(tiny_store)
        marker = next(e for e in days.values() if e["kind"] == "replay")
        self._assert_every_flip_caught(
            tiny_store,
            tiny_store / "objects" / (marker["digest"] + ".bin.gz"),
        )

    def test_anchor_object_dense_sample(self, tiny_store):
        days = _manifest_days(tiny_store)
        anchor = days["0"]
        self._assert_every_flip_caught(
            tiny_store,
            tiny_store / "objects" / (anchor["digest"] + ".bin.gz"),
            stride=97,
        )

    def test_every_byte_of_manifest(self, tiny_store):
        self._assert_every_flip_caught(
            tiny_store, tiny_store / MANIFEST_NAME, stride=13
        )

    def test_every_byte_of_checksum_sidecar(self, tiny_store):
        self._assert_every_flip_caught(
            tiny_store, tiny_store / MANIFEST_CHECKSUM_NAME
        )


class TestDamageTaxonomy:
    def test_truncated_gzip(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        path = store / "objects" / (days["0"]["digest"] + ".bin.gz")
        path.write_bytes(path.read_bytes()[:40])
        kinds = {f.kind for f in fsck_store(store).findings}
        assert DamageKind.TRUNCATED_GZIP in kinds

    def test_missing_object(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        (store / "objects" / (days["4"]["digest"] + ".bin.gz")).unlink()
        findings = fsck_store(store).findings
        assert any(
            f.kind == DamageKind.MISSING_OBJECT and f.day == 4
            for f in findings
        )

    def test_torn_manifest_is_fatal(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        manifest = store / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[:50])
        report = fsck_store(store)
        assert report.fatal
        assert any(
            f.kind == DamageKind.TORN_MANIFEST for f in report.findings
        )

    def test_dangling_object_and_orphan_temp(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        (store / "objects" / ("ab" * 32 + ".bin.gz")).write_bytes(b"x")
        (store / "stray.tmp").write_bytes(b"half-written")
        kinds = {f.kind for f in fsck_store(store).findings}
        assert DamageKind.DANGLING_OBJECT in kinds
        assert DamageKind.ORPHAN_TEMP in kinds


class TestStoreOpenHardening:
    """RunStore surfaces CheckpointError, never raw parser errors."""

    def test_open_torn_manifest(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        manifest = store / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[:50])
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            RunStore.open(store)

    def test_open_non_json_manifest(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        (store / MANIFEST_NAME).write_bytes(b"\x00\xff garbage \x80")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            RunStore.open(store)

    def test_read_day_wraps_corrupt_gzip(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        _flip(store / "objects" / (days["0"]["digest"] + ".bin.gz"), 20)
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            RunStore.open(store).read_day(0)

    def test_read_day_wraps_truncation(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        path = store / "objects" / (days["0"]["digest"] + ".bin.gz")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            RunStore.open(store).read_day(0)


class TestRepair:
    def test_marker_repair_is_byte_identical(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        pristine = _snapshot(store)
        days = _manifest_days(store)
        marker = next(e for e in days.values() if e["kind"] == "replay")
        _flip(store / "objects" / (marker["digest"] + ".bin.gz"), 15)
        report = repair_store(store)
        assert report.ok
        assert _snapshot(store) == pristine, (
            "marker rebuild must restore the store byte for byte"
        )
        assert (store / "quarantine").is_dir(), (
            "the damaged bytes must be preserved for the post-mortem"
        )

    def test_anchor_repair_resumes_to_golden(self, campaign, tmp_path):
        store, golden = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        _flip(store / "objects" / (days["4"]["digest"] + ".bin.gz"), 25)
        report = repair_store(store)
        assert report.ok
        rebuilt = [a for a in report.actions if a.action == "replayed-anchor"]
        assert [a.day for a in rebuilt] == [4]
        resumed = Study.resume(store, from_day=4).run()
        assert _export_digest(resumed, tmp_path, "resumed") == golden

    def test_day0_anchor_loss_is_unrepairable(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        _flip(store / "objects" / (days["0"]["digest"] + ".bin.gz"), 25)
        damaged = _snapshot(store, ignore=())
        report = repair_store(store)
        assert not report.ok
        assert any(f.day == 0 for f in report.remaining)
        assert _snapshot(store, ignore=()) == damaged, (
            "a failed repair must leave the store exactly as found"
        )

    def test_torn_manifest_restored_from_backup(self, campaign, tmp_path):
        store, golden = _damaged_copy(campaign, tmp_path)
        (store / MANIFEST_NAME).write_bytes(b"{ torn")
        report = repair_store(store)
        # The backup is one generation stale: day 5's entry is absent,
        # so its object surfaces as dangling and is quarantined.
        assert any(
            a.action == "restored-manifest" for a in report.actions
        )
        assert RunStore.open(store).days() == [0, 1, 2, 3, 4]
        resumed = Study.resume(store).run()
        assert _export_digest(resumed, tmp_path, "resumed") == golden

    def test_backup_lags_one_generation(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        backup = json.loads((store / MANIFEST_BACKUP_NAME).read_text())
        current = json.loads((store / MANIFEST_NAME).read_text())
        assert sorted(backup["days"]) == sorted(
            set(current["days"]) - {"5"}
        )

    def test_repair_counts_telemetry(self, campaign, tmp_path):
        store, _ = _damaged_copy(campaign, tmp_path)
        days = _manifest_days(store)
        marker = next(e for e in days.values() if e["kind"] == "replay")
        _flip(store / "objects" / (marker["digest"] + ".bin.gz"), 15)
        telemetry = Telemetry(enabled=True)
        repair_store(store, telemetry=telemetry)
        assert telemetry.metrics.counter(
            "integrity_repairs_total", action="rebuilt-marker"
        ) >= 1


class TestExportIntegrity:
    @pytest.fixture(scope="class")
    def export_dir(self, campaign, tmp_path_factory):
        _, _, dataset = campaign
        directory = tmp_path_factory.mktemp("csv")
        export_all_csv(dataset, directory)
        return directory

    def test_export_writes_sums_sidecar(self, export_dir):
        sums = parse_sha256sums(export_dir / SHA256SUMS_NAME)
        csvs = {p.name for p in export_dir.glob("*.csv")}
        assert set(sums) == csvs and len(csvs) == 9

    def test_clean_export_verifies(self, export_dir):
        assert fsck_export(export_dir).ok

    def test_flipped_csv_byte_caught(self, export_dir, tmp_path):
        copy = tmp_path / "csv"
        shutil.copytree(export_dir, copy)
        _flip(next(copy.glob("*.csv")), 30)
        report = fsck_export(copy)
        assert not report.ok
        assert all(
            f.kind == DamageKind.EXPORT_MISMATCH for f in report.findings
        )

    def test_missing_and_unlisted_csv_caught(self, export_dir, tmp_path):
        copy = tmp_path / "csv"
        shutil.copytree(export_dir, copy)
        next(iter(copy.glob("*.csv"))).unlink()
        (copy / "fig99_extra.csv").write_text("a,b\n1,2\n")
        findings = fsck_export(copy).findings
        details = " ".join(f.detail for f in findings)
        assert "missing" in details and "not listed" in details


class TestFsckPath:
    def test_autodetects_store(self, campaign):
        store, _, _ = campaign
        assert fsck_path(store).target_kind == "store"

    def test_autodetects_export(self, campaign, tmp_path):
        _, _, dataset = campaign
        export_all_csv(dataset, tmp_path / "csv")
        assert fsck_path(tmp_path / "csv").target_kind == "export"

    def test_rejects_unrecognised_directory(self, tmp_path):
        (tmp_path / "noise.txt").write_text("hi")
        with pytest.raises(CheckpointError, match="neither"):
            fsck_path(tmp_path)


class TestFsckCLI:
    def test_fsck_exit_codes_and_read_only(self, campaign, tmp_path, capsys):
        from repro.__main__ import main

        store, _ = _damaged_copy(campaign, tmp_path)
        assert main(["fsck", str(store)]) == 0
        days = _manifest_days(store)
        marker = next(e for e in days.values() if e["kind"] == "replay")
        _flip(store / "objects" / (marker["digest"] + ".bin.gz"), 15)
        before = _snapshot(store, ignore=())
        assert main(["fsck", str(store)]) == 1
        assert _snapshot(store, ignore=()) == before, (
            "fsck without --repair must never modify the store"
        )
        assert main(["fsck", str(store), "--repair"]) == 0
        assert main(["fsck", str(store)]) == 0
        capsys.readouterr()
