"""Tests for the Discord simulator: service, REST API, bot restriction."""

import pytest

from repro.errors import (
    BotRestrictionError,
    JoinLimitError,
    NotAMemberError,
    RevokedURLError,
)
from repro.platforms.discord import (
    DISCORD_CAPABILITIES,
    DISCORD_USER_SERVER_LIMIT,
    DiscordAPI,
    DiscordBot,
    DiscordService,
)

from tests.helpers import make_discord, make_plan


class TestService:
    def test_capabilities_match_table1(self):
        caps = DISCORD_CAPABILITIES
        assert caps.registration == "Email"
        assert caps.has_data_api
        assert caps.end_to_end_encryption == "No"
        assert caps.max_members == 250_000

    def test_invite_url_variants(self):
        service = make_discord()
        urls = [service.invite_url(f"DC{i}") for i in range(50)]
        assert any("discord.gg/" in url for url in urls)
        assert any("discord.com/invite/" in url for url in urls)
        for i, url in enumerate(urls):
            assert DiscordService.parse_invite_url(url) == service.invite_code(
                f"DC{i}"
            )

    def test_invite_code_is_short(self):
        service = make_discord()
        assert len(service.invite_code("DC1")) == 8

    def test_parse_rejects_non_invite_discord_urls(self):
        with pytest.raises(ValueError):
            DiscordService.parse_invite_url("https://discord.com/channels/1/2")


class TestBot:
    def test_bot_cannot_join(self):
        # The paper had to use a user account because bots cannot join
        # servers on their own.
        service = make_discord()
        service.register_group(make_plan(gid="DC1", creator_id="diu1"))
        bot = DiscordBot(service, "bot-1")
        with pytest.raises(BotRestrictionError):
            bot.join(service.invite_url("DC1"), 2.0)


class TestAPI:
    def _setup(self, **kwargs):
        service = make_discord()
        kwargs.setdefault("creator_id", "diu1")
        record = service.register_group(make_plan(gid="DC1", **kwargs))
        return service, record, DiscordAPI(service, "acct")

    def test_get_invite_without_joining(self):
        service, record, api = self._setup(created_t=-40.0, online_frac=0.4)
        info = api.get_invite(service.invite_url("DC1"), 2.0)
        assert info.size == record.size_on(2.0)
        assert 0 <= info.online <= info.size
        assert info.creator_id == "diu1"
        assert info.created_t == -40.0

    def test_get_invite_expired_raises(self):
        service, _, api = self._setup(revoke_t=1.2)
        with pytest.raises(RevokedURLError):
            api.get_invite(service.invite_url("DC1"), 2.0)

    def test_join_and_history_since_creation(self):
        service, _, api = self._setup(created_t=-15.0, msg_rate=30.0)
        api.join(service.invite_url("DC1"), 3.0)
        messages = list(api.history("DC1", 5.0))
        assert any(m.t < 3.0 for m in messages)

    def test_history_requires_membership(self):
        _, _, api = self._setup()
        with pytest.raises(NotAMemberError):
            list(api.history("DC1", 5.0))

    def test_join_limit_is_100(self):
        service = make_discord()
        api = DiscordAPI(service, "acct")
        for i in range(DISCORD_USER_SERVER_LIMIT):
            service.register_group(make_plan(gid=f"DC{i}", creator_id="diu1"))
            api.join(service.invite_url(f"DC{i}"), 1.0)
        service.register_group(make_plan(gid="DCover", creator_id="diu1"))
        with pytest.raises(JoinLimitError):
            api.join(service.invite_url("DCover"), 2.0)

    def test_join_revoked_raises(self):
        service, _, api = self._setup(revoke_t=0.5)
        with pytest.raises(RevokedURLError):
            api.join(service.invite_url("DC1"), 2.0)

    def test_user_profiles_expose_linked_accounts(self):
        service, record, api = self._setup(size0=100)
        api.join(service.invite_url("DC1"), 2.0)
        infos = [api.get_user(u) for u in record.roster(2.0)]
        with_links = [i for i in infos if i.linked_accounts]
        assert with_links  # model links 50 % of users
        for info in with_links:
            for account in info.linked_accounts:
                assert account.platform in ("twitch", "steam")

    def test_user_profiles_never_expose_phone(self):
        service, record, api = self._setup()
        api.join(service.invite_url("DC1"), 2.0)
        info = api.get_user(record.roster(2.0)[0])
        assert not hasattr(info, "phone")
