"""Tests for the end-to-end study orchestrator (uses shared fixture)."""

import pytest

from repro.core.patterns import DEFAULT_PATTERNS
from repro.core.study import Study, StudyConfig
from repro.errors import ConfigError
from repro.twitter.service import tweet_matches

from tests.conftest import SMALL_CONFIG


class TestStudyConfig:
    def test_defaults(self):
        config = StudyConfig()
        assert config.n_days == 38
        assert config.join_targets == {
            "whatsapp": 416, "telegram": 100, "discord": 100,
        }

    def test_join_day_validation(self):
        with pytest.raises(ConfigError):
            StudyConfig(n_days=5, join_day=5)

    def test_message_scale_validation(self):
        with pytest.raises(ConfigError):
            StudyConfig(message_scale=0.0)

    def test_world_config_derivation(self):
        config = StudyConfig(seed=9, n_days=10, scale=0.05, join_day=3)
        world = config.world_config()
        assert world.seed == 9
        assert world.n_days == 10
        assert world.scale == 0.05


class TestStudyRun:
    def test_dataset_dimensions(self, small_dataset):
        assert small_dataset.n_days == SMALL_CONFIG.n_days
        assert small_dataset.scale == SMALL_CONFIG.scale
        assert small_dataset.message_scale == SMALL_CONFIG.message_scale

    def test_all_platforms_discovered(self, small_dataset):
        for platform in ("whatsapp", "telegram", "discord"):
            assert small_dataset.records_for(platform)

    def test_every_record_has_tweets(self, small_dataset):
        for record in small_dataset.records.values():
            assert record.n_shares >= 1
            for tweet_id, _ in record.shares:
                assert tweet_id in small_dataset.tweets

    def test_every_discovered_url_is_monitored(self, small_dataset):
        # Every record discovered before the last day gets >= 1 snapshot.
        for record in small_dataset.records.values():
            if record.first_seen_t < small_dataset.n_days - 1:
                assert record.canonical in small_dataset.snapshots

    def test_snapshots_stop_after_revocation(self, small_dataset):
        for snaps in small_dataset.snapshots.values():
            dead_seen = False
            for snap in snaps:
                assert not dead_seen, "snapshot after revocation"
                dead_seen = not snap.alive

    def test_snapshot_days_consecutive(self, small_dataset):
        for snaps in small_dataset.snapshots.values():
            days = [s.day for s in snaps]
            assert days == list(range(days[0], days[0] + len(days)))

    def test_joined_counts_bounded_by_targets(self, small_dataset):
        for platform, target in SMALL_CONFIG.join_targets.items():
            assert len(small_dataset.joined_for(platform)) <= target

    def test_joined_groups_were_discovered(self, small_dataset):
        for data in small_dataset.joined:
            assert data.canonical in small_dataset.records

    def test_control_tweets_pattern_free(self, small_dataset):
        for tweet in small_dataset.control_tweets:
            assert not tweet_matches(tweet, DEFAULT_PATTERNS)

    def test_control_dataset_nonempty(self, small_dataset):
        assert len(small_dataset.control_tweets) > 100

    def test_user_observations_keyed_consistently(self, small_dataset):
        for (platform, user_id), obs in small_dataset.users.items():
            assert obs.platform == platform
            assert obs.user_id == user_id

    def test_no_raw_phone_numbers_in_dataset(self, small_dataset):
        # Ethics: only hashes + dialing codes may be stored.
        for obs in small_dataset.users.values():
            if obs.phone_hash is not None:
                assert len(obs.phone_hash.digest) == 64
                assert not obs.phone_hash.digest.startswith("+")
        for snaps in small_dataset.snapshots.values():
            for snap in snaps:
                if snap.creator_phone_hash is not None:
                    assert len(snap.creator_phone_hash.digest) == 64

    def test_deterministic_rerun(self):
        config = StudyConfig(
            seed=5, n_days=4, scale=0.003, message_scale=0.05, join_day=1,
            join_targets={"whatsapp": 5, "telegram": 5, "discord": 5},
        )
        ds_a = Study(config).run()
        ds_b = Study(config).run()
        assert set(ds_a.records) == set(ds_b.records)
        assert len(ds_a.tweets) == len(ds_b.tweets)
        assert [j.n_messages for j in ds_a.joined] == [
            j.n_messages for j in ds_b.joined
        ]
