"""Tests for the crash-consistency chaos harness.

The acceptance property: for every abort point in a seeded schedule —
both in-process abort and subprocess SIGKILL, under a fault-free and
a hostile fault profile — the killed campaign resumes from its run
store and exports byte-identical artefacts, with a consistent health
ledger and life counter, a clean fsck, and no orphaned temp files.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ABORT_MODES,
    STAGES,
    AbortPoint,
    ChaosRunner,
    ChaosSchedule,
    WorkerKillPoint,
    WorkerKillSchedule,
)
from repro.errors import ConfigError
from repro.telemetry import Telemetry

pytestmark = pytest.mark.chaos

#: Campaign shape shared by every harness test: small, complete
#: (discovery, join day, post-join days), anchors at cadence 2 so
#: schedules cross both anchor and marker checkpoint days.
N_DAYS = 6
JOIN_DAY = 3
ANCHOR_EVERY = 2


def _spec(faults):
    return dict(
        seed=7,
        n_days=N_DAYS,
        scale=0.004,
        message_scale=0.05,
        join_day=JOIN_DAY,
        faults=faults,
    )


class TestSchedule:
    def test_seeded_generation_is_deterministic(self):
        a = ChaosSchedule.generate(11, n_days=N_DAYS, join_day=JOIN_DAY)
        b = ChaosSchedule.generate(11, n_days=N_DAYS, join_day=JOIN_DAY)
        assert a == b
        assert len(a) == 5

    def test_different_seeds_differ(self):
        a = ChaosSchedule.generate(1, n_days=N_DAYS, n_points=10)
        b = ChaosSchedule.generate(2, n_days=N_DAYS, n_points=10)
        assert a.points != b.points

    def test_points_are_valid_and_ordered(self):
        schedule = ChaosSchedule.generate(
            3, n_days=N_DAYS, join_day=JOIN_DAY, n_points=12
        )
        keys = [(p.day, STAGES.index(p.stage)) for p in schedule]
        assert keys == sorted(keys)
        for point in schedule:
            assert 0 <= point.day < N_DAYS
            assert point.mode in ABORT_MODES
            if point.stage == "join":
                assert point.day == JOIN_DAY

    def test_roundtrips_through_dict(self):
        schedule = ChaosSchedule.generate(5, n_days=N_DAYS, n_points=4)
        assert ChaosSchedule.from_dict(schedule.to_dict()) == schedule

    def test_rejects_bad_points(self):
        with pytest.raises(ConfigError, match="unknown stage"):
            AbortPoint(0, "lunch", "abort")
        with pytest.raises(ConfigError, match="unknown abort mode"):
            AbortPoint(0, "world", "nuke")
        with pytest.raises(ConfigError, match="cannot place"):
            ChaosSchedule.generate(1, n_days=1, n_points=99)

    def test_every_boundary_covers_all_stages(self):
        schedule = ChaosSchedule.every_boundary(
            n_days=2, join_day=1, mode="abort"
        )
        assert {p.stage for p in schedule} == set(STAGES)
        # 6 boundaries on a non-join day, 7 on the join day.
        assert len(schedule) == 13


class TestWorkerKillSchedule:
    def test_seeded_generation_is_deterministic(self):
        a = WorkerKillSchedule.generate(11, n_days=N_DAYS, workers=4)
        b = WorkerKillSchedule.generate(11, n_days=N_DAYS, workers=4)
        assert a == b
        assert len(a) == 2

    def test_different_seeds_differ(self):
        a = WorkerKillSchedule.generate(1, n_days=60, workers=8, n_points=6)
        b = WorkerKillSchedule.generate(2, n_days=60, workers=8, n_points=6)
        assert a.points != b.points

    def test_points_hit_distinct_days_and_valid_victims(self):
        schedule = WorkerKillSchedule.generate(
            3, n_days=N_DAYS, workers=3, n_points=4
        )
        days = [p.day for p in schedule]
        assert days == sorted(days)
        assert len(set(days)) == len(days), "one kill per probe day"
        for point in schedule:
            assert 0 <= point.day < N_DAYS
            assert 0 <= point.worker < 3

    def test_roundtrips_through_dict(self):
        schedule = WorkerKillSchedule.generate(
            5, n_days=N_DAYS, workers=2, n_points=3
        )
        assert WorkerKillSchedule.from_dict(schedule.to_dict()) == schedule

    def test_label_names_the_victim(self):
        assert WorkerKillPoint(3, 1).label == "wkill@d3.w1"

    def test_rejects_bad_points(self):
        with pytest.raises(ConfigError, match="kill day"):
            WorkerKillPoint(-1, 0)
        with pytest.raises(ConfigError, match="worker index"):
            WorkerKillPoint(0, -1)
        with pytest.raises(ConfigError, match="n_points"):
            WorkerKillSchedule.generate(1, n_days=N_DAYS, workers=2,
                                        n_points=0)
        with pytest.raises(ConfigError, match="workers >= 2"):
            WorkerKillSchedule.generate(1, n_days=N_DAYS, workers=1)
        with pytest.raises(ConfigError, match="distinct days"):
            WorkerKillSchedule.generate(1, n_days=2, workers=2, n_points=3)


class TestHarness:
    """The headline kill-resume-verify property."""

    @pytest.mark.parametrize("faults", [None, "hostile"])
    def test_seeded_schedule_holds_under_both_modes(
        self, faults, tmp_path
    ):
        schedule = ChaosSchedule.generate(
            11, n_days=N_DAYS, join_day=JOIN_DAY, n_points=5
        )
        assert len(schedule) >= 5
        assert {p.mode for p in schedule} == set(ABORT_MODES), (
            "seed 11 must exercise both kill modes; pick another seed "
            "if the schedule generator changes"
        )
        telemetry = Telemetry(enabled=True)
        report = ChaosRunner(
            _spec(faults),
            schedule,
            tmp_path,
            anchor_every=ANCHOR_EVERY,
            telemetry=telemetry,
        ).run()
        for cycle in report.cycles:
            assert cycle.ok, (
                f"cycle {cycle.point.label} (faults={faults}) broke: "
                f"{cycle.failed}"
            )
        assert report.ok
        counted = sum(
            telemetry.metrics.counter("chaos_cycles_total", mode=mode)
            for mode in ABORT_MODES
        )
        assert counted == len(schedule)

    def test_death_before_first_checkpoint_reruns(self, tmp_path):
        schedule = ChaosSchedule(points=(
            AbortPoint(0, "world", "abort"),
            AbortPoint(0, "world", "sigkill"),
        ))
        report = ChaosRunner(
            _spec(None), schedule, tmp_path, anchor_every=ANCHOR_EVERY
        ).run()
        assert report.ok
        assert [c.resumed for c in report.cycles] == [False, False], (
            "a death before any day record leaves nothing to resume; "
            "recovery is a fresh rerun"
        )

    def test_join_day_kill_resumes(self, tmp_path):
        schedule = ChaosSchedule(points=(
            AbortPoint(JOIN_DAY, "join", "abort"),
            AbortPoint(JOIN_DAY, "checkpoint", "abort"),
        ))
        report = ChaosRunner(
            _spec("hostile"), schedule, tmp_path, anchor_every=ANCHOR_EVERY
        ).run()
        assert report.ok
        assert all(c.resumed for c in report.cycles)

    def test_cycle_report_shape(self, tmp_path):
        schedule = ChaosSchedule(points=(
            AbortPoint(2, "monitor", "abort"),
        ))
        report = ChaosRunner(
            _spec(None), schedule, tmp_path, anchor_every=ANCHOR_EVERY
        ).run()
        payload = report.to_dict()
        assert payload["ok"] is True
        assert len(payload["golden_export"]) == 64
        (cycle,) = payload["cycles"]
        assert set(cycle["invariants"]) == {
            "kill_fired",
            "export_byte_identical",
            "csv_sums_match",
            "health_consistent",
            "process_lives_consistent",
            "store_fsck_clean",
            "no_orphan_temp_files",
        }


class TestWorkerKillHarness:
    """Supervision cycles: the campaign survives a worker SIGKILL."""

    def test_worker_kill_cycle_survives_and_matches_golden(self, tmp_path):
        kills = WorkerKillSchedule(points=(WorkerKillPoint(2, 1),))
        telemetry = Telemetry(enabled=True)
        report = ChaosRunner(
            _spec("hostile"),
            ChaosSchedule(points=()),
            tmp_path,
            anchor_every=ANCHOR_EVERY,
            telemetry=telemetry,
            workers=2,
            worker_kills=kills,
        ).run()
        assert not report.cycles
        (cycle,) = report.worker_cycles
        assert cycle.ok, f"worker-kill cycle broke: {cycle.failed}"
        assert report.ok
        assert telemetry.metrics.counter(
            "chaos_cycles_total", mode="workerkill"
        ) == 1

    def test_worker_kill_cycle_report_shape(self, tmp_path):
        kills = WorkerKillSchedule(points=(WorkerKillPoint(1, 0),))
        report = ChaosRunner(
            _spec(None),
            ChaosSchedule(points=()),
            tmp_path,
            anchor_every=ANCHOR_EVERY,
            workers=2,
            worker_kills=kills,
        ).run()
        payload = report.to_dict()
        assert payload["ok"] is True
        (cycle,) = payload["worker_cycles"]
        assert cycle["point"] == {"day": 1, "worker": 0}
        assert set(cycle["invariants"]) == {
            "kill_fired",
            "export_byte_identical",
            "csv_sums_match",
            "health_consistent",
            "single_process_life",
            "store_fsck_clean",
            "no_orphan_temp_files",
        }
        from repro.reporting.integrity import render_chaos_report

        rendered = render_chaos_report(report)
        assert "worker-kill cycles" in rendered
        assert "wkill@d1.w0" in rendered
        assert "supervised" in rendered


class TestChaosCLI:
    def test_chaos_subcommand_passes(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "chaos",
            "--workdir", str(tmp_path / "wd"),
            "--days", "6",
            "--join-day", "3",
            "--points", "2",
            "--mode", "abort",
            "--chaos-seed", "3",
            "--json", str(tmp_path / "report.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "every cycle recovered byte-identical" in out
        assert (tmp_path / "report.json").exists()

    def test_chaos_rejects_bad_args(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(ConfigError, match="--points"):
            main([
                "chaos", "--workdir", str(tmp_path), "--points", "0",
            ])

    def test_chaos_rejects_worker_kills_without_pool(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(ConfigError, match="--workers >= 2"):
            main([
                "chaos", "--workdir", str(tmp_path),
                "--worker-kills", "1",
            ])
        with pytest.raises(ConfigError, match="--worker-kills"):
            main([
                "chaos", "--workdir", str(tmp_path),
                "--workers", "2", "--worker-kills", "-1",
            ])
