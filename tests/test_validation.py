"""Tests for the calibration self-check."""

import pytest

from repro.validation import (
    CalibrationCheck,
    render_validation_report,
    validate_dataset,
)


class TestCalibrationCheck:
    def test_ok_within_tolerance(self):
        check = CalibrationCheck("x", "whatsapp", 0.5, 0.52, 0.05)
        assert check.ok

    def test_fail_outside_tolerance(self):
        check = CalibrationCheck("x", "whatsapp", 0.5, 0.60, 0.05)
        assert not check.ok

    def test_boundary_inclusive(self):
        check = CalibrationCheck("x", "", 0.5, 0.55, 0.05)
        assert check.ok


class TestValidateDataset:
    @pytest.fixture(scope="class")
    def checks(self, small_dataset):
        return validate_dataset(small_dataset)

    def test_covers_all_platforms_and_figures(self, checks):
        platforms = {check.platform for check in checks}
        assert platforms == {"whatsapp", "telegram", "discord"}
        names = {check.name for check in checks}
        for figure in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig8"):
            assert any(name.startswith(figure) for name in names)

    def test_vast_majority_pass_at_test_scale(self, checks):
        # At 1 % scale a couple of checks may sit just outside the
        # tolerance for a given seed; the bulk must hold.
        n_ok = sum(1 for check in checks if check.ok)
        assert n_ok / len(checks) > 0.85

    def test_hard_invariants_always_pass(self, checks):
        # Fig 8 text shares and Fig 6 revocations are the tightest
        # calibrated statistics; they must pass at any scale.
        for check in checks:
            if check.name in ("fig8.text_frac", "fig6.revoked_frac"):
                assert check.ok, check


class TestRenderReport:
    def test_report_renders(self, small_dataset):
        checks = validate_dataset(small_dataset)
        text = render_validation_report(checks)
        assert "Calibration self-check" in text
        assert "fig6.revoked_frac" in text
        assert "whatsapp" in text
