"""Tests for the cross-platform interplay analysis."""

import pytest

from repro.analysis.interplay import interplay


class TestInterplay:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return interplay(small_dataset)

    def test_totals_deduplicate(self, result):
        # Table 2's total rows are below the per-platform sums.
        assert result.n_tweets_total <= result.n_tweets_sum
        assert result.n_authors_total <= result.n_authors_sum

    def test_cross_posted_tweets_exist(self, result):
        assert result.multi_platform_tweets > 0

    def test_cross_platform_authors_exist(self, result):
        assert result.cross_platform_authors > 0

    def test_dedup_fracs_small_but_positive(self, result):
        # The paper's author dedup is ~2.6 %; ours is calibrated to the
        # same order of magnitude.
        assert 0.0 < result.author_dedup_frac < 0.15
        assert 0.0 < result.tweet_dedup_frac < 0.10

    def test_pair_counts_consistent(self, result):
        assert sum(result.platform_pair_tweets.values()) >= (
            result.multi_platform_tweets
        )
        for (a, b), count in result.platform_pair_tweets.items():
            assert a < b  # canonical ordering
            assert count > 0

    def test_multi_platform_tweets_counted_once_in_total(self, result):
        overlap = result.n_tweets_sum - result.n_tweets_total
        assert overlap >= result.multi_platform_tweets


class TestTable2TotalRow:
    def test_total_row_rendered(self, small_dataset):
        from repro.reporting import render_table2

        text = render_table2(small_dataset)
        assert "total" in text
        assert "dedup" in text
