"""Edge-case and error-path tests across the library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.content import control_prevalence, entity_prevalence
from repro.analysis.language import language_shares
from repro.analysis.messages import group_activity, message_types, user_activity
from repro.analysis.revocation import revocation
from repro.analysis.sharing import daily_discovery, tweets_per_url
from repro.analysis.staleness import staleness
from repro.analysis.stats import bootstrap_ci
from repro.core.dataset import StudyDataset
from repro.errors import (
    APIRateLimitError,
    BotRestrictionError,
    ConfigError,
    GroupFullError,
    JoinLimitError,
    MemberListHiddenError,
    NotAMemberError,
    ReproError,
    RevokedURLError,
    UnknownURLError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            APIRateLimitError, BotRestrictionError, ConfigError,
            GroupFullError, JoinLimitError, MemberListHiddenError,
            NotAMemberError, RevokedURLError, UnknownURLError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestEmptyDatasetAnalyses:
    @pytest.fixture()
    def empty(self):
        return StudyDataset(n_days=5, scale=0.01)

    def test_sharing_raises(self, empty):
        with pytest.raises(ValueError):
            tweets_per_url(empty, "whatsapp")

    def test_daily_discovery_returns_zero_series(self, empty):
        series = daily_discovery(empty, "whatsapp")
        assert series.all_counts == [0] * 5
        assert series.median_new == 0.0

    def test_content_raises(self, empty):
        with pytest.raises(ValueError):
            entity_prevalence(empty, "telegram")
        with pytest.raises(ValueError):
            control_prevalence(empty)

    def test_language_raises(self, empty):
        with pytest.raises(ValueError):
            language_shares(empty, "discord")

    def test_staleness_raises(self, empty):
        with pytest.raises(ValueError):
            staleness(empty, "whatsapp")

    def test_revocation_raises(self, empty):
        with pytest.raises(ValueError):
            revocation(empty, "discord")

    def test_messages_raise(self, empty):
        with pytest.raises(ValueError):
            message_types(empty, "whatsapp")
        with pytest.raises(ValueError):
            group_activity(empty, "whatsapp")
        with pytest.raises(ValueError):
            user_activity(empty, "whatsapp")


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_ci(sample, np.mean, seed=1)
        assert lo < sample.mean() < hi

    def test_narrows_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, size=20)
        large = rng.normal(0, 1, size=2000)
        lo_s, hi_s = bootstrap_ci(small, np.mean, seed=2)
        lo_l, hi_l = bootstrap_ci(large, np.mean, seed=2)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(sample, np.median, seed=3) == bootstrap_ci(
            sample, np.median, seed=3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, n_boot=5)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3,
                 max_size=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_interval_ordered(self, sample):
        lo, hi = bootstrap_ci(sample, np.mean, n_boot=50, seed=4)
        assert lo <= hi


class TestGroupRecordBoundaries:
    def test_size_at_exact_anchor(self):
        from tests.helpers import make_plan, make_whatsapp

        service = make_whatsapp()
        record = service.register_group(
            make_plan(size0=100, slope=10.0, anchor_t=5.0)
        )
        # At the anchor the size is size0 up to the +-1 % wiggle.
        assert abs(record.size_on(5.0) - 100) <= 2

    def test_messages_empty_window(self):
        from tests.helpers import make_plan, make_whatsapp

        service = make_whatsapp()
        record = service.register_group(make_plan(msg_rate=50.0))
        assert not list(record.messages_between(5.0, 5.0))

    def test_zero_rate_group_is_silent(self):
        from tests.helpers import make_plan, make_whatsapp

        service = make_whatsapp()
        record = service.register_group(make_plan(msg_rate=0.0))
        assert not list(record.messages_between(0.0, 20.0))

    def test_single_member_group(self):
        from tests.helpers import make_plan, make_whatsapp

        service = make_whatsapp()
        record = service.register_group(
            make_plan(size0=1, slope=0.0, msg_rate=20.0, active_frac=0.9)
        )
        senders = {
            m.sender_id for m in record.messages_between(2.0, 6.0)
        }
        assert len(senders) == 1


class TestWorldEdges:
    def test_one_day_world(self):
        from repro.simulation.world import World, WorldConfig

        world = World(WorldConfig(seed=9, n_days=1, scale=0.003))
        world.generate_all()
        assert len(world.twitter) > 0
        for truth in world.ground_truth().values():
            assert 0.0 <= truth.first_share_t < 1.0

    def test_smallest_scale_still_generates(self):
        from repro.simulation.world import World, WorldConfig

        world = World(WorldConfig(seed=9, n_days=3, scale=0.001))
        world.generate_all()
        # Poisson with tiny rates may produce zero WhatsApp groups but
        # the world as a whole must not be empty.
        assert len(world.twitter) > 0
