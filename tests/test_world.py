"""Tests for the world generator."""

import numpy as np
import pytest

from repro.core.patterns import extract_group_urls
from repro.errors import ConfigError
from repro.simulation.calibration import CALIBRATIONS
from repro.simulation.world import World, WorldConfig


class TestWorldConfig:
    def test_defaults_valid(self):
        config = WorldConfig()
        assert config.n_days == 38

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            WorldConfig(scale=0.0)
        with pytest.raises(ConfigError):
            WorldConfig(scale=1.5)

    def test_n_days_validation(self):
        with pytest.raises(ConfigError):
            WorldConfig(n_days=0)

    def test_control_rate_validation(self):
        with pytest.raises(ConfigError):
            WorldConfig(control_sample_rate=0.0)

    def test_oversample_inverse_of_rate(self):
        assert WorldConfig(control_sample_rate=0.25).control_oversample == 4.0


class TestGeneration:
    def test_days_must_be_generated_in_order(self, tiny_world):
        with pytest.raises(ConfigError):
            tiny_world.generate_day(0)  # already generated

    def test_skipping_days_rejected(self):
        world = World(WorldConfig(seed=1, n_days=5, scale=0.002))
        with pytest.raises(ConfigError):
            world.generate_day(2)

    def test_deterministic_given_seed(self):
        config = WorldConfig(seed=42, n_days=3, scale=0.002)
        world_a, world_b = World(config), World(config)
        world_a.generate_all()
        world_b.generate_all()
        tweets_a = [(t.tweet_id, t.t, t.text) for t in world_a.twitter.all_tweets()]
        tweets_b = [(t.tweet_id, t.t, t.text) for t in world_b.twitter.all_tweets()]
        assert tweets_a == tweets_b

    def test_different_seeds_differ(self):
        world_a = World(WorldConfig(seed=1, n_days=2, scale=0.002))
        world_b = World(WorldConfig(seed=2, n_days=2, scale=0.002))
        world_a.generate_all()
        world_b.generate_all()
        assert len(world_a.twitter) != len(world_b.twitter) or [
            t.text for t in world_a.twitter.all_tweets()
        ] != [t.text for t in world_b.twitter.all_tweets()]

    def test_tweets_sorted_by_time(self, tiny_world):
        times = [t.t for t in tiny_world.twitter.all_tweets()]
        assert times == sorted(times)

    def test_tweet_ids_unique(self, tiny_world):
        ids = [t.tweet_id for t in tiny_world.twitter.all_tweets()]
        assert len(set(ids)) == len(ids)


class TestGroundTruth:
    def test_every_shared_url_registered_on_platform(self, tiny_world):
        for truth in tiny_world.ground_truth().values():
            service = tiny_world.platform(truth.platform)
            record = service.group(truth.gid)
            assert record.plan.created_t == truth.created_t

    def test_urls_parse_to_their_platform(self, tiny_world):
        for truth in tiny_world.ground_truth().values():
            extracted = extract_group_urls([truth.url])
            assert len(extracted) == 1
            assert extracted[0].platform == truth.platform

    def test_share_volumes_track_calibration(self, tiny_world):
        config = tiny_world.config
        truths = tiny_world.ground_truth().values()
        for platform, cal in CALIBRATIONS.items():
            count = sum(1 for t in truths if t.platform == platform)
            expected = cal.new_urls_per_day * config.n_days * config.scale
            assert 0.5 * expected < count < 1.6 * expected

    def test_discord_dominates_url_counts(self, tiny_world):
        # Table 2: Discord URLs outnumber Telegram outnumber WhatsApp.
        counts = {p: 0 for p in CALIBRATIONS}
        for truth in tiny_world.ground_truth().values():
            counts[truth.platform] += 1
        assert counts["discord"] > counts["telegram"] > counts["whatsapp"]

    def test_first_share_within_window(self, tiny_world):
        for truth in tiny_world.ground_truth().values():
            assert 0.0 <= truth.first_share_t < tiny_world.config.n_days

    def test_creation_never_after_first_share(self, tiny_world):
        for truth in tiny_world.ground_truth().values():
            assert truth.created_t <= truth.first_share_t


class TestTweets:
    def test_share_tweets_carry_their_url(self, tiny_world):
        truths = tiny_world.ground_truth()
        tweets_with_urls = [
            t for t in tiny_world.twitter.all_tweets() if t.urls
        ]
        assert tweets_with_urls
        for tweet in tweets_with_urls[:200]:
            assert tweet.urls[0] in truths

    def test_control_tweets_have_no_urls(self, tiny_world):
        control = [
            t for t in tiny_world.twitter.all_tweets() if not t.urls
        ]
        assert control  # background volume exists

    def test_retweets_reference_existing_tweets(self, tiny_world):
        all_ids = {t.tweet_id for t in tiny_world.twitter.all_tweets()}
        retweets = [
            t for t in tiny_world.twitter.all_tweets() if t.retweet_of is not None
        ]
        assert retweets
        for tweet in retweets:
            assert tweet.retweet_of in all_ids

    def test_retweets_inherit_urls(self, tiny_world):
        by_id = {t.tweet_id: t for t in tiny_world.twitter.all_tweets()}
        for tweet in by_id.values():
            if tweet.retweet_of is not None and tweet.urls:
                assert tweet.urls == by_id[tweet.retweet_of].urls

    def test_languages_are_tagged(self, tiny_world):
        langs = {t.lang for t in tiny_world.twitter.all_tweets()}
        assert "en" in langs
        assert len(langs) >= 5
