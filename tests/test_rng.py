"""Tests for the deterministic RNG derivation utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import derive_rng, derive_seed, stable_hash, stable_uniform


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct_keys_distinct_hashes(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_fits_64_bits(self):
        assert 0 <= stable_hash("anything") < 2**64

    def test_empty_key_allowed(self):
        assert isinstance(stable_hash(""), int)

    @given(st.text(max_size=50))
    def test_always_in_range(self, key):
        assert 0 <= stable_hash(key) < 2**64


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")

    def test_varies_with_key(self):
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_varies_with_root_seed(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
    def test_in_64_bit_range(self, seed, key):
        assert 0 <= derive_seed(seed, key) < 2**64


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(1, "k").random(5)
        b = derive_rng(1, "k").random(5)
        assert np.array_equal(a, b)

    def test_different_key_different_stream(self):
        a = derive_rng(1, "k1").random(5)
        b = derive_rng(1, "k2").random(5)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(derive_rng(0, "x"), np.random.Generator)


class TestStableUniform:
    def test_range(self):
        for key in ("a", "b", "c", "1234"):
            assert 0.0 <= stable_uniform(key) < 1.0

    def test_deterministic(self):
        assert stable_uniform("tweet-1", "salt") == stable_uniform("tweet-1", "salt")

    def test_salt_changes_value(self):
        assert stable_uniform("tweet-1", "s1") != stable_uniform("tweet-1", "s2")

    def test_roughly_uniform(self):
        values = [stable_uniform(str(i)) for i in range(2000)]
        assert 0.45 < np.mean(values) < 0.55
        assert 0.18 < np.mean(np.asarray(values) < 0.2) < 0.22

    @given(st.text(max_size=40), st.text(max_size=10))
    def test_always_in_unit_interval(self, key, salt):
        assert 0.0 <= stable_uniform(key, salt) < 1.0
