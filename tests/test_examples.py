"""Smoke tests for the example scripts.

Full example runs take tens of seconds each, so these tests only check
that every script compiles, has a ``main`` entry point, and documents
itself; the repository's CI runs them for real via the shell.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_five_examples():
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_compiles(self, path):
        compile(path.read_text(), str(path), "exec")

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_defines_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions

    def test_uses_public_api_only(self, path):
        # Examples must not reach into ground truth (World internals).
        source = path.read_text()
        assert "ground_truth" not in source
        assert "._groups" not in source
