"""Determinism and order-independence invariants.

The whole library's correctness argument rests on: (1) a study is a
pure function of its config, and (2) lazy materialisation is
order-independent.  These tests attack both properties directly.
"""

import numpy as np
import pytest

from repro.core.study import Study, StudyConfig
from repro.simulation.world import World, WorldConfig

from tests.helpers import make_plan, make_whatsapp


class TestWorldDeterminism:
    def test_stepwise_equals_generate_all(self):
        config = WorldConfig(seed=13, n_days=4, scale=0.003)
        stepwise = World(config)
        for day in range(4):
            stepwise.generate_day(day)
        allatonce = World(config)
        allatonce.generate_all()
        a = [(t.tweet_id, t.t, t.text) for t in stepwise.twitter.all_tweets()]
        b = [(t.tweet_id, t.t, t.text) for t in allatonce.twitter.all_tweets()]
        assert a == b

    def test_ground_truth_identical_across_instances(self):
        config = WorldConfig(seed=13, n_days=3, scale=0.003)
        world_a, world_b = World(config), World(config)
        world_a.generate_all()
        world_b.generate_all()
        truths_a = {
            url: (t.created_t, t.revoke_t, t.n_shares_scheduled)
            for url, t in world_a.ground_truth().items()
        }
        truths_b = {
            url: (t.created_t, t.revoke_t, t.n_shares_scheduled)
            for url, t in world_b.ground_truth().items()
        }
        assert truths_a == truths_b


class TestLazyOrderIndependence:
    def test_roster_before_or_after_messages(self):
        plan = make_plan(gid="WAx", size0=40, msg_rate=30.0)

        service_a = make_whatsapp(seed=4)
        record_a = service_a.register_group(plan)
        roster_first = record_a.roster(5.0)
        msgs_a = [m.message_id for m in record_a.messages_between(2.0, 5.0)]

        service_b = make_whatsapp(seed=4)
        record_b = service_b.register_group(plan)
        msgs_b = [m.message_id for m in record_b.messages_between(2.0, 5.0)]
        roster_second = record_b.roster(5.0)

        assert roster_first == roster_second
        assert msgs_a == msgs_b

    def test_profile_access_order_irrelevant(self):
        service_a = make_whatsapp(seed=5)
        first = [service_a.user_profile(f"whu{i}").phone for i in range(10)]

        service_b = make_whatsapp(seed=5)
        second = [
            service_b.user_profile(f"whu{i}").phone for i in reversed(range(10))
        ]
        assert first == list(reversed(second))

    def test_message_window_composition(self):
        # Fetching [2, 8) equals fetching [2, 5) + [5, 8).
        service = make_whatsapp(seed=6)
        record = service.register_group(make_plan(msg_rate=40.0))
        whole = [m.message_id for m in record.messages_between(2.0, 8.0)]
        parts = [m.message_id for m in record.messages_between(2.0, 5.0)]
        parts += [m.message_id for m in record.messages_between(5.0, 8.0)]
        assert whole == parts


class TestStudyDeterminism:
    @pytest.fixture(scope="class")
    def pair(self):
        config = StudyConfig(
            seed=19, n_days=5, scale=0.003, message_scale=0.05, join_day=2,
            join_targets={"whatsapp": 8, "telegram": 8, "discord": 8},
        )
        return Study(config).run(), Study(config).run()

    def test_discovery_identical(self, pair):
        ds_a, ds_b = pair
        assert set(ds_a.records) == set(ds_b.records)
        for canonical in ds_a.records:
            assert ds_a.records[canonical].shares == (
                ds_b.records[canonical].shares
            )

    def test_snapshots_identical(self, pair):
        ds_a, ds_b = pair
        assert ds_a.snapshots == ds_b.snapshots

    def test_joined_identical(self, pair):
        ds_a, ds_b = pair
        assert [(j.canonical, j.n_messages, j.sender_counts)
                for j in ds_a.joined] == [
            (j.canonical, j.n_messages, j.sender_counts) for j in ds_b.joined
        ]

    def test_users_identical(self, pair):
        ds_a, ds_b = pair
        assert ds_a.users == ds_b.users

    def test_seed_sensitivity(self):
        base = StudyConfig(
            seed=19, n_days=3, scale=0.003, message_scale=0.05, join_day=1,
            join_targets={"whatsapp": 2, "telegram": 2, "discord": 2},
        )
        other = StudyConfig(
            seed=20, n_days=3, scale=0.003, message_scale=0.05, join_day=1,
            join_targets={"whatsapp": 2, "telegram": 2, "discord": 2},
        )
        ds_a = Study(base).run()
        ds_b = Study(other).run()
        assert set(ds_a.records) != set(ds_b.records)
