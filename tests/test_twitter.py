"""Tests for the simulated Twitter: store, Search API, Streaming API."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.twitter import SearchAPI, StreamingAPI, Tweet, TwitterService
from repro.twitter.service import tweet_matches


def tweet(tweet_id, t, urls=(), **kwargs):
    defaults = dict(author_id=1, text="x", lang="en")
    defaults.update(kwargs)
    return Tweet(tweet_id=tweet_id, t=t, urls=tuple(urls), **defaults)


WA_URL = "https://chat.whatsapp.com/AbCdEfGh1234"
PATTERNS = ("chat.whatsapp.com/", "t.me/")


class TestTweetModel:
    def test_is_retweet(self):
        assert not tweet(1, 0.0).is_retweet
        assert tweet(2, 0.0, retweet_of=1).is_retweet

    def test_frozen(self):
        tw = tweet(1, 0.0)
        with pytest.raises(AttributeError):
            tw.text = "y"


class TestTweetMatches:
    def test_matches_pattern(self):
        assert tweet_matches(tweet(1, 0.0, [WA_URL]), PATTERNS)

    def test_no_urls_no_match(self):
        assert not tweet_matches(tweet(1, 0.0), PATTERNS)

    def test_non_matching_url(self):
        assert not tweet_matches(
            tweet(1, 0.0, ["https://example.com/x"]), PATTERNS
        )


class TestTwitterService:
    def test_post_and_range_query(self):
        service = TwitterService()
        for i in range(10):
            service.post(tweet(i, float(i)))
        got = service.tweets_between(3.0, 7.0)
        assert [tw.tweet_id for tw in got] == [3, 4, 5, 6]

    def test_range_is_half_open(self):
        service = TwitterService()
        service.post(tweet(1, 5.0))
        assert not service.tweets_between(5.0 + 1e-9, 6.0)
        assert service.tweets_between(5.0, 5.0 + 1e-9)

    def test_out_of_order_insert(self):
        service = TwitterService()
        service.post(tweet(1, 5.0))
        service.post(tweet(2, 3.0))
        got = service.tweets_between(0.0, 10.0)
        assert [tw.tweet_id for tw in got] == [2, 1]

    def test_post_many_sorts(self):
        service = TwitterService()
        service.post_many([tweet(2, 4.0), tweet(1, 2.0)])
        got = service.tweets_between(0.0, 10.0)
        assert [tw.tweet_id for tw in got] == [1, 2]

    def test_len(self):
        service = TwitterService()
        service.post_many([tweet(i, float(i)) for i in range(5)])
        assert len(service) == 5

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_store_always_sorted(self, times):
        service = TwitterService()
        for i, t in enumerate(times):
            service.post(tweet(i, t))
        stored = service.tweets_between(-1.0, 101.0)
        assert [tw.t for tw in stored] == sorted(tw.t for tw in stored)


class TestSearchAPI:
    def _service_with_matches(self, n=200):
        service = TwitterService()
        service.post_many(
            [tweet(i, i * 0.05, [WA_URL]) for i in range(n)]
        )
        return service

    def test_recall_validation(self):
        with pytest.raises(ValueError):
            SearchAPI(TwitterService(), recall=0.0)
        with pytest.raises(ValueError):
            SearchAPI(TwitterService(), recall=1.5)

    def test_full_recall_returns_all_in_window(self):
        service = self._service_with_matches()
        api = SearchAPI(service, recall=1.0)
        got = api.search(PATTERNS, now=10.0)
        assert len(got) == len(service.tweets_between(3.0, 10.0))

    def test_window_is_seven_days(self):
        service = TwitterService()
        service.post(tweet(1, 1.0, [WA_URL]))
        service.post(tweet(2, 9.5, [WA_URL]))
        api = SearchAPI(service, recall=1.0)
        got = api.search(PATTERNS, now=10.0)
        assert [tw.tweet_id for tw in got] == [2]

    def test_since_narrows_window(self):
        service = self._service_with_matches()
        api = SearchAPI(service, recall=1.0)
        got = api.search(PATTERNS, now=10.0, since=9.0)
        assert all(tw.t >= 9.0 for tw in got)

    def test_partial_recall_misses_stably(self):
        service = self._service_with_matches()
        api = SearchAPI(service, recall=0.7)
        first = {tw.tweet_id for tw in api.search(PATTERNS, now=10.0)}
        second = {tw.tweet_id for tw in api.search(PATTERNS, now=10.0)}
        assert first == second
        assert 0 < len(first) < 200

    def test_non_matching_tweets_excluded(self):
        service = TwitterService()
        service.post(tweet(1, 9.0, ["https://example.com"]))
        api = SearchAPI(service, recall=1.0)
        assert not api.search(PATTERNS, now=10.0)


class TestStreamingAPI:
    def test_recall_validation(self):
        with pytest.raises(ValueError):
            StreamingAPI(TwitterService(), recall=-0.1)

    def test_filtered_window(self):
        service = TwitterService()
        service.post_many([tweet(i, float(i), [WA_URL]) for i in range(10)])
        api = StreamingAPI(service, recall=1.0)
        got = api.filtered(PATTERNS, 3.0, 6.0)
        assert [tw.tweet_id for tw in got] == [3, 4, 5]

    def test_search_and_stream_gaps_are_independent(self):
        service = TwitterService()
        service.post_many([tweet(i, i * 0.01, [WA_URL]) for i in range(1000)])
        search = SearchAPI(service, recall=0.9)
        stream = StreamingAPI(service, recall=0.9)
        via_search = {tw.tweet_id for tw in search.search(PATTERNS, now=10.0)}
        via_stream = {tw.tweet_id for tw in stream.filtered(PATTERNS, 0.0, 10.0)}
        # Each API misses some tweets the other catches (the paper's
        # observed discrepancy), and the merge beats either source.
        assert via_search - via_stream
        assert via_stream - via_search
        assert len(via_search | via_stream) > max(len(via_search), len(via_stream))

    def test_sample_rate_roughly_respected(self):
        service = TwitterService()
        service.post_many([tweet(i, 0.5) for i in range(5000)])
        api = StreamingAPI(service)
        sampled = api.sample(0.0, 1.0, rate=0.1)
        assert 0.07 < len(sampled) / 5000 < 0.13

    def test_sample_is_unfiltered(self):
        service = TwitterService()
        service.post_many(
            [tweet(i, 0.5, [WA_URL] if i % 2 else ()) for i in range(2000)]
        )
        api = StreamingAPI(service)
        sampled = api.sample(0.0, 1.0, rate=0.5)
        assert any(tw.urls for tw in sampled)
        assert any(not tw.urls for tw in sampled)

    def test_sample_deterministic(self):
        service = TwitterService()
        service.post_many([tweet(i, 0.5) for i in range(100)])
        api = StreamingAPI(service)
        a = [tw.tweet_id for tw in api.sample(0.0, 1.0, rate=0.3)]
        b = [tw.tweet_id for tw in api.sample(0.0, 1.0, rate=0.3)]
        assert a == b
