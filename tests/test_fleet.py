"""Tests for the fleet: supervised sharded sweeps with a restartable ledger.

The headline invariants:

* the same sweep matrix produces a byte-identical ledger and merged
  report across independent runs, across worker counts, and across a
  kill-and-resume of the fleet supervisor;
* ``--resume`` trusts a completed cell record only when its content
  digest (and its summary's digest) still verify — everything else is
  re-run from the cell's own checkpoints;
* a crash-looping cell burns its restart budget and degrades to a
  ``failed`` row in the report while the sweep itself completes and
  reports honest coverage.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.errors import CheckpointError, ConfigError
from repro.fleet import (
    FLEET_FORMAT_VERSION,
    FLEET_MANIFEST_NAME,
    PLATFORMS,
    SUMMARY_METRICS,
    CellOutcome,
    FleetLedger,
    FleetPolicy,
    FleetResult,
    FleetRunner,
    SweepCell,
    SweepMatrix,
)
from repro.fleet._child import CRASH_ENV, HANG_ENV
from repro.fleet.summary import summary_bytes
from repro.reporting import (
    fleet_report_dict,
    render_fleet_report,
    sensitivity_bands,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.fleet

#: Small-but-complete cell campaign: seconds per cell, full pipeline.
TINY_BASE = dict(n_days=3, scale=0.003, message_scale=0.05, join_day=1)

#: The golden 2x2 sweep every determinism test compares against.
GOLDEN_SPEC = dict(
    seeds=(3, 5), faults=("none", "hostile"), base=dict(TINY_BASE)
)


def _report_bytes(result):
    """The exact report.json bytes the CLI would write for ``result``."""
    return (
        json.dumps(fleet_report_dict(result), indent=2, sort_keys=True)
        + "\n"
    ).encode("utf-8")


def _ledger_bytes(workdir):
    """cell_id -> raw status.json bytes for every cell in the workdir."""
    return {
        path.name: (path / "status.json").read_bytes()
        for path in sorted((workdir / "cells").iterdir())
    }


class _Golden:
    def __init__(self, workdir, result, telemetry):
        self.workdir = workdir
        self.result = result
        self.telemetry = telemetry
        self.report = _report_bytes(result)
        self.ledger = _ledger_bytes(workdir)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One uninterrupted golden sweep, shared by the determinism tests."""
    for var in (CRASH_ENV, HANG_ENV):
        assert var not in os.environ
    workdir = tmp_path_factory.mktemp("fleet-golden")
    telemetry = Telemetry(enabled=True)
    result = FleetRunner(
        SweepMatrix(**GOLDEN_SPEC),
        workdir,
        policy=FleetPolicy(workers=2),
        telemetry=telemetry,
    ).run()
    return _Golden(workdir, result, telemetry)


class TestSweepMatrix:
    def test_defaults_expansion_and_order(self):
        matrix = SweepMatrix(seeds=(3, 5), faults=("none", "hostile"))
        assert len(matrix) == 4
        assert matrix.scenarios == ("paper-weather",)
        assert matrix.base["n_days"] == 6  # defaults merged in
        assert [c.cell_id for c in matrix.cells()] == [
            "s3-none-paper-weather",
            "s3-hostile-paper-weather",
            "s5-none-paper-weather",
            "s5-hostile-paper-weather",
        ]

    def test_roundtrip_preserves_digest(self):
        matrix = SweepMatrix(**GOLDEN_SPEC)
        again = SweepMatrix.from_dict(matrix.to_dict())
        assert again.digest == matrix.digest
        assert SweepMatrix(seeds=(3, 7)).digest != matrix.digest

    def test_cell_config_kwargs_map_sentinel_names(self):
        matrix = SweepMatrix(
            seeds=(3,), faults=("none",), scenarios=("paper-weather",)
        )
        kwargs = matrix.cells()[0].config_kwargs()
        assert kwargs["faults"] is None
        assert kwargs["scenario"] is None
        assert kwargs["join_day"] == 5  # min(10, n_days - 1) for 6 days
        surge = SweepMatrix(
            seeds=(3,), scenarios=("election-surge",),
            base=dict(TINY_BASE),
        ).cells()[0].config_kwargs()
        assert surge["scenario"] == "election-surge"
        assert surge["join_day"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(seeds=()),
            dict(seeds=(3, 3)),
            dict(seeds=(True,)),
            dict(seeds=("three",)),
            dict(seeds=(3,), faults=("nope",)),
            dict(seeds=(3,), scenarios=("nope",)),
            dict(seeds=(3,), faults=("none", "none")),
            dict(seeds=(3,), base={"bogus": 1}),
            dict(seeds=(3,), base={"n_days": 0}),
            dict(seeds=(3,), base={"scale": 0}),
            dict(seeds=(3,), base={"message_scale": 0}),
            dict(seeds=(3,), base={"message_scale": 1.5}),
            dict(seeds=(3,), base={"n_days": 3, "join_day": 3}),
            dict(seeds=(3,), fork={"store": "x"}),
            dict(seeds=(3,), fork={"store": "x", "day": -1}),
            dict(seeds=(3,), fork={"store": "x", "day": 1, "extra": 1}),
        ],
    )
    def test_invalid_matrices_raise_at_parse_time(self, kwargs):
        with pytest.raises(ConfigError):
            SweepMatrix(**kwargs)

    def test_from_dict_rejects_unknown_keys_and_missing_seeds(self):
        with pytest.raises(ConfigError, match="unknown sweep spec"):
            SweepMatrix.from_dict({"seeds": [3], "typo": 1})
        with pytest.raises(ConfigError, match="seeds"):
            SweepMatrix.from_dict({"faults": ["none"]})
        with pytest.raises(ConfigError, match="JSON object"):
            SweepMatrix.from_dict([3])

    def test_from_file_failures_are_config_errors(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            SweepMatrix.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            SweepMatrix.from_file(bad)
        good = tmp_path / "sweep.json"
        good.write_text(json.dumps({
            "seeds": [3, 5],
            "faults": ["none", "hostile"],
            "base": dict(TINY_BASE),
        }))
        assert (
            SweepMatrix.from_file(good).digest
            == SweepMatrix(**GOLDEN_SPEC).digest
        )


class TestFleetPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(workers=0),
            dict(workers=True),
            dict(workers=1.5),
            dict(cell_deadline_s=0),
            dict(max_restarts=-1),
            dict(max_restarts=True),
            dict(wait_slice_s=0),
            dict(term_grace_s=0),
        ],
    )
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ConfigError):
            FleetPolicy(**kwargs)


class TestFleetLedger:
    def _matrix(self):
        return SweepMatrix(seeds=(3,), base=dict(TINY_BASE))

    def test_create_open_and_readopt(self, tmp_path):
        matrix = self._matrix()
        FleetLedger.create(tmp_path, matrix)
        assert (tmp_path / FLEET_MANIFEST_NAME).exists()
        assert FleetLedger.open(tmp_path).matrix.digest == matrix.digest
        # Re-adopting the same matrix is fine; a different one is not.
        FleetLedger.create(tmp_path, matrix)
        with pytest.raises(CheckpointError, match="different"):
            FleetLedger.create(
                tmp_path, SweepMatrix(seeds=(4,), base=dict(TINY_BASE))
            )

    def test_open_rejects_unusable_manifests(self, tmp_path):
        with pytest.raises(CheckpointError, match="no fleet ledger"):
            FleetLedger.open(tmp_path / "nowhere")
        workdir = tmp_path / "sweep"
        FleetLedger.create(workdir, self._matrix())
        manifest = workdir / FLEET_MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["format_version"] = FLEET_FORMAT_VERSION + 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format version"):
            FleetLedger.open(workdir)
        manifest.write_text("{torn")
        with pytest.raises(CheckpointError, match="corrupt"):
            FleetLedger.open(workdir)

    def test_status_records_roundtrip_and_degrade(self, tmp_path):
        matrix = self._matrix()
        cell = matrix.cells()[0]
        ledger = FleetLedger.create(tmp_path, matrix)
        assert ledger.read_status(cell.cell_id) is None
        ledger.record_running(cell)
        assert ledger.read_status(cell.cell_id)["status"] == "running"
        ledger.status_path(cell.cell_id).write_text("{torn")
        assert ledger.read_status(cell.cell_id) is None

    def test_completed_summary_is_content_addressed(self, tmp_path):
        import hashlib

        matrix = self._matrix()
        cell = matrix.cells()[0]
        ledger = FleetLedger.create(tmp_path, matrix)
        payload = summary_bytes({"cell": cell.cell_id, "metrics": 1})
        ledger.cell_dir(cell.cell_id).mkdir(parents=True, exist_ok=True)
        ledger.summary_path(cell.cell_id).write_bytes(payload)
        digest = hashlib.sha256(payload).hexdigest()

        # running / failed records never count as completed
        ledger.record_running(cell)
        assert ledger.completed_summary(cell) is None
        ledger.record_completed(cell, digest, days=3)
        assert ledger.completed_summary(cell)["cell"] == cell.cell_id

        # a record from a different sweep cell is re-run, not trusted
        record = ledger.read_status(cell.cell_id)
        record["digest"] = "0" * 64
        ledger.write_status(record)
        assert ledger.completed_summary(cell) is None

        # tampered summary bytes fail the content address
        ledger.record_completed(cell, digest, days=3)
        ledger.summary_path(cell.cell_id).write_bytes(payload + b" ")
        assert ledger.completed_summary(cell) is None


class TestFleetRunner:
    def test_sweep_completes_every_cell(self, golden):
        result = golden.result
        assert result.ok
        assert len(result.completed) == 4 and not result.failed
        cells = SweepMatrix(**GOLDEN_SPEC).cells()
        assert [o.cell.cell_id for o in result.outcomes] == [
            c.cell_id for c in cells
        ]
        for outcome in result.outcomes:
            assert not outcome.skipped and outcome.attempts == 1
            summary = outcome.summary
            assert summary["cell"] == outcome.cell.cell_id
            assert summary["digest"] == outcome.cell.digest
            for platform in PLATFORMS:
                assert set(summary["platforms"][platform]) == set(
                    SUMMARY_METRICS
                )
        for record in _ledger_bytes(golden.workdir).values():
            assert json.loads(record)["status"] == "completed"
        metrics = golden.telemetry.metrics
        assert metrics.counter("fleet_cells_started_total") == 4
        assert metrics.counter("fleet_cells_completed_total") == 4
        assert metrics.counter("fleet_cells_failed_total") == 0

    def test_rerun_is_byte_identical_across_worker_counts(
        self, golden, tmp_path
    ):
        result = FleetRunner(
            SweepMatrix(**GOLDEN_SPEC),
            tmp_path / "again",
            policy=FleetPolicy(workers=1),
        ).run()
        assert _report_bytes(result) == golden.report
        assert _ledger_bytes(tmp_path / "again") == golden.ledger

    def test_resume_skips_completed_cells_by_digest(self, golden):
        telemetry = Telemetry(enabled=True)
        result = FleetRunner(
            SweepMatrix(**GOLDEN_SPEC),
            golden.workdir,
            telemetry=telemetry,
            resume=True,
        ).run()
        assert result.ok
        assert all(o.skipped for o in result.outcomes)
        assert _report_bytes(result) == golden.report
        assert telemetry.metrics.counter("fleet_cells_skipped_total") == 4
        assert telemetry.metrics.counter("fleet_cells_started_total") == 0

    def test_dead_fleet_resume_is_byte_identical(self, golden, tmp_path):
        """Abort the supervisor after its first completed cell (the
        in-process stand-in for SIGKILLing the fleet), then resume:
        same ledger, same report, completed work never re-run."""

        class _FleetDied(RuntimeError):
            pass

        def die(cell_id, status):
            raise _FleetDied(cell_id)

        workdir = tmp_path / "interrupted"
        with pytest.raises(_FleetDied):
            FleetRunner(
                SweepMatrix(**GOLDEN_SPEC),
                workdir,
                policy=FleetPolicy(workers=2),
                cell_hook=die,
            ).run()

        telemetry = Telemetry(enabled=True)
        result = FleetRunner(
            SweepMatrix(**GOLDEN_SPEC),
            workdir,
            telemetry=telemetry,
            resume=True,
        ).run()
        assert result.ok
        assert telemetry.metrics.counter("fleet_cells_skipped_total") >= 1
        assert any(o.skipped for o in result.outcomes)
        assert _report_bytes(result) == golden.report
        assert _ledger_bytes(workdir) == golden.ledger

    def test_crashed_cell_retries_from_its_checkpoints(
        self, golden, tmp_path, monkeypatch
    ):
        cell_id = "s3-hostile-paper-weather"
        monkeypatch.setenv(CRASH_ENV, f"{cell_id}:1:1")  # attempt 1 only
        telemetry = Telemetry(enabled=True)
        result = FleetRunner(
            SweepMatrix(seeds=(3,), faults=("hostile",),
                        base=dict(TINY_BASE)),
            tmp_path / "crashy",
            policy=FleetPolicy(workers=1),
            telemetry=telemetry,
        ).run()
        assert result.ok and not result.failed
        outcome = result.outcomes[0]
        assert outcome.attempts == 2
        reference = next(
            o for o in golden.result.outcomes
            if o.cell.cell_id == cell_id
        )
        # The healed cell's summary matches the never-crashed run's.
        assert outcome.summary == reference.summary
        metrics = telemetry.metrics
        assert metrics.counter("fleet_cell_losses_total", reason="crash") == 1
        assert metrics.counter("fleet_cells_retried_total") == 1
        assert metrics.counter("fleet_restart_backoff_seconds_total") > 0

    def test_budget_exhaustion_degrades_cell_not_sweep(
        self, tmp_path, monkeypatch
    ):
        doomed = "s5-none-paper-weather"
        monkeypatch.setenv(CRASH_ENV, f"{doomed}:1")  # every attempt
        workdir = tmp_path / "degraded"
        result = FleetRunner(
            SweepMatrix(seeds=(3, 5), base=dict(TINY_BASE)),
            workdir,
            policy=FleetPolicy(workers=2, max_restarts=1),
        ).run()
        assert result.ok  # the sweep completed; one cell degraded
        assert [o.cell.cell_id for o in result.failed] == [doomed]
        failure = result.failed[0]
        assert failure.reason == (
            "restart budget exhausted after 2 attempts (last loss: crash)"
        )
        assert failure.summary is None
        assert len(result.completed) == 1
        record = json.loads(
            (workdir / "cells" / doomed / "status.json").read_text()
        )
        assert record["status"] == "failed"
        report = render_fleet_report(result)
        assert "coverage: 1/2 cells completed" in report
        assert doomed in report and "restart budget exhausted" in report

    def test_hung_cell_is_stopped_at_its_deadline(
        self, tmp_path, monkeypatch
    ):
        cell_id = "s3-none-paper-weather"
        monkeypatch.setenv(HANG_ENV, f"{cell_id}:1:600")
        telemetry = Telemetry(enabled=True)
        result = FleetRunner(
            SweepMatrix(seeds=(3,), base=dict(TINY_BASE)),
            tmp_path / "hung",
            policy=FleetPolicy(
                workers=1, cell_deadline_s=5.0, max_restarts=0,
                term_grace_s=2.0,
            ),
            telemetry=telemetry,
        ).run()
        assert result.ok
        assert [o.cell.cell_id for o in result.failed] == [cell_id]
        assert "deadline" in result.failed[0].reason
        assert telemetry.metrics.counter(
            "fleet_cell_losses_total", reason="deadline"
        ) == 1


def _synthetic_result(values_by_cell, failed=()):
    """A FleetResult over hand-built summaries: every platform/metric
    carries the cell's value except ``users`` (pinned, always robust)
    and ``revoked_frac`` (value / 1000, exercising the absolute-width
    test for fractional metrics)."""
    matrix = SweepMatrix(
        seeds=tuple(range(1, len(values_by_cell) + len(failed) + 1)),
        base=dict(TINY_BASE),
    )
    cells = matrix.cells()
    outcomes = []
    for cell, value in zip(cells, values_by_cell):
        platforms = {
            p: {
                **{m: value for m in SUMMARY_METRICS},
                "users": 50,
                "revoked_frac": value / 1000.0,
            }
            for p in PLATFORMS
        }
        outcomes.append(CellOutcome(
            cell=cell,
            status="completed",
            summary={
                "cell": cell.cell_id,
                "digest": cell.digest,
                "platforms": platforms,
            },
        ))
    for cell, reason in zip(cells[len(values_by_cell):], failed):
        outcomes.append(
            CellOutcome(cell=cell, status="failed", reason=reason)
        )
    return FleetResult(matrix=matrix, outcomes=outcomes)


class TestFleetReport:
    def test_bands_classify_tight_and_wide_metrics(self):
        result = _synthetic_result([100, 102, 104])
        bands = {
            (b["platform"], b["metric"]): b
            for b in sensitivity_bands(result)
        }
        spread = bands[("whatsapp", "tweets")]
        assert (spread["min"], spread["median"], spread["max"]) == (
            100, 102, 104
        )
        # (104 - 100) / 102 < 10%: robust
        assert spread["verdict"] == "robust"
        # pinned metric: zero spread, robust on every platform
        assert bands[("discord", "users")]["spread"] == 0.0
        assert bands[("discord", "users")]["verdict"] == "robust"
        # 0.100 vs 0.104: absolute width 0.004 <= 0.05, robust
        assert bands[("telegram", "revoked_frac")]["verdict"] == "robust"

        wide = _synthetic_result([100, 200, 400])
        bands = {
            (b["platform"], b["metric"]): b
            for b in sensitivity_bands(wide)
        }
        assert bands[("whatsapp", "tweets")]["verdict"] == (
            "weather-dependent"
        )
        # frac metric: width 0.3 > 0.05, weather-dependent
        assert bands[("whatsapp", "revoked_frac")]["verdict"] == (
            "weather-dependent"
        )

    def test_zero_median_bands(self):
        flat = _synthetic_result([0, 0, 0])
        bands = sensitivity_bands(flat)
        assert all(b["verdict"] == "robust" and b["spread"] == 0.0
                   for b in bands if b["metric"] == "joined")
        mixed = _synthetic_result([0, 0, 7])
        band = next(
            b for b in sensitivity_bands(mixed)
            if b["platform"] == "whatsapp" and b["metric"] == "joined"
        )
        assert band["spread"] is None  # rendered as "inf"
        assert band["verdict"] == "weather-dependent"
        assert "inf" in render_fleet_report(mixed)

    def test_report_is_honest_about_coverage(self):
        result = _synthetic_result(
            [100, 101], failed=["restart budget exhausted (crash)"]
        )
        report = render_fleet_report(result)
        assert "coverage: 2/3 cells completed" in report
        assert "restart budget exhausted (crash)" in report
        payload = fleet_report_dict(result)
        assert payload["coverage"]["total"] == 3
        assert payload["coverage"]["completed"] == 2
        assert payload["coverage"]["failed"][0]["reason"] == (
            "restart budget exhausted (crash)"
        )
        # bands exist and cover completed cells only
        assert all(b["n"] == 2 for b in payload["bands"])

    def test_all_failed_report_has_no_bands(self):
        result = _synthetic_result([], failed=["crash", "crash"])
        assert sensitivity_bands(result) == []
        assert "sensitivity bands unavailable" in render_fleet_report(
            result
        )


class TestFleetCLI:
    @pytest.mark.parametrize(
        "argv, match",
        [
            (["--workdir", "w", "--resume", "--seeds", "1"], "--resume"),
            (
                ["--workdir", "w", "--sweep-file", "s.json",
                 "--seeds", "1"],
                "mutually exclusive",
            ),
            (
                ["--workdir", "w", "--seeds", "1",
                 "--fork-from", "parent"],
                "--fork-day",
            ),
            (["--workdir", "w"], "needs --seeds"),
            (
                ["--workdir", "w", "--seeds", "1",
                 "--cell-deadline", "0"],
                "positive",
            ),
            (
                ["--workdir", "w", "--seeds", "1",
                 "--cell-restarts", "-1"],
                ">= 0",
            ),
        ],
    )
    def test_flag_validation(self, argv, match):
        with pytest.raises(ConfigError, match=match):
            main(["fleet"] + argv)

    def test_missing_fork_store_rejected_at_launch(self, tmp_path):
        # A typo'd --fork-from must die as a ConfigError before any
        # cell spawns, not by burning every cell's restart budget on
        # an unfixable crash.
        with pytest.raises(ConfigError, match="no checkpoint manifest"):
            main([
                "fleet", "--workdir", str(tmp_path / "w"),
                "--seeds", "3", "--fork-from", str(tmp_path / "nope"),
                "--fork-day", "2",
            ])

    def test_sweep_file_run_matches_golden_and_resumes(
        self, golden, tmp_path, capsys
    ):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps({
            "seeds": [3, 5],
            "faults": ["none", "hostile"],
            "base": dict(TINY_BASE),
        }))
        workdir = tmp_path / "cli"
        assert main([
            "fleet", "--workdir", str(workdir),
            "--sweep-file", str(sweep_file), "--workers", "1",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Fleet sweep report" in stdout
        assert "coverage: 4/4 cells completed" in stdout
        assert (workdir / "report.json").read_bytes() == golden.report
        assert (workdir / "report.txt").read_text() == (
            render_fleet_report(golden.result)
        )
        assert _ledger_bytes(workdir) == golden.ledger

        # --resume on the finished workdir skips everything, same bytes.
        assert main([
            "fleet", "--workdir", str(workdir), "--resume",
        ]) == 0
        assert (workdir / "report.json").read_bytes() == golden.report
