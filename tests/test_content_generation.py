"""Tests for tweet text/entity composition (simulation.content)."""

import numpy as np
import pytest

from repro.simulation.calibration import CALIBRATIONS, CONTROL
from repro.simulation.content import TweetComposer, compose_control_text
from repro.text.topicbank import LANGUAGE_VOCAB, PLATFORM_TOPICS


def rng(seed=0):
    return np.random.default_rng(seed)


class TestTweetComposer:
    def _composer(self, platform="whatsapp"):
        return TweetComposer(platform, CALIBRATIONS[platform])

    def test_url_embedded_in_text(self):
        composer = self._composer()
        url = "https://chat.whatsapp.com/XyZ123456789"
        composed = composer.compose(rng(), 0, "en", url)
        assert url in composed.text

    def test_english_text_uses_topic_vocab(self):
        composer = self._composer()
        spec = PLATFORM_TOPICS["whatsapp"][0]  # Forex training
        hits = 0
        for i in range(30):
            composed = composer.compose(rng(i), 0, "en", "https://t.me/x")
            if any(term in composed.text for term in spec.terms[:5]):
                hits += 1
        assert hits > 20

    def test_non_english_uses_language_vocab(self):
        composer = self._composer()
        composed = composer.compose(rng(), 0, "ja", "https://t.me/x")
        body = composed.text.split("https://")[0]
        assert any(word in body for word in LANGUAGE_VOCAB["ja"])

    def test_hashtags_inlined_with_hash(self):
        composer = self._composer("telegram")
        for i in range(50):
            composed = composer.compose(rng(i), 2, "en", "https://t.me/x")
            for tag in composed.hashtags:
                assert f"#{tag}" in composed.text

    def test_mentions_inlined_with_at(self):
        composer = self._composer()
        for i in range(20):
            composed = composer.compose(rng(i), 0, "en", "https://t.me/x")
            for name in composed.mentions:
                assert f"@{name}" in composed.text

    def test_mention_prevalence_calibrated(self):
        composer = self._composer("telegram")
        r = rng(1)
        with_mentions = sum(
            1
            for _ in range(3000)
            if composer.compose(r, 0, "en", "u").mentions
        )
        assert abs(with_mentions / 3000 - 0.84) < 0.03

    def test_topic_accessor(self):
        composer = self._composer("discord")
        assert composer.topic(3).label == "Advertising Discord groups"


class TestControlText:
    def test_no_group_urls(self):
        for i in range(50):
            composed = compose_control_text(rng(i), CONTROL, "en")
            for pattern in ("whatsapp.com", "t.me", "discord.gg"):
                assert pattern not in composed.text

    def test_entities_present_at_calibrated_rate(self):
        r = rng(2)
        n = 3000
        with_hash = sum(
            1 for _ in range(n) if compose_control_text(r, CONTROL, "en").hashtags
        )
        assert abs(with_hash / n - CONTROL.hashtag_prob) < 0.03

    def test_language_vocab_used(self):
        composed = compose_control_text(rng(), CONTROL, "tr")
        assert any(w in composed.text for w in LANGUAGE_VOCAB["tr"])
