"""Tests for the statistics helpers (ECDF, concentration shares)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    ecdf,
    fraction_at_most,
    share_of_top_fraction,
)


class TestECDF:
    def test_basic(self):
        cdf = ecdf([3, 1, 2])
        assert list(cdf.values) == [1, 2, 3]
        assert cdf.at(2) == pytest.approx(2 / 3)

    def test_at_below_min_is_zero(self):
        assert ecdf([5, 6]).at(4) == 0.0

    def test_at_max_is_one(self):
        assert ecdf([5, 6]).at(6) == 1.0

    def test_median(self):
        assert ecdf([1, 2, 3, 4, 5]).median == 3.0

    def test_quantile_bounds(self):
        cdf = ecdf([1, 2])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_raises_on_query(self):
        cdf = ecdf([])
        assert cdf.n == 0
        with pytest.raises(ValueError):
            cdf.at(0)
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_series_downsamples(self):
        cdf = ecdf(range(1000))
        series = cdf.series(max_points=50)
        assert len(series) <= 50
        assert series[0][0] == 0.0
        assert series[-1][1] == 1.0

    def test_series_empty(self):
        assert ecdf([]).series() == []

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=100))
    def test_probs_monotone(self, sample):
        cdf = ecdf(sample)
        assert np.all(np.diff(cdf.probs) >= 0)
        assert cdf.probs[-1] == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                 max_size=50),
        st.floats(min_value=-100, max_value=100),
    )
    def test_at_matches_definition(self, sample, x):
        cdf = ecdf(sample)
        expected = np.mean(np.asarray(sample) <= x)
        assert cdf.at(x) == pytest.approx(expected)


class TestFractionAtMost:
    def test_basic(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_at_most([], 1)


class TestShareOfTopFraction:
    def test_uniform_counts(self):
        assert share_of_top_fraction([1] * 100, 0.01) == pytest.approx(0.01)

    def test_concentrated(self):
        counts = [100] + [1] * 99
        assert share_of_top_fraction(counts, 0.01) == pytest.approx(100 / 199)

    def test_at_least_one_item(self):
        # Tiny samples: the single largest item counts as the "top 1 %".
        assert share_of_top_fraction([5, 1], 0.01) == pytest.approx(5 / 6)

    def test_full_fraction_is_everything(self):
        assert share_of_top_fraction([3, 2, 1], 1.0) == pytest.approx(1.0)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            share_of_top_fraction([1], 0.0)
        with pytest.raises(ValueError):
            share_of_top_fraction([1], 1.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            share_of_top_fraction([], 0.5)

    def test_zero_total(self):
        assert share_of_top_fraction([0, 0], 0.5) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=100))
    def test_share_bounded(self, counts):
        share = share_of_top_fraction(counts, 0.1)
        assert 0.0 <= share <= 1.0

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=2,
                    max_size=100))
    def test_monotone_in_fraction(self, counts):
        low = share_of_top_fraction(counts, 0.1)
        high = share_of_top_fraction(counts, 0.9)
        assert high >= low
