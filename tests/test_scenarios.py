"""Tests for the scenario-pack / persona workload-mix subsystem.

The acceptance properties (ISSUE 8):

* the default ``paper-weather`` pack is *byte-identical* to the
  scenario-free pipeline — same exports at any worker count, under
  the ``none`` and ``hostile`` fault profiles, including after a
  mid-campaign kill and resume;
* every non-identity pack is deterministic: the same (seed, pack)
  replays the exact same campaign, including the per-group persona
  assignments, at any worker count;
* ``Study.fork(scenario=...)`` swaps the weather mid-campaign with
  deterministic replay, exactly like fault plans;
* parse-time validation rejects malformed personas, phases, overlays
  and pack files with :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.errors import ConfigError
from repro.io.export import export_all_csv
from repro.scenarios import (
    DEFAULT_PACK_NAME,
    SCENARIO_PACKS,
    EventOverlay,
    Persona,
    ScenarioEngine,
    ScenarioPack,
    ScenarioPhase,
    get_persona,
    load_pack_file,
    pack_names,
    persona_names,
    scale_calibration,
)
from repro.serve import load as serve_load
from repro.simulation.calibration import CALIBRATIONS

pytestmark = pytest.mark.scenarios

#: Campaign shape shared by the identity/determinism tests: small but
#: complete — discovery, revocations, a join day, and enough days that
#: every built-in pack has at least one phase in range.
_SPEC = dict(
    seed=11,
    n_days=6,
    scale=0.004,
    message_scale=0.05,
    join_day=3,
)

_EXTRA_PACKS = sorted(set(SCENARIO_PACKS) - {DEFAULT_PACK_NAME})


def _config(scenario=None, faults=None) -> StudyConfig:
    return StudyConfig(scenario=scenario, faults=faults, **_SPEC)


def _export_tree(directory: Path) -> dict:
    """Every exported file's bytes, keyed by name (SHA256SUMS included)."""
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


def _run_and_export(config: StudyConfig, directory: Path, **run_kwargs):
    dataset = Study(config).run(**run_kwargs)
    directory.mkdir(parents=True, exist_ok=True)
    export_all_csv(dataset, directory)
    return dataset


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Golden scenario-free sequential exports per fault profile."""
    cache: dict = {}

    def get(faults) -> Path:
        if faults not in cache:
            dataset = Study(_config(faults=faults)).run()
            directory = tmp_path_factory.mktemp(f"golden-{faults}")
            export_all_csv(dataset, directory)
            cache[faults] = directory
        return cache[faults]

    return get


# -- personas ----------------------------------------------------------------


class TestPersonas:
    def test_registry_covers_the_required_names(self):
        assert {"baseline", "lurker", "poster", "spammer", "admin"} <= set(
            persona_names()
        )

    def test_baseline_is_the_identity(self):
        assert get_persona("baseline").is_identity
        assert not get_persona("spammer").is_identity

    def test_unknown_persona_rejected(self):
        with pytest.raises(ConfigError, match="unknown persona"):
            get_persona("influencer")

    def test_non_positive_knob_rejected(self):
        with pytest.raises(ConfigError, match="msg_rate_mult"):
            Persona(name="broken", description="", msg_rate_mult=0.0)
        with pytest.raises(ConfigError, match="size_mult"):
            Persona(name="broken", description="", size_mult=-1.0)

    def test_scale_calibration_identity_is_a_no_op(self):
        cal = CALIBRATIONS["telegram"]
        assert scale_calibration(cal, get_persona("baseline").knobs()) is cal

    def test_spammer_shifts_the_calibration_the_right_way(self):
        cal = CALIBRATIONS["whatsapp"]
        scaled = scale_calibration(cal, get_persona("spammer").knobs())
        # More revocation, faster takedowns, smaller groups.
        assert scaled.revoked_prob > cal.revoked_prob
        assert scaled.revoked_later_mean_days < cal.revoked_later_mean_days
        assert scaled.size_lognorm[0] < cal.size_lognorm[0]
        # Probabilities stay probabilities.
        assert 0.0 < scaled.revoked_prob <= 0.98


# -- packs and overlays ------------------------------------------------------


class TestPacks:
    def test_builtin_registry_shape(self):
        assert DEFAULT_PACK_NAME in pack_names()
        assert len(_EXTRA_PACKS) >= 4

    def test_default_pack_is_the_identity(self):
        pack = ScenarioPack.named(DEFAULT_PACK_NAME)
        assert pack.is_identity
        assert pack.phase_for(0) is None
        assert pack.persona_mix() == {"baseline": 1.0}

    def test_unknown_pack_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            ScenarioPack.named("heat-death")

    def test_all_builtin_packs_roundtrip(self):
        for name in pack_names():
            pack = ScenarioPack.named(name)
            assert ScenarioPack.from_dict(pack.to_dict()) == pack, name

    def test_phase_windows_resolve(self):
        pack = ScenarioPack.named("invite-storm")
        assert pack.phase_for(0) is None
        index, phase = pack.phase_for(2)
        assert phase.covers(2) and not phase.covers(5)
        assert pack.phase_for(40)[1].end_day is None
        assert index == 0

    def test_mix_order_is_canonical(self):
        a = ScenarioPhase(
            start_day=0, end_day=None,
            mix=(("poster", 0.5), ("lurker", 0.5)),
        )
        b = ScenarioPhase(
            start_day=0, end_day=None,
            mix=(("lurker", 0.5), ("poster", 0.5)),
        )
        assert a == b

    def test_phase_validation(self):
        with pytest.raises(ConfigError, match="mix"):
            ScenarioPhase(start_day=0, end_day=None, mix=())
        with pytest.raises(ConfigError, match="weight"):
            ScenarioPhase(
                start_day=0, end_day=None, mix=(("poster", -0.2),)
            )
        with pytest.raises(ConfigError, match="unknown persona"):
            ScenarioPhase(
                start_day=0, end_day=None, mix=(("influencer", 1.0),)
            )
        with pytest.raises(ConfigError, match="window is empty"):
            ScenarioPhase(start_day=3, end_day=3, mix=(("poster", 1.0),))

    def test_pack_validation(self):
        early = ScenarioPhase(
            start_day=0, end_day=4, mix=(("poster", 1.0),)
        )
        overlapping = ScenarioPhase(
            start_day=2, end_day=6, mix=(("lurker", 1.0),)
        )
        open_ended = ScenarioPhase(
            start_day=1, end_day=None, mix=(("admin", 1.0),)
        )
        with pytest.raises(ConfigError, match="overlap"):
            ScenarioPack(
                name="x", description="", phases=(early, overlapping)
            )
        with pytest.raises(ConfigError, match="open-ended"):
            ScenarioPack(
                name="x", description="",
                phases=(open_ended, overlapping),
            )

    def test_overlay_validation(self):
        with pytest.raises(ConfigError, match="platform"):
            EventOverlay(platforms=("myspace",))
        with pytest.raises(ConfigError, match="url_rate_mult"):
            EventOverlay(url_rate_mult=0.0)

    def test_load_pack_file(self, tmp_path):
        path = tmp_path / "pack.json"
        pack = ScenarioPack.named("spam-wave")
        path.write_text(json.dumps(pack.to_dict()))
        assert load_pack_file(path) == pack

        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_pack_file(path)

        bogus = pack.to_dict()
        bogus["weather"] = "wet"
        path.write_text(json.dumps(bogus))
        with pytest.raises(ConfigError, match="unknown"):
            load_pack_file(path)

    def test_config_resolves_pack_names(self):
        config = _config(scenario="invite-storm")
        assert isinstance(config.scenario, ScenarioPack)
        assert config.scenario_name == "invite-storm"
        assert _config().scenario_name == DEFAULT_PACK_NAME


# -- engine ------------------------------------------------------------------


class TestEngine:
    def test_identity_engine_has_no_phases(self):
        engine = ScenarioEngine(None)
        assert engine.is_identity
        assert engine.phase_for(3) is None
        assert engine.name == DEFAULT_PACK_NAME

    def test_draw_consumes_exactly_one_uniform(self):
        from repro.rng import derive_rng

        engine = ScenarioEngine(ScenarioPack.named("invite-storm"))
        index, phase = engine.phase_for(3)
        a, b = derive_rng(5, "draw"), derive_rng(5, "draw")
        engine.draw_persona(index, phase, a)
        b.random()
        # Both streams advanced by one draw: next values agree.
        assert a.random() == b.random()

    def test_draws_follow_the_mix(self):
        from repro.rng import derive_rng

        engine = ScenarioEngine(ScenarioPack.named("mass-revocation"))
        index, phase = engine.phase_for(4)
        rng = derive_rng(9, "mix")
        drawn = {
            engine.draw_persona(index, phase, rng) for _ in range(300)
        }
        assert drawn == {"admin", "baseline"}


# -- byte-identity of the default pack ---------------------------------------


class TestPaperWeatherByteIdentity:
    @pytest.mark.parametrize("faults", [None, "hostile"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_identical_to_scenario_free_pipeline(
        self, golden, tmp_path, faults, workers
    ):
        """Naming the default pack must change *nothing*: exports are
        byte-identical to a config with no scenario at all, at any
        worker count, under fault injection too."""
        out = tmp_path / "export"
        _run_and_export(
            _config(scenario=DEFAULT_PACK_NAME, faults=faults),
            out,
            workers=workers,
        )
        assert _export_tree(out) == _export_tree(golden(faults))

    def test_kill_and_resume_stays_identical(self, golden, tmp_path):
        class _Boom(Exception):
            pass

        store_dir = tmp_path / "store"
        study = Study(_config(scenario=DEFAULT_PACK_NAME))

        def hook(day, stage):
            if day == 4 and stage == "monitor":
                raise _Boom()

        study.stage_hook = hook
        with pytest.raises(_Boom):
            study.run(checkpoint_dir=store_dir, workers=4)

        resumed = Study.resume(store_dir)
        dataset = resumed.run(workers=4)
        out = tmp_path / "export"
        export_all_csv(dataset, out)
        assert _export_tree(out) == _export_tree(golden(None))


# -- determinism of the non-identity packs -----------------------------------


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", _EXTRA_PACKS)
    def test_every_pack_replays_exactly(self, tmp_path, name):
        first = Study(_config(scenario=name)).run()
        second = Study(_config(scenario=name)).run()
        assert first.scenario == name == second.scenario
        assert first.personas, f"{name} assigned no personas"
        assert first.personas == second.personas
        out1, out2 = tmp_path / "a", tmp_path / "b"
        for dataset, out in ((first, out1), (second, out2)):
            out.mkdir()
            export_all_csv(dataset, out)
        assert _export_tree(out1) == _export_tree(out2)

    def test_scenario_actually_changes_the_weather(self, golden, tmp_path):
        out = tmp_path / "export"
        dataset = _run_and_export(_config(scenario="invite-storm"), out)
        assert _export_tree(out) != _export_tree(golden(None))
        # At least three personas took part in a storm campaign.
        assert len(set(dataset.personas.values())) >= 3

    def test_worker_count_is_invisible_under_a_scenario(self, tmp_path):
        seq, par = tmp_path / "seq", tmp_path / "par"
        first = _run_and_export(_config(scenario="invite-storm"), seq)
        second = _run_and_export(
            _config(scenario="invite-storm"), par, workers=4
        )
        assert _export_tree(seq) == _export_tree(par)
        assert first.personas == second.personas

    def test_faults_and_scenario_compose_deterministically(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        _run_and_export(_config(scenario="spam-wave", faults="hostile"), a)
        _run_and_export(_config(scenario="spam-wave", faults="hostile"), b)
        assert _export_tree(a) == _export_tree(b)


# -- fork-time scenario swap -------------------------------------------------


class TestForkSwap:
    def test_fork_swaps_the_scenario_with_deterministic_replay(
        self, tmp_path
    ):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)

        forks = []
        for branch in ("a", "b"):
            fork_dir = tmp_path / f"fork-{branch}"
            fork = Study.fork(
                store_dir, 3, scenario="mass-revocation",
                fork_dir=fork_dir,
            )
            assert fork.config.scenario_name == "mass-revocation"
            dataset = fork.run()
            out = tmp_path / f"export-{branch}"
            out.mkdir()
            export_all_csv(dataset, out)
            forks.append((fork_dir, out, dataset))

        (_, out_a, data_a), (_, out_b, data_b) = forks
        assert _export_tree(out_a) == _export_tree(out_b)
        assert data_a.personas == data_b.personas
        # The swap only touches the forked future: groups born on the
        # shared days 0..3 carry no persona tag.
        assert data_a.personas
        assert data_a.scenario == "mass-revocation"

        # The fork store records its own scenario identity...
        manifest = RunStore.open(forks[0][0]).manifest
        assert manifest["scenario"]["name"] == "mass-revocation"
        assert "admin" in manifest["scenario"]["personas"]
        # ...and the parent store still records the default.
        parent = RunStore.open(store_dir).manifest
        assert parent["scenario"]["name"] == DEFAULT_PACK_NAME

        # A resumed fork replays to the same bytes.
        resumed = Study.resume(forks[0][0]).run()
        out = tmp_path / "export-resumed"
        out.mkdir()
        export_all_csv(resumed, out)
        assert _export_tree(out) == _export_tree(out_a)

    def test_fork_keeps_the_scenario_by_default(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config(scenario="spam-wave")).run(
            checkpoint_dir=store_dir
        )
        fork = Study.fork(
            store_dir, 3, fork_dir=tmp_path / "fork",
        )
        assert fork.config.scenario_name == "spam-wave"
        # And swapping back to the default strips the pack entirely.
        fork2 = Study.fork(
            store_dir, 3, scenario=DEFAULT_PACK_NAME,
            fork_dir=tmp_path / "fork2",
        )
        assert fork2.config.scenario_name == DEFAULT_PACK_NAME


# -- manifest and reporting --------------------------------------------------


class TestManifestAndReporting:
    def test_manifest_carries_the_scenario_block(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config(scenario="invite-storm")).run(
            checkpoint_dir=store_dir
        )
        manifest = RunStore.open(store_dir).manifest
        block = manifest["scenario"]
        assert block["name"] == "invite-storm"
        assert pytest.approx(sum(block["personas"].values())) == 1.0
        # The full pack definition rides in the config summary (and
        # therefore the config digest).
        assert manifest["config"]["scenario"]["name"] == "invite-storm"

    def test_scenario_report_renders(self):
        from repro.reporting import render_scenario_report

        dataset = Study(_config(scenario="invite-storm")).run()
        report = render_scenario_report(dataset)
        assert "invite-storm" in report
        assert "spammer" in report and "poster" in report
        assert "paper baseline" in report

    def test_health_header_names_non_default_scenarios_only(self):
        from repro.reporting import render_health

        scenario = Study(_config(scenario="spam-wave")).run()
        assert render_health(scenario).startswith(
            "scenario: spam-wave"
        )
        baseline = Study(_config()).run()
        assert "scenario:" not in render_health(baseline)


# -- serve-load registry consistency -----------------------------------------


class TestServeLoadPersonas:
    def test_load_personas_come_from_the_registry(self):
        assert set(serve_load.PERSONAS) == (
            set(persona_names()) - {"baseline"}
        )
