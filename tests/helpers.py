"""Test helpers: hand-built platform services and group plans."""

from __future__ import annotations

from typing import Optional

from repro.platforms.base import GroupKind, GroupPlan, PlatformUserModel
from repro.platforms.discord import DiscordService
from repro.platforms.telegram import TelegramService
from repro.platforms.whatsapp import WhatsAppService

__all__ = [
    "make_plan",
    "make_whatsapp",
    "make_telegram",
    "make_discord",
    "SIMPLE_USER_MODEL",
]

SIMPLE_USER_MODEL = PlatformUserModel(
    population=10_000,
    countries=("BR", "US", "IN"),
    country_probs=(0.5, 0.3, 0.2),
    has_phone=True,
    phone_visible_prob=1.0,
)

NO_PHONE_MODEL = PlatformUserModel(
    population=10_000,
    countries=("US", "JP"),
    country_probs=(0.6, 0.4),
    has_phone=False,
    linked_account_prob=0.5,
    linked_platform_weights=(("twitch", 2.0), ("steam", 1.0)),
)


def make_plan(
    gid: str = "G0000001",
    kind: GroupKind = GroupKind.GROUP,
    creator_id: str = "whu42",
    created_t: float = -10.0,
    anchor_t: float = 1.5,
    size0: int = 50,
    slope: float = 1.0,
    revoke_t: Optional[float] = None,
    msg_rate: float = 12.0,
    online_frac: float = 0.2,
    active_frac: float = 0.5,
    sender_zipf: float = 1.1,
    member_cap: int = 257,
    topic_label: str = "Cryptocurrencies",
    lang: str = "en",
) -> GroupPlan:
    """A GroupPlan with sensible defaults, overridable per test."""
    return GroupPlan(
        gid=gid,
        kind=kind,
        title=f"{topic_label} {gid}",
        topic_label=topic_label,
        lang=lang,
        creator_id=creator_id,
        created_t=created_t,
        anchor_t=anchor_t,
        size0=size0,
        slope=slope,
        revoke_t=revoke_t,
        msg_rate=msg_rate,
        online_frac=online_frac,
        active_frac=active_frac,
        sender_zipf=sender_zipf,
        member_cap=member_cap,
    )


def make_whatsapp(seed: int = 5) -> WhatsAppService:
    """A WhatsApp service with the simple user model."""
    return WhatsAppService(seed, SIMPLE_USER_MODEL)


def make_telegram(seed: int = 5, phone_visible_prob: float = 0.5) -> TelegramService:
    """A Telegram service with adjustable phone-visibility opt-in."""
    model = PlatformUserModel(
        population=10_000,
        countries=("RU", "TR", "IR"),
        country_probs=(0.4, 0.3, 0.3),
        has_phone=True,
        phone_visible_prob=phone_visible_prob,
    )
    return TelegramService(seed, model)


def make_discord(seed: int = 5) -> DiscordService:
    """A Discord service with linked accounts enabled."""
    return DiscordService(seed, NO_PHONE_MODEL)


def stubborn_worker(conn) -> None:
    """A probe-worker stand-in that ignores SIGTERM and never replies.

    Spawn-safe (module-level, import-light) target for the engine
    close()/stop_worker() escalation tests: the only way to stop it is
    SIGKILL, so a close that stalls on the SIGTERM rung would hang
    forever without the final escalation.
    """
    import signal
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    conn.send(("ready",))
    while True:
        time.sleep(0.05)
