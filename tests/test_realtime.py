"""Tests for the real-time collector extension."""

import pytest

from repro.extensions.realtime import RealTimeCollector, compare_with_daily


@pytest.fixture(scope="module")
def rt_setup(small_study):
    study, dataset = small_study
    collector = RealTimeCollector(study.world)
    collector.run(dataset.n_days)
    return collector, dataset


class TestRealTimeCollector:
    def test_polls_per_day_validation(self, small_study):
        study, _ = small_study
        with pytest.raises(ValueError):
            RealTimeCollector(study.world, polls_per_day=0)

    def test_discovers_roughly_the_same_catalogue(self, rt_setup):
        collector, dataset = rt_setup
        rt_keys = set(collector.observations)
        batch_keys = set(dataset.records)
        overlap = len(rt_keys & batch_keys)
        assert overlap / len(batch_keys) > 0.95

    def test_observation_lag_bounded_by_poll_interval(self, rt_setup):
        collector, _ = rt_setup
        for obs in collector.observations.values():
            assert 0.0 <= obs.observed_t - obs.discovered_t <= 1.0 / 24 + 1e-9

    def test_alive_observations_carry_metadata(self, rt_setup):
        collector, _ = rt_setup
        alive = [o for o in collector.observations.values() if o.alive]
        assert alive
        for obs in alive[:50]:
            assert obs.size is not None and obs.size >= 1
            assert obs.title

    def test_success_rate_unknown_platform(self, rt_setup):
        collector, _ = rt_setup
        with pytest.raises(ValueError):
            collector.success_rate("myspace")


class TestRealtimeVsDaily:
    def test_realtime_beats_daily_on_discord(self, rt_setup):
        # The headline: daily monitoring loses two-thirds of Discord
        # invites before the first check; hourly capture keeps most.
        collector, dataset = rt_setup
        comparison = compare_with_daily(collector, dataset)
        discord = comparison["discord"]
        assert discord["realtime"] > discord["daily"] + 0.3
        assert discord["realtime"] > 0.75

    def test_gain_small_on_whatsapp(self, rt_setup):
        # WhatsApp URLs rarely die within a day; real-time capture
        # barely helps there.
        collector, dataset = rt_setup
        comparison = compare_with_daily(collector, dataset)
        whatsapp = comparison["whatsapp"]
        assert abs(whatsapp["realtime"] - whatsapp["daily"]) < 0.1

    def test_rates_are_probabilities(self, rt_setup):
        collector, dataset = rt_setup
        for rates in compare_with_daily(collector, dataset).values():
            assert 0.0 <= rates["daily"] <= 1.0
            assert 0.0 <= rates["realtime"] <= 1.0
