"""Tests for the campaign run store: checkpoint, resume, and fork.

The headline invariant — the golden-digest test the subsystem is
built around — is that killing a campaign at *any* day boundary and
resuming it exports a dataset byte-identical to the uninterrupted
run, under both a fault-free and a hostile fault schedule.
"""

import hashlib

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    MANIFEST_NAME,
    RunStore,
    config_digest,
)
from repro.core.study import Study, StudyConfig
from repro.errors import CheckpointError
from repro.io import save_dataset

pytestmark = pytest.mark.checkpoint

#: Small but complete campaign: discovery, monitoring, a join day,
#: and enough days after the join to exercise post-join boundaries.
N_DAYS = 6


def _config(faults=None, **overrides):
    base = dict(
        seed=7,
        n_days=N_DAYS,
        scale=0.004,
        message_scale=0.05,
        join_day=3,
        faults=faults,
    )
    base.update(overrides)
    return StudyConfig(**base)


def _export_digest(dataset, tmp_path, name):
    """SHA-256 of the dataset's exact on-disk export."""
    path = tmp_path / f"{name}.json"
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestGoldenDigestKillAndResume:
    """Resume at every boundary == uninterrupted run, byte for byte."""

    @pytest.mark.parametrize("profile", [None, "hostile"])
    def test_resume_every_boundary_byte_identical(
        self, profile, tmp_path
    ):
        golden = _export_digest(
            Study(_config(faults=profile)).run(), tmp_path, "golden"
        )
        store_dir = tmp_path / "store"
        checkpointed = _export_digest(
            Study(_config(faults=profile)).run(checkpoint_dir=store_dir),
            tmp_path,
            "checkpointed",
        )
        assert checkpointed == golden, (
            "checkpointing must not perturb the campaign"
        )
        for day in range(N_DAYS):
            resumed = Study.resume(store_dir, from_day=day)
            digest = _export_digest(
                resumed.run(), tmp_path, f"resumed-{day}"
            )
            assert digest == golden, (
                f"resume from day {day} diverged from the "
                f"uninterrupted run (profile={profile})"
            )

    def test_fork_unchanged_reproduces_tail(self, tmp_path):
        store_dir = tmp_path / "store"
        golden = _export_digest(
            Study(_config(faults="hostile")).run(checkpoint_dir=store_dir),
            tmp_path,
            "golden",
        )
        fork = Study.fork(store_dir, 2)
        assert _export_digest(fork.run(), tmp_path, "fork") == golden


class TestResume:
    def test_resume_latest_by_default(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        study = Study.resume(store_dir)
        assert study._next_day == N_DAYS

    def test_resume_missing_store(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            Study.resume(tmp_path / "nowhere")

    def test_resume_day_outside_range(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        with pytest.raises(CheckpointError, match="not checkpointed"):
            Study.resume(store_dir, from_day=99)

    def test_resume_continues_checkpointing(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        store = RunStore.open(store_dir)
        assert store.days() == list(range(N_DAYS))
        Study.resume(store_dir, from_day=2).run()
        assert RunStore.open(store_dir).days() == list(range(N_DAYS))

    def test_restored_position_and_config(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config(faults="hostile")).run(checkpoint_dir=store_dir)
        study = Study.resume(store_dir, from_day=4)
        assert study._next_day == 5
        assert study.config == _config(faults="hostile")


class TestFork:
    def test_fork_new_seed_diverges_deterministically(self, tmp_path):
        store_dir = tmp_path / "store"
        golden = _export_digest(
            Study(_config()).run(checkpoint_dir=store_dir), tmp_path, "g"
        )
        first = _export_digest(
            Study.fork(store_dir, 2, seed=99).run(), tmp_path, "s1"
        )
        second = _export_digest(
            Study.fork(store_dir, 2, seed=99).run(), tmp_path, "s2"
        )
        assert first == second
        assert first != golden

    def test_fork_into_hostile_weather(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        first = Study.fork(store_dir, 2, fault_plan="hostile").run()
        second = Study.fork(store_dir, 2, fault_plan="hostile").run()
        assert first.health is not None and not first.health.is_clean()
        assert (
            first.health.to_dict() == second.health.to_dict()
        ), "replanned fork must replay deterministically"

    def test_fork_strips_faults(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config(faults="hostile")).run(checkpoint_dir=store_dir)
        fork = Study.fork(store_dir, 1, fault_plan=None)
        assert fork.injector is None
        dataset = fork.run()
        # Pre-fork hostile days left their mark in the shared ledger;
        # the fork's own future must not add injected faults.
        assert dataset.health is not None

    def test_fork_store_is_self_contained(self, tmp_path):
        parent = tmp_path / "parent"
        child = tmp_path / "child"
        Study(_config()).run(checkpoint_dir=parent)
        golden = _export_digest(
            Study.fork(parent, 2, fault_plan="hostile", fork_dir=child).run(),
            tmp_path,
            "fork",
        )
        store = RunStore.open(child)
        assert store.days() == list(range(2, N_DAYS))
        assert store.manifest["forked_from"]["day"] == 2
        resumed = _export_digest(
            Study.resume(child, from_day=2).run(), tmp_path, "fork-resumed"
        )
        assert resumed == golden


class TestAnchorCadence:
    """Anchor snapshots on cadence, replay markers in between."""

    def _kinds(self, store_dir):
        manifest = RunStore.open(store_dir).manifest
        return {
            int(day): entry["kind"]
            for day, entry in manifest["days"].items()
        }

    def test_default_cadence_interleaves_markers(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        # DEFAULT_ANCHOR_EVERY == 5: anchors at days 0 and 5, the
        # four days in between defer to day 0.
        assert self._kinds(store_dir) == {
            0: "anchor",
            1: "replay",
            2: "replay",
            3: "replay",
            4: "replay",
            5: "anchor",
        }

    def test_cadence_never_affects_output(self, tmp_path):
        marker_digest = _export_digest(
            Study(_config()).run(checkpoint_dir=tmp_path / "a"),
            tmp_path,
            "markers",
        )
        dense_digest = _export_digest(
            Study(_config()).run(
                checkpoint_dir=tmp_path / "b", anchor_every=1
            ),
            tmp_path,
            "dense",
        )
        assert marker_digest == dense_digest
        assert all(
            kind == "anchor"
            for kind in self._kinds(tmp_path / "b").values()
        )

    def test_resume_from_marker_replays_to_position(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        study = Study.resume(store_dir, from_day=3)
        assert study._next_day == 4

    def test_marker_with_missing_anchor_fails(self, tmp_path):
        store_dir = tmp_path / "store"
        Study(_config()).run(checkpoint_dir=store_dir)
        store = RunStore.open(store_dir)
        anchor_digest = store.manifest["days"]["0"]["digest"]
        (store_dir / "objects" / f"{anchor_digest}.bin.gz").unlink()
        with pytest.raises(
            CheckpointError, match="missing checkpoint day record"
        ):
            Study.resume(store_dir, from_day=2)

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="anchor cadence"):
            RunStore.create(tmp_path, _config(), anchor_every=0)


class TestRunStore:
    def test_create_rejects_different_config(self, tmp_path):
        RunStore.create(tmp_path, _config())
        with pytest.raises(CheckpointError, match="different configuration"):
            RunStore.create(tmp_path, _config(seed=8))

    def test_create_same_config_restarts(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        store.write_day(0, b"payload")
        assert RunStore.create(tmp_path, _config()).days() == []

    def test_config_digest_covers_fault_plan(self):
        assert config_digest(_config()) != config_digest(
            _config(faults="hostile")
        )
        assert config_digest(_config(faults="hostile")) == config_digest(
            _config(faults="hostile")
        )

    def test_day_record_roundtrip(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        digest = store.write_day(0, b"some campaign state")
        assert store.read_day(0) == b"some campaign state"
        assert store.manifest["days"]["0"]["digest"] == digest
        assert (tmp_path / "objects" / f"{digest}.bin.gz").exists()

    def test_identical_payload_identical_object_bytes(self, tmp_path):
        a = RunStore.create(tmp_path / "a", _config())
        b = RunStore.create(tmp_path / "b", _config())
        digest = a.write_day(0, b"xyz")
        assert b.write_day(0, b"xyz") == digest
        path_a = tmp_path / "a" / "objects" / f"{digest}.bin.gz"
        path_b = tmp_path / "b" / "objects" / f"{digest}.bin.gz"
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_empty_store_has_no_latest_day(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        with pytest.raises(CheckpointError, match="no day records"):
            store.latest_day()

    def test_manifest_records_campaign_identity(self, tmp_path):
        config = _config(faults="hostile")
        store = RunStore.create(tmp_path, config)
        manifest = RunStore.open(tmp_path).manifest
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["root_seed"] == config.seed
        assert manifest["fault_profile"] == "hostile"
        assert manifest["config_digest"] == config_digest(config)
        assert (tmp_path / MANIFEST_NAME).exists()


class TestConcurrentReaderHardening:
    """Error paths a concurrent reader (the serve daemon) leans on:
    missing or in-flight days answer cleanly — CheckpointError or
    False — never KeyError/FileNotFoundError out of the store."""

    def test_read_day_missing_is_checkpoint_error(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        store.write_day(0, b"payload")
        with pytest.raises(CheckpointError, match="day 3 is not checkpointed"):
            store.read_day(3)
        with pytest.raises(CheckpointError, match="no days"):
            RunStore.create(tmp_path / "empty", _config()).read_day(0)

    def test_has_day_is_always_boolean(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        assert store.has_day(0) is False
        store.write_day(0, b"payload")
        assert store.has_day(0) is True
        assert store.has_day(99) is False
        # A manifest with no day table reads as "no days", not KeyError.
        del store.manifest["days"]
        assert store.has_day(0) is False
        assert store.days() == []
        with pytest.raises(CheckpointError):
            store.day_entry(0)

    def test_malformed_day_entry_is_checkpoint_error(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        store.manifest["days"]["0"] = {"bytes": 3}  # no digest
        with pytest.raises(CheckpointError, match="no object digest"):
            store.read_day(0)
        store.manifest["days"] = {"zero": {"digest": "d"}}
        with pytest.raises(CheckpointError, match="non-numeric day key"):
            store.days()

    def test_missing_object_is_checkpoint_error(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        digest = store.write_day(0, b"payload")
        (tmp_path / "objects" / f"{digest}.bin.gz").unlink()
        with pytest.raises(CheckpointError, match="missing checkpoint"):
            store.read_day(0)

    def test_read_object_resolves_digests_without_manifest(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        digest = store.write_day(0, b"payload")
        # The published-day protocol reads by digest: the manifest's
        # day table can change (or vanish) underneath without effect.
        store.manifest["days"] = {}
        assert store.read_object(digest) == b"payload"


class TestDecompressReadCache:
    """The digest-keyed payload cache behind the serve daemon's reads:
    off by default, byte-identical on hits, bounded with LRU eviction."""

    def test_disabled_by_default(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        assert store.read_cache_stats() == {
            "enabled": 0, "entries": 0, "max_entries": 0,
        }
        store.write_day(0, b"payload")
        store.read_day(0)
        assert store.read_cache_stats()["entries"] == 0

    def test_hits_skip_the_filesystem_and_are_byte_identical(
        self, tmp_path
    ):
        store = RunStore.create(tmp_path, _config())
        store.enable_read_cache(4)
        digest = store.write_day(0, b"payload-bytes")
        first = store.read_day(0)
        # Remove the object: a cached read cannot touch the file.
        (tmp_path / "objects" / f"{digest}.bin.gz").unlink()
        second = store.read_day(0)
        assert first == second == b"payload-bytes"
        assert store.read_cache_stats() == {
            "enabled": 1, "entries": 1, "max_entries": 4,
        }

    def test_lru_eviction_is_bounded(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        store.enable_read_cache(2)
        for day in range(3):
            store.write_day(day, f"payload-{day}".encode())
            store.read_day(day)
        stats = store.read_cache_stats()
        assert stats["entries"] == 2
        # Day 0 was evicted; its next read goes back to disk.
        assert store.read_day(0) == b"payload-0"

    def test_telemetry_counts_hits_misses_evictions(self, tmp_path):
        from repro.telemetry import Telemetry

        store = RunStore.create(tmp_path, _config())
        store.telemetry = Telemetry(enabled=True)
        store.enable_read_cache(1)
        store.write_day(0, b"a")
        store.write_day(1, b"b")
        store.read_day(0)   # miss
        store.read_day(0)   # hit
        store.read_day(1)   # miss, evicts day 0's payload
        metrics = store.telemetry.metrics
        assert metrics.counter_total("checkpoint_read_cache_hits_total") == 1
        assert metrics.counter_total("checkpoint_read_cache_misses_total") == 2
        assert metrics.counter_total("checkpoint_read_cache_evictions_total") == 1

    def test_enable_rejects_empty_capacity(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        with pytest.raises(CheckpointError):
            store.enable_read_cache(0)

    def test_disable_returns_to_uncached_reads(self, tmp_path):
        store = RunStore.create(tmp_path, _config())
        store.enable_read_cache(4)
        store.write_day(0, b"payload")
        store.read_day(0)
        store.disable_read_cache()
        assert store.read_cache_stats()["enabled"] == 0
        assert store.read_day(0) == b"payload"
