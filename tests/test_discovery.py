"""Tests for the Search+Stream discovery engine."""

import pytest

from repro.core.discovery import DiscoveryEngine
from repro.twitter import SearchAPI, StreamingAPI, Tweet, TwitterService

WA_URL = "https://chat.whatsapp.com/AbCdEfGh1234"
TG_URL = "https://t.me/joinchat/XyZw9876"


def tweet(tweet_id, t, urls=(), author=1):
    return Tweet(
        tweet_id=tweet_id, author_id=author, t=t, text="x", lang="en",
        urls=tuple(urls),
    )


def make_engine(service, search_recall=1.0, stream_recall=1.0,
                use_search=True, use_stream=True):
    search = SearchAPI(service, recall=search_recall) if use_search else None
    stream = StreamingAPI(service, recall=stream_recall) if use_stream else None
    return DiscoveryEngine(search, stream)


class TestConstruction:
    def test_requires_at_least_one_api(self):
        with pytest.raises(ValueError):
            DiscoveryEngine(None, None)


class TestCollection:
    def test_discovers_urls(self):
        service = TwitterService()
        service.post(tweet(1, 0.3, [WA_URL]))
        service.post(tweet(2, 0.6, [TG_URL]))
        engine = make_engine(service)
        engine.run_day(0)
        assert len(engine.records) == 2
        platforms = {r.platform for r in engine.records.values()}
        assert platforms == {"whatsapp", "telegram"}

    def test_dedup_across_search_and_stream(self):
        service = TwitterService()
        service.post(tweet(1, 0.3, [WA_URL]))
        engine = make_engine(service)
        engine.run_day(0)
        record = next(iter(engine.records.values()))
        assert record.n_shares == 1  # one tweet, despite two sources
        assert record.via_search == 1
        assert record.via_stream == 1

    def test_first_seen_is_earliest_share(self):
        service = TwitterService()
        service.post(tweet(1, 0.7, [WA_URL]))
        service.post(tweet(2, 0.2, [WA_URL]))
        engine = make_engine(service)
        engine.run_day(0)
        record = next(iter(engine.records.values()))
        assert record.first_seen_t == pytest.approx(0.2)
        assert record.n_shares == 2

    def test_merge_recovers_single_api_misses(self):
        service = TwitterService()
        service.post_many(
            [tweet(i, 0.001 * i, [WA_URL]) for i in range(1000)]
        )
        engine = make_engine(service, search_recall=0.9, stream_recall=0.9)
        engine.run_day(0)
        record = next(iter(engine.records.values()))
        # Merged coverage should exceed either single API's expected 90 %.
        assert record.n_shares > 950

    def test_search_only_engine_works(self):
        service = TwitterService()
        service.post(tweet(1, 0.5, [WA_URL]))
        engine = make_engine(service, use_stream=False)
        engine.run_day(0)
        assert len(engine.records) == 1
        assert next(iter(engine.records.values())).via_stream == 0

    def test_stream_only_engine_works(self):
        service = TwitterService()
        service.post(tweet(1, 0.5, [WA_URL]))
        engine = make_engine(service, use_search=False)
        engine.run_day(0)
        assert len(engine.records) == 1

    def test_multi_day_accumulation(self):
        service = TwitterService()
        service.post(tweet(1, 0.5, [WA_URL]))
        service.post(tweet(2, 1.5, [WA_URL]))
        service.post(tweet(3, 1.7, [TG_URL]))
        engine = make_engine(service)
        engine.run_day(0)
        assert len(engine.records) == 1
        engine.run_day(1)
        assert len(engine.records) == 2
        wa = engine.records["whatsapp:AbCdEfGh1234"]
        assert wa.n_shares == 2
        assert wa.share_days == [0, 1]

    def test_non_matching_tweets_ignored(self):
        service = TwitterService()
        service.post(tweet(1, 0.5, ["https://example.com/x"]))
        engine = make_engine(service)
        engine.run_day(0)
        assert not engine.records
        assert not engine.tweets


class TestSummaries:
    def _engine(self):
        service = TwitterService()
        service.post(tweet(1, 0.2, [WA_URL], author=10))
        service.post(tweet(2, 0.4, [WA_URL], author=11))
        service.post(tweet(3, 0.6, [TG_URL], author=10))
        engine = make_engine(service)
        engine.run_day(0)
        return engine

    def test_n_tweets_total_and_per_platform(self):
        engine = self._engine()
        assert engine.n_tweets() == 3
        assert engine.n_tweets("whatsapp") == 2
        assert engine.n_tweets("telegram") == 1

    def test_n_authors(self):
        engine = self._engine()
        assert engine.n_authors() == 2
        assert engine.n_authors("whatsapp") == 2
        assert engine.n_authors("telegram") == 1

    def test_records_for(self):
        engine = self._engine()
        assert len(engine.records_for("whatsapp")) == 1
        assert not engine.records_for("discord")
