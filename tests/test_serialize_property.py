"""Property-based round-trip tests for dataset serialization.

Hypothesis builds small synthetic datasets (independent of the world
generator) and asserts save→load is the identity on every field.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import (
    JoinedGroupData,
    Snapshot,
    StudyDataset,
    UserObservation,
)
from repro.core.discovery import URLRecord
from repro.io import load_dataset, save_dataset
from repro.platforms.base import GroupKind, MessageType
from repro.privacy.hashing import HashedPhone
from repro.privacy.pii import LinkedAccount
from repro.twitter.model import Tweet

_ids = st.integers(min_value=1, max_value=10**9)
_times = st.floats(min_value=-400.0, max_value=40.0, allow_nan=False)
_small_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF),
    max_size=40,
)


@st.composite
def tweets(draw):
    return Tweet(
        tweet_id=draw(_ids),
        author_id=draw(_ids),
        t=draw(_times),
        text=draw(_small_text),
        lang=draw(st.sampled_from(["en", "es", "ja", "und"])),
        hashtags=tuple(draw(st.lists(st.text(max_size=8), max_size=3))),
        mentions=tuple(draw(st.lists(st.text(max_size=8), max_size=3))),
        urls=tuple(draw(st.lists(_small_text, max_size=2))),
        retweet_of=draw(st.none() | _ids),
    )


@st.composite
def records(draw):
    platform = draw(st.sampled_from(["whatsapp", "telegram", "discord"]))
    code = draw(st.text(alphabet="abcXYZ019", min_size=4, max_size=12))
    shares = draw(
        st.lists(st.tuples(_ids, _times), min_size=1, max_size=5)
    )
    return URLRecord(
        canonical=f"{platform}:{code}",
        platform=platform,
        code=code,
        url=f"https://example.invalid/{code}",
        first_seen_t=min(t for _, t in shares),
        shares=shares,
        via_search=draw(st.integers(0, 5)),
        via_stream=draw(st.integers(0, 5)),
    )


@st.composite
def hashed_phones(draw):
    return HashedPhone(
        country=draw(st.sampled_from(["BR", "US", ""])),
        dialing_code=draw(st.sampled_from(["55", "1", ""])),
        digest=draw(st.text(alphabet="0123456789abcdef", min_size=64,
                            max_size=64)),
    )


@st.composite
def snapshots(draw, canonical):
    alive = draw(st.booleans())
    return Snapshot(
        canonical=canonical,
        day=draw(st.integers(0, 37)),
        t=draw(_times),
        alive=alive,
        size=draw(st.none() | st.integers(1, 10**6)),
        online=draw(st.none() | st.integers(0, 10**5)),
        title=draw(_small_text),
        kind=draw(st.none() | st.sampled_from(list(GroupKind))),
        creator_dialing_code=draw(st.sampled_from(["", "55", "91"])),
        creator_phone_hash=draw(st.none() | hashed_phones()),
        creator_id=draw(st.sampled_from(["", "diu4"])),
        created_t=draw(st.none() | _times),
    )


@st.composite
def joined_groups(draw):
    platform = draw(st.sampled_from(["whatsapp", "telegram", "discord"]))
    type_counts = draw(
        st.dictionaries(
            st.sampled_from(list(MessageType)), st.integers(1, 100),
            max_size=4,
        )
    )
    return JoinedGroupData(
        platform=platform,
        canonical=f"{platform}:xyz",
        gid=draw(st.text(alphabet="ABC012", min_size=3, max_size=10)),
        join_t=draw(_times),
        kind=draw(st.none() | st.sampled_from(list(GroupKind))),
        created_t=draw(st.none() | _times),
        size_at_join=draw(st.none() | st.integers(1, 10**5)),
        n_messages=sum(type_counts.values()),
        type_counts=type_counts,
        daily_counts=draw(
            st.dictionaries(st.integers(-30, 37), st.integers(1, 50),
                            max_size=5)
        ),
        sender_counts=draw(
            st.dictionaries(st.text(max_size=10), st.integers(1, 50),
                            max_size=5)
        ),
        member_ids=draw(st.lists(st.text(max_size=10), max_size=5)),
        member_list_hidden=draw(st.booleans()),
        creator_id=draw(st.sampled_from(["", "teu9"])),
    )


@st.composite
def users(draw):
    platform = draw(st.sampled_from(["whatsapp", "telegram", "discord"]))
    return UserObservation(
        platform=platform,
        user_id=draw(st.text(min_size=1, max_size=12)),
        phone_hash=draw(st.none() | hashed_phones()),
        country=draw(st.sampled_from(["", "BR", "JP"])),
        linked_accounts=tuple(
            LinkedAccount(platform=name, handle=f"{name}_h")
            for name in draw(
                st.lists(st.sampled_from(["twitch", "steam"]), max_size=2,
                         unique=True)
            )
        ),
        via=draw(st.sampled_from(["poster", "member_list"])),
    )


@st.composite
def datasets(draw):
    dataset = StudyDataset(
        n_days=draw(st.integers(1, 38)),
        scale=draw(st.floats(min_value=0.001, max_value=1.0)),
        message_scale=draw(st.floats(min_value=0.001, max_value=1.0)),
    )
    for record in draw(st.lists(records(), max_size=3)):
        dataset.records[record.canonical] = record
        dataset.snapshots[record.canonical] = draw(
            st.lists(snapshots(record.canonical), max_size=3)
        )
    for tweet in draw(st.lists(tweets(), max_size=5, unique_by=lambda t: t.tweet_id)):
        dataset.tweets[tweet.tweet_id] = tweet
    dataset.control_tweets = draw(st.lists(tweets(), max_size=3))
    dataset.joined = draw(st.lists(joined_groups(), max_size=3))
    for user in draw(
        st.lists(users(), max_size=3,
                 unique_by=lambda u: (u.platform, u.user_id))
    ):
        dataset.users[(user.platform, user.user_id)] = user
    return dataset


@given(datasets())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_save_load_identity(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("prop") / "ds.json"
    save_dataset(dataset, path)
    loaded = load_dataset(path)

    assert loaded.n_days == dataset.n_days
    assert loaded.scale == dataset.scale
    assert loaded.message_scale == dataset.message_scale
    assert loaded.tweets == dataset.tweets
    assert loaded.control_tweets == dataset.control_tweets
    assert loaded.snapshots == dataset.snapshots
    assert loaded.users == dataset.users
    assert set(loaded.records) == set(dataset.records)
    for canonical, record in dataset.records.items():
        other = loaded.records[canonical]
        assert (other.platform, other.code, other.url) == (
            record.platform, record.code, record.url
        )
        assert other.shares == record.shares
    assert len(loaded.joined) == len(dataset.joined)
    for original, other in zip(dataset.joined, loaded.joined):
        assert other.type_counts == original.type_counts
        assert other.daily_counts == original.daily_counts
        assert other.sender_counts == original.sender_counts
        assert other.member_ids == original.member_ids
