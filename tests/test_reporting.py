"""Tests for the table/figure renderers."""

import pytest

from repro.reporting import (
    format_table,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
)
from repro.reporting import paper_values as paper


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", "y"], ["z", "wwww"]])
        pipe_lines = [l for l in text.splitlines() if "|" in l]
        assert len(pipe_lines) == 3  # header + 2 rows
        assert len({line.index("|") for line in pipe_lines}) == 1

    def test_title_prepended(self):
        text = format_table(["h"], [["v"]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_non_string_cells(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestTable1:
    def test_static_render(self):
        text = render_table1()
        assert "WhatsApp" in text and "Telegram" in text and "Discord" in text
        assert "257" in text        # WhatsApp member cap
        assert "Email" in text      # Discord registration
        assert "secret" in text     # Telegram e2e caveat


class TestDatasetRenders:
    @pytest.mark.parametrize(
        "renderer",
        [
            render_table2, render_table4,
            render_fig1, render_fig2, render_fig3, render_fig4,
            render_fig5, render_fig6, render_fig7, render_fig8, render_fig9,
        ],
    )
    def test_renders_all_platforms(self, small_dataset, renderer):
        text = renderer(small_dataset)
        for platform in ("whatsapp", "telegram", "discord"):
            assert platform in text

    def test_table5_is_discord_only(self, small_dataset):
        text = render_table5(small_dataset)
        assert "Discord" in text
        assert "whatsapp" not in text

    def test_table2_shows_scaled_paper_values(self, small_dataset):
        assert "paper" in render_table2(small_dataset)

    def test_fig3_includes_control(self, small_dataset):
        assert "control" in render_fig3(small_dataset)

    def test_fig6_quotes_paper_revocation(self, small_dataset):
        text = render_fig6(small_dataset)
        assert "68.4%" in text  # Discord's paper value

    def test_table5_rows_ordered_like_paper(self, small_dataset):
        text = render_table5(small_dataset)
        assert text.index("twitch") < text.index("skype")


class TestPaperValues:
    def test_table2_totals(self):
        tweets = sum(v[0] for v in paper.TABLE2.values())
        urls = sum(v[2] for v in paper.TABLE2.values())
        joined = sum(v[3] for v in paper.TABLE2.values())
        # The paper's total row (2,234,128) is slightly below the
        # per-platform sum: tweets carrying URLs of several platforms
        # are counted once in the total.
        assert abs(tweets - 2_234_128) / 2_234_128 < 0.005
        assert urls == 351_535
        assert joined == 616

    def test_fig6_consistency(self):
        for platform, (revoked, before) in paper.FIG6.items():
            assert before <= revoked

    def test_table5_fractions_below_linked_total(self):
        # Each platform's share is below the max (twitch, 20.4 %).
        assert max(paper.TABLE5.values()) == pytest.approx(0.204)
