"""Tests for the Section 4-6 analyses, run on the shared small study.

These assert structural invariants and the paper's *qualitative*
orderings (who wins) rather than exact percentages — at test scale the
sample is small, so quantitative assertions use wide tolerances.
"""

import pytest

from repro.analysis.content import control_prevalence, entity_prevalence
from repro.analysis.language import control_language_shares, language_shares
from repro.analysis.membership import (
    creator_stats,
    membership,
    whatsapp_countries,
)
from repro.analysis.messages import group_activity, message_types, user_activity
from repro.analysis.revocation import revocation
from repro.analysis.sharing import daily_discovery, tweets_per_url
from repro.analysis.staleness import staleness
from repro.platforms.base import MessageType
from repro.platforms.whatsapp import WHATSAPP_MAX_MEMBERS

PLATFORMS = ("whatsapp", "telegram", "discord")


class TestSharing:
    def test_daily_series_lengths(self, small_dataset):
        for platform in PLATFORMS:
            series = daily_discovery(small_dataset, platform)
            n = small_dataset.n_days
            assert len(series.all_counts) == n
            assert len(series.unique_counts) == n
            assert len(series.new_counts) == n

    def test_new_totals_match_record_count(self, small_dataset):
        for platform in PLATFORMS:
            series = daily_discovery(small_dataset, platform)
            assert sum(series.new_counts) == len(
                small_dataset.records_for(platform)
            )

    def test_all_geq_unique_geq_new(self, small_dataset):
        for platform in PLATFORMS:
            series = daily_discovery(small_dataset, platform)
            for day in range(small_dataset.n_days):
                assert (
                    series.all_counts[day]
                    >= series.unique_counts[day]
                    >= series.new_counts[day]
                )

    def test_discord_has_most_new_urls(self, small_dataset):
        # Fig 1c ordering: Discord > Telegram > WhatsApp.
        medians = {
            p: daily_discovery(small_dataset, p).median_new for p in PLATFORMS
        }
        assert medians["discord"] > medians["telegram"] > medians["whatsapp"]

    def test_telegram_shared_most_often(self, small_dataset):
        # Fig 1a: Telegram URLs are shared the most times per day.
        medians = {
            p: daily_discovery(small_dataset, p).median_all for p in PLATFORMS
        }
        assert medians["telegram"] == max(medians.values())

    def test_share_distribution_basics(self, small_dataset):
        for platform in PLATFORMS:
            dist = tweets_per_url(small_dataset, platform)
            assert dist.cdf.values.min() >= 1
            assert dist.mean_shares >= 1.0
            assert 0.0 <= dist.single_share_frac <= 1.0

    def test_discord_has_most_single_share_urls(self, small_dataset):
        # Fig 2: 62 % of Discord URLs shared once vs ~50 % elsewhere.
        fracs = {
            p: tweets_per_url(small_dataset, p).single_share_frac
            for p in PLATFORMS
        }
        assert fracs["discord"] > fracs["whatsapp"]
        assert fracs["discord"] > fracs["telegram"]

    def test_telegram_highest_mean_shares(self, small_dataset):
        means = {
            p: tweets_per_url(small_dataset, p).mean_shares for p in PLATFORMS
        }
        assert means["telegram"] == max(means.values())


class TestContent:
    def test_fractions_are_probabilities(self, small_dataset):
        for platform in PLATFORMS:
            res = entity_prevalence(small_dataset, platform)
            for value in (
                res.hashtag_frac, res.multi_hashtag_frac,
                res.mention_frac, res.multi_mention_frac, res.retweet_frac,
            ):
                assert 0.0 <= value <= 1.0
            assert res.multi_hashtag_frac <= res.hashtag_frac
            assert res.multi_mention_frac <= res.mention_frac

    def test_telegram_most_retweets(self, small_dataset):
        # Fig 3c: Telegram leads on retweets (76 %).
        results = {p: entity_prevalence(small_dataset, p) for p in PLATFORMS}
        assert results["telegram"].retweet_frac == max(
            r.retweet_frac for r in results.values()
        )

    def test_telegram_most_hashtags_among_originals(self, small_dataset):
        # Fig 3a: Telegram leads on hashtags (24 % vs 13/14 %).  Tested
        # on original (non-retweet) tweets: retweet trains inherit the
        # original's entities, which at test scale lets a single viral
        # tweet dominate the all-tweets statistic.
        fracs = {}
        for platform in PLATFORMS:
            originals = [
                t for t in small_dataset.tweets_for(platform) if not t.is_retweet
            ]
            fracs[platform] = sum(
                1 for t in originals if t.hashtags
            ) / len(originals)
        assert fracs["telegram"] > fracs["whatsapp"]
        assert fracs["telegram"] > fracs["discord"]
        assert abs(fracs["telegram"] - 0.24) < 0.06

    def test_whatsapp_fewest_retweets(self, small_dataset):
        results = {p: entity_prevalence(small_dataset, p) for p in PLATFORMS}
        assert results["whatsapp"].retweet_frac == min(
            r.retweet_frac for r in results.values()
        )

    def test_mentions_prevalent_everywhere(self, small_dataset):
        # Fig 3b: 68-84 % of tweets carry mentions.
        for platform in PLATFORMS:
            assert entity_prevalence(small_dataset, platform).mention_frac > 0.5

    def test_control_prevalence(self, small_dataset):
        res = control_prevalence(small_dataset)
        assert res.source == "control"
        assert abs(res.hashtag_frac - 0.13) < 0.05
        assert abs(res.mention_frac - 0.76) < 0.05


class TestLanguage:
    def test_english_tops_every_platform(self, small_dataset):
        # Fig 4: English is the most popular language everywhere.
        for platform in PLATFORMS:
            assert language_shares(small_dataset, platform).top == "en"

    def test_japanese_is_discord_specialty(self, small_dataset):
        # Fig 4: 27 % of Discord tweets are Japanese.
        ja = {
            p: language_shares(small_dataset, p).share("ja") for p in PLATFORMS
        }
        assert ja["discord"] > 0.15
        assert ja["discord"] > 5 * ja["whatsapp"]

    def test_arabic_strong_on_telegram(self, small_dataset):
        shares = language_shares(small_dataset, "telegram")
        assert shares.share("ar") > 0.08

    def test_shares_sum_to_one(self, small_dataset):
        for platform in PLATFORMS:
            shares = language_shares(small_dataset, platform)
            assert sum(f for _, f in shares.shares) == pytest.approx(1.0)

    def test_control_languages(self, small_dataset):
        shares = control_language_shares(small_dataset)
        assert shares.top == "en"


class TestStaleness:
    def test_values_nonnegative(self, small_dataset):
        for platform in PLATFORMS:
            res = staleness(small_dataset, platform)
            assert res.cdf.values.min() >= 0.0
            assert res.n_groups > 0

    def test_whatsapp_groups_freshest(self, small_dataset):
        # Fig 5: 76 % of WhatsApp groups shared on their creation day,
        # under 30 % for Telegram/Discord.
        res = {p: staleness(small_dataset, p) for p in PLATFORMS}
        assert res["whatsapp"].same_day_frac > 0.55
        assert res["whatsapp"].same_day_frac > res["telegram"].same_day_frac
        assert res["whatsapp"].same_day_frac > res["discord"].same_day_frac

    def test_telegram_discord_have_old_groups(self, small_dataset):
        for platform in ("telegram", "discord"):
            assert staleness(small_dataset, platform).over_year_frac > 0.1

    def test_discord_uses_all_monitored_groups(self, small_dataset):
        # Discord creation dates come from the invite API (no join
        # needed), so the sample is much larger than the joined set.
        dc = staleness(small_dataset, "discord")
        assert dc.n_groups > len(small_dataset.joined_for("discord"))


class TestRevocation:
    def test_fractions_are_probabilities(self, small_dataset):
        for platform in PLATFORMS:
            res = revocation(small_dataset, platform)
            assert 0.0 <= res.before_first_obs_frac <= res.revoked_frac <= 1.0

    def test_discord_most_ephemeral(self, small_dataset):
        # Fig 6: 68 % of Discord URLs die vs 27 %/20 % for WA/TG.
        res = {p: revocation(small_dataset, p) for p in PLATFORMS}
        assert res["discord"].revoked_frac > 0.5
        assert res["discord"].revoked_frac > 2 * res["whatsapp"].revoked_frac
        assert res["discord"].revoked_frac > 2 * res["telegram"].revoked_frac

    def test_discord_dies_before_first_observation(self, small_dataset):
        res = revocation(small_dataset, "discord")
        assert res.before_first_obs_frac > 0.8 * res.revoked_frac

    def test_whatsapp_lifetimes_longer_than_discord(self, small_dataset):
        wa = revocation(small_dataset, "whatsapp")
        dc = revocation(small_dataset, "discord")
        assert wa.lifetime_cdf.median > dc.lifetime_cdf.median

    def test_revoked_per_day_totals(self, small_dataset):
        for platform in PLATFORMS:
            res = revocation(small_dataset, platform)
            assert sum(res.revoked_per_day.values()) == res.lifetime_cdf.n


class TestMembership:
    def test_whatsapp_respects_cap(self, small_dataset):
        res = membership(
            small_dataset, "whatsapp", member_cap=WHATSAPP_MAX_MEMBERS
        )
        assert res.size_cdf.values.max() <= WHATSAPP_MAX_MEMBERS
        assert 0.0 < res.at_cap_frac < 0.25

    def test_telegram_largest_groups(self, small_dataset):
        # Fig 7a: Telegram groups are orders of magnitude larger.
        sizes = {
            p: membership(small_dataset, p).size_cdf.quantile(0.95)
            for p in PLATFORMS
        }
        assert sizes["telegram"] > sizes["discord"] > sizes["whatsapp"]

    def test_online_fraction_exposure(self, small_dataset):
        assert membership(small_dataset, "whatsapp").online_frac_cdf is None
        for platform in ("telegram", "discord"):
            cdf = membership(small_dataset, platform).online_frac_cdf
            assert cdf is not None
            assert 0.0 <= cdf.values.min() and cdf.values.max() <= 1.0

    def test_discord_more_online_than_telegram(self, small_dataset):
        # Fig 7b: Discord members are online in larger proportion.
        tg = membership(small_dataset, "telegram").online_frac_cdf
        dc = membership(small_dataset, "discord").online_frac_cdf
        assert dc.median > 2 * tg.median

    def test_more_groups_grow_than_shrink(self, small_dataset):
        # Fig 7c: 51-54 % grow on every platform.
        for platform in PLATFORMS:
            res = membership(small_dataset, platform)
            assert res.growing_frac > res.shrinking_frac

    def test_trend_fractions_sum_to_one(self, small_dataset):
        for platform in PLATFORMS:
            res = membership(small_dataset, platform)
            total = res.growing_frac + res.flat_frac + res.shrinking_frac
            assert total == pytest.approx(1.0)


class TestCreators:
    def test_whatsapp_creators_identified_by_phone_hash(self, small_dataset):
        stats = creator_stats(small_dataset, "whatsapp")
        assert stats.n_creators <= stats.n_groups
        assert stats.single_group_frac > 0.8

    def test_discord_creators(self, small_dataset):
        stats = creator_stats(small_dataset, "discord")
        assert stats.single_group_frac > 0.8
        assert stats.n_creators <= stats.n_groups

    def test_telegram_creators_only_from_joined(self, small_dataset):
        stats = creator_stats(small_dataset, "telegram")
        assert stats.n_groups == len(small_dataset.joined_for("telegram"))

    def test_whatsapp_countries_brazil_heavy(self, small_dataset):
        # Section 5: Brazil leads the WhatsApp country ranking.  At test
        # scale a single serial creator can skew the per-group count, so
        # Brazil is asserted to lead by distinct creators and to stay in
        # the top 3 by groups.
        by_groups = [country for country, _ in whatsapp_countries(small_dataset)]
        assert "BR" in by_groups[:3]
        creators_by_country: dict = {}
        for record in small_dataset.records_for("whatsapp"):
            for snap in small_dataset.snapshots.get(record.canonical, []):
                if snap.alive and snap.creator_phone_hash is not None:
                    creators_by_country.setdefault(
                        snap.creator_phone_hash.country, set()
                    ).add(snap.creator_phone_hash.digest)
                    break
        counts = {c: len(s) for c, s in creators_by_country.items()}
        assert max(counts, key=counts.get) == "BR"


class TestMessages:
    def test_text_dominates_everywhere(self, small_dataset):
        # Fig 8: text is 78/85/96 % of messages.
        for platform in PLATFORMS:
            mix = message_types(small_dataset, platform)
            assert mix.fractions[0][0] is MessageType.TEXT
            assert mix.fraction(MessageType.TEXT) > 0.6

    def test_discord_most_text_heavy(self, small_dataset):
        fracs = {
            p: message_types(small_dataset, p).fraction(MessageType.TEXT)
            for p in PLATFORMS
        }
        assert fracs["discord"] > fracs["telegram"] > fracs["whatsapp"]

    def test_stickers_are_whatsapp_specialty(self, small_dataset):
        # Fig 8: stickers are ~10 % of WhatsApp messages.
        wa = message_types(small_dataset, "whatsapp")
        dc = message_types(small_dataset, "discord")
        assert wa.fraction(MessageType.STICKER) > 0.04
        assert dc.fraction(MessageType.STICKER) == 0.0

    def test_type_fractions_sum_to_one(self, small_dataset):
        for platform in PLATFORMS:
            mix = message_types(small_dataset, platform)
            assert sum(f for _, f in mix.fractions) == pytest.approx(1.0)

    def test_group_activity_descaled(self, small_dataset):
        for platform in PLATFORMS:
            res = group_activity(small_dataset, platform)
            assert res.rate_cdf.n == len(small_dataset.joined_for(platform))
            assert res.max_rate >= res.rate_cdf.median

    def test_telegram_groups_least_active(self, small_dataset):
        # Fig 9a: only ~25 % of Telegram groups exceed 10 msgs/day.
        res = {p: group_activity(small_dataset, p) for p in PLATFORMS}
        assert res["telegram"].over_10_frac < res["whatsapp"].over_10_frac
        assert res["telegram"].over_10_frac < res["discord"].over_10_frac

    def test_user_activity_counts(self, small_dataset):
        for platform in PLATFORMS:
            res = user_activity(small_dataset, platform)
            assert res.n_posters > 0
            assert res.count_cdf.values.min() >= 1
            assert 0.0 <= res.top1pct_share <= 1.0

    def test_whatsapp_least_concentrated(self, small_dataset):
        # Fig 9b: WhatsApp's top 1 % hold 31 % vs 60/63 % on TG/DC.
        res = {p: user_activity(small_dataset, p) for p in PLATFORMS}
        assert res["whatsapp"].top1pct_share < res["telegram"].top1pct_share
        assert res["whatsapp"].top1pct_share < res["discord"].top1pct_share


class TestTopSharedUrls:
    def test_sorted_and_bounded(self, small_dataset):
        from repro.analysis.sharing import top_shared_urls

        top = top_shared_urls(small_dataset, "telegram", n=10)
        assert len(top) == 10
        shares = [u.n_shares for u in top]
        assert shares == sorted(shares, reverse=True)
        assert shares[0] == max(
            r.n_shares for r in small_dataset.records_for("telegram")
        )

    def test_categories_from_known_set(self, small_dataset):
        from repro.analysis.sharing import top_shared_urls

        for url in top_shared_urls(small_dataset, "telegram", n=20):
            assert url.category in ("pornography", "cryptocurrency", "general")

    def test_custom_classifier(self, small_dataset):
        from repro.analysis.sharing import top_shared_urls

        top = top_shared_urls(
            small_dataset, "discord", n=5,
            classifier=lambda dataset, record: "custom",
        )
        assert all(u.category == "custom" for u in top)
