"""Tests for the command-line interface."""

import pytest

from repro.__main__ import RENDERERS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.seed == 7
        assert args.scale == 0.01
        assert args.only is None

    def test_only_validates_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--only", "nonsense"])

    def test_all_renderers_exposed(self):
        assert {"table2", "table4", "table5"} <= set(RENDERERS)
        assert {f"fig{i}" for i in range(1, 10)} <= set(RENDERERS)


class TestMain:
    def test_small_run(self, capsys):
        exit_code = main(
            [
                "--seed", "3", "--scale", "0.002", "--days", "6",
                "--message-scale", "0.05", "--only", "table2", "fig6",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out          # always printed
        assert "Table 2" in out
        assert "Fig 6" in out
        assert "Fig 1" not in out        # not requested


class TestMainSideOutputs:
    def test_save_and_export_flags(self, tmp_path, capsys):
        save_path = tmp_path / "ds.json.gz"
        csv_dir = tmp_path / "csv"
        exit_code = main(
            [
                "--seed", "4", "--scale", "0.004", "--days", "8",
                "--message-scale", "0.05", "--only", "table2",
                "--save", str(save_path), "--export-csv", str(csv_dir),
            ]
        )
        assert exit_code == 0
        assert save_path.exists()
        assert len(list(csv_dir.glob("fig*.csv"))) == 9

        from repro.io import load_dataset

        loaded = load_dataset(save_path)
        assert loaded.n_days == 8

    def test_validate_flag(self, capsys):
        exit_code = main(
            [
                "--seed", "4", "--scale", "0.004", "--days", "8",
                "--message-scale", "0.05", "--only", "table2", "--validate",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Calibration self-check" in out
