"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import RENDERERS, build_parser, main, package_version


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.seed == 7
        assert args.scale == 0.01
        assert args.only is None
        assert args.log_level == "info"
        assert args.telemetry_dir is None

    def test_version_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_log_level_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud"])

    def test_only_validates_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--only", "nonsense"])

    def test_all_renderers_exposed(self):
        assert {"table2", "table4", "table5"} <= set(RENDERERS)
        assert {f"fig{i}" for i in range(1, 10)} <= set(RENDERERS)


class TestMain:
    def test_small_run(self, capsys):
        exit_code = main(
            [
                "--seed", "3", "--scale", "0.002", "--days", "6",
                "--message-scale", "0.05", "--only", "table2", "fig6",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out          # always printed
        assert "Table 2" in out
        assert "Fig 6" in out
        assert "Fig 1" not in out        # not requested


class TestMainSideOutputs:
    def test_save_and_export_flags(self, tmp_path, capsys):
        save_path = tmp_path / "ds.json.gz"
        csv_dir = tmp_path / "csv"
        exit_code = main(
            [
                "--seed", "4", "--scale", "0.004", "--days", "8",
                "--message-scale", "0.05", "--only", "table2",
                "--save", str(save_path), "--export-csv", str(csv_dir),
            ]
        )
        assert exit_code == 0
        assert save_path.exists()
        assert len(list(csv_dir.glob("fig*.csv"))) == 9

        from repro.io import load_dataset

        loaded = load_dataset(save_path)
        assert loaded.n_days == 8

    def test_telemetry_dir_flag(self, tmp_path, capsys):
        tel_dir = tmp_path / "telemetry"
        exit_code = main(
            [
                "--seed", "3", "--scale", "0.002", "--days", "6",
                "--message-scale", "0.05", "--only", "table2",
                "--telemetry-dir", str(tel_dir),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Campaign telemetry (per-stage time budget)" in captured.out
        assert "Telemetry written to" in captured.err
        for line in (tel_dir / "telemetry.jsonl").read_text().splitlines():
            json.loads(line)
        prom = (tel_dir / "metrics.prom").read_text()
        assert "repro_campaign_days_total" in prom
        assert "Campaign telemetry" in (tel_dir / "report.txt").read_text()

    def test_log_level_gates_stderr(self, tmp_path, capsys):
        base = [
            "--seed", "3", "--scale", "0.002", "--days", "3",
            "--message-scale", "0.05", "--only", "table2",
        ]
        assert main(base + ["--log-level", "debug"]) == 0
        err = capsys.readouterr().err
        assert "# Running" in err
        assert "day 1/3 complete" in err
        assert main(base + ["--log-level", "warning"]) == 0
        assert capsys.readouterr().err == ""
        assert main(base) == 0  # default: the classic banner, no debug
        err = capsys.readouterr().err
        assert "# Running" in err and "day 1/3" not in err

    def test_validate_flag(self, capsys):
        exit_code = main(
            [
                "--seed", "4", "--scale", "0.004", "--days", "8",
                "--message-scale", "0.05", "--only", "table2", "--validate",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Calibration self-check" in out


class TestArgumentValidation:
    """Bad arguments fail with a clear ConfigError, not a traceback."""

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["--days", "0"], "--days"),
            (["--days", "-5"], "--days"),
            (["--scale", "0"], "--scale"),
            (["--scale", "-0.5"], "--scale"),
            (["--message-scale", "0"], "--message-scale"),
            (["--message-scale", "-1"], "--message-scale"),
            (["--resume"], "--checkpoint-dir"),
            (["--fork-day", "3"], "--checkpoint-dir"),
            (
                ["--resume", "--fork-day", "2", "--checkpoint-dir", "x"],
                "mutually exclusive",
            ),
            (["--from-day", "2"], "--resume"),
            (["--fork-seed", "9"], "--fork-day"),
            (["--fork-faults", "hostile"], "--fork-day"),
            (["--fork-into", "x"], "--fork-day"),
            (["--checkpoint-every", "3"], "--checkpoint-dir"),
            (
                ["--checkpoint-dir", "x", "--checkpoint-every", "0"],
                "--checkpoint-every",
            ),
            (
                [
                    "--checkpoint-dir", "x", "--resume",
                    "--checkpoint-every", "3",
                ],
                "cadence",
            ),
            (["--workers", "0"], "--workers"),
            (["--workers", "-2"], "--workers"),
            (["--slices"], "--checkpoint-dir"),
            (
                ["--slices", "--checkpoint-dir", "x", "--resume"],
                "fresh runs only",
            ),
            (
                ["--slices", "--checkpoint-dir", "x", "--fork-day", "2"],
                "fresh runs only",
            ),
        ],
    )
    def test_rejected_at_parse_time(self, argv, fragment):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match=None) as excinfo:
            main(argv)
        assert fragment in str(excinfo.value)

    def test_fork_day_outside_checkpointed_range(self, tmp_path):
        from repro.errors import ConfigError

        store = tmp_path / "store"
        assert main(
            [
                "--seed", "3", "--scale", "0.003", "--days", "4",
                "--message-scale", "0.05", "--only", "table2",
                "--checkpoint-dir", str(store),
            ]
        ) == 0
        with pytest.raises(ConfigError, match="outside the checkpointed"):
            main(
                [
                    "--checkpoint-dir", str(store), "--fork-day", "42",
                    "--only", "table2",
                ]
            )
        with pytest.raises(ConfigError, match="outside the checkpointed"):
            main(
                [
                    "--checkpoint-dir", str(store), "--resume",
                    "--from-day", "42", "--only", "table2",
                ]
            )


class TestCheckpointFlags:
    @pytest.mark.checkpoint
    def test_run_resume_fork_cycle(self, tmp_path, capsys):
        store = tmp_path / "store"
        fork_store = tmp_path / "fork"
        base = [
            "--seed", "3", "--scale", "0.003", "--days", "4",
            "--message-scale", "0.05", "--only", "table2",
        ]
        assert main(
            base + ["--checkpoint-dir", str(store), "--checkpoint-every", "2"]
        ) == 0
        assert (store / "manifest.json").exists()
        assert main(
            ["--checkpoint-dir", str(store), "--resume", "--only", "table2"]
        ) == 0
        assert main(
            [
                "--checkpoint-dir", str(store), "--resume",
                "--from-day", "1", "--only", "table2",
            ]
        ) == 0
        assert main(
            [
                "--checkpoint-dir", str(store), "--fork-day", "1",
                "--fork-faults", "hostile", "--fork-into", str(fork_store),
                "--only", "table2",
            ]
        ) == 0
        assert (fork_store / "manifest.json").exists()
        err = capsys.readouterr().err
        assert "Resuming" in err and "Forking" in err


@pytest.mark.parallel
class TestWorkersFlag:
    def test_default_is_sequential(self):
        assert build_parser().parse_args([]).workers == 1

    def test_workers_flag_is_invisible_in_output(self, capsys):
        base = [
            "--seed", "3", "--scale", "0.002", "--days", "6",
            "--message-scale", "0.05", "--only", "table2",
        ]
        assert main(base) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential


@pytest.mark.streaming
class TestReportSubcommand:
    """``repro report --from-store``: the streaming CLI path."""

    def test_slices_run_then_streaming_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        base = [
            "--seed", "3", "--scale", "0.003", "--days", "4",
            "--message-scale", "0.05", "--only", "table2",
        ]
        assert main(base + ["--checkpoint-dir", str(store), "--slices"]) == 0
        capsys.readouterr()
        assert main(["report", "--from-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Streaming report: 4/4 day slices folded" in out
        assert "campaign rollup folded" in out
        assert "Epoch rollups" in out
        assert "Table 2" in out
        assert "store integrity: clean" in out

    def test_report_only_and_through_day(self, tmp_path, capsys):
        store = tmp_path / "store"
        base = [
            "--seed", "3", "--scale", "0.003", "--days", "4",
            "--message-scale", "0.05", "--only", "table2",
        ]
        assert main(base + ["--checkpoint-dir", str(store), "--slices"]) == 0
        capsys.readouterr()
        assert main(
            [
                "report", "--from-store", str(store),
                "--only", "fig2", "--through-day", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2/4 day slices folded" in out
        assert "no campaign rollup yet" in out
        assert "Fig 2" in out and "Fig 3" not in out

    def test_report_flag_validation(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="--reservoir-threshold"):
            main(
                [
                    "report", "--from-store", str(tmp_path),
                    "--reservoir-threshold", "0",
                ]
            )
        with pytest.raises(ConfigError, match="--epoch-days"):
            main(
                ["report", "--from-store", str(tmp_path), "--epoch-days", "0"]
            )
        with pytest.raises(ConfigError, match="--through-day"):
            main(
                [
                    "report", "--from-store", str(tmp_path),
                    "--through-day", "-1",
                ]
            )

    def test_report_requires_store(self):
        with pytest.raises(SystemExit):
            main(["report"])
