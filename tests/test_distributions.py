"""Tests for the generative samplers (distributions module)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.calibration import CALIBRATIONS
from repro.simulation.distributions import (
    MAX_SHARES_PER_URL,
    author_pool_size,
    sample_active_frac,
    sample_entity_count,
    sample_msg_rate,
    sample_online_frac,
    sample_revocation_time,
    sample_shares_per_url,
    sample_size,
    sample_slope,
    sample_staleness_days,
)

WA = CALIBRATIONS["whatsapp"]
TG = CALIBRATIONS["telegram"]
DC = CALIBRATIONS["discord"]


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSharesPerUrl:
    def test_minimum_is_one(self):
        r = rng()
        assert all(sample_shares_per_url(r, WA) >= 1 for _ in range(500))

    def test_capped(self):
        r = rng()
        assert all(
            sample_shares_per_url(r, TG) <= MAX_SHARES_PER_URL for _ in range(2000)
        )

    def test_single_share_fraction(self):
        r = rng()
        draws = [sample_shares_per_url(r, DC) for _ in range(5000)]
        frac_single = np.mean(np.asarray(draws) == 1)
        assert abs(frac_single - DC.single_share_prob) < 0.03

    def test_telegram_heavier_tail_than_discord(self):
        r = rng(1)
        tg = np.mean([sample_shares_per_url(r, TG) for _ in range(20000)])
        dc = np.mean([sample_shares_per_url(r, DC) for _ in range(20000)])
        assert tg > 2 * dc


class TestStaleness:
    def test_nonnegative(self):
        r = rng()
        assert all(sample_staleness_days(r, TG) >= 0 for _ in range(500))

    def test_same_day_mass(self):
        r = rng()
        draws = np.array([sample_staleness_days(r, WA) for _ in range(5000)])
        assert abs(np.mean(draws < 1.0) - WA.staleness_same_day_prob) < 0.03

    def test_over_year_mass(self):
        r = rng()
        draws = np.array([sample_staleness_days(r, TG) for _ in range(5000)])
        assert abs(np.mean(draws > 365) - TG.staleness_over_year_prob) < 0.03

    def test_whatsapp_fresher_than_telegram(self):
        r = rng(2)
        wa = np.median([sample_staleness_days(r, WA) for _ in range(3000)])
        tg = np.median([sample_staleness_days(r, TG) for _ in range(3000)])
        assert wa < tg


class TestRevocation:
    def test_none_for_survivors(self):
        r = rng()
        draws = [sample_revocation_time(r, WA, 5.0) for _ in range(5000)]
        none_frac = sum(1 for d in draws if d is None) / len(draws)
        assert abs(none_frac - (1 - WA.revoked_prob)) < 0.03

    def test_revocation_after_share(self):
        r = rng()
        for _ in range(500):
            t = sample_revocation_time(r, DC, 3.0)
            if t is not None:
                assert t > 3.0

    def test_discord_mostly_instant(self):
        r = rng()
        draws = [sample_revocation_time(r, DC, 0.0) for _ in range(5000)]
        revoked = [d for d in draws if d is not None]
        instant = sum(1 for d in revoked if d < 0.2) / len(revoked)
        assert instant > 0.9

    def test_whatsapp_mostly_delayed(self):
        r = rng()
        draws = [sample_revocation_time(r, WA, 0.0) for _ in range(5000)]
        revoked = [d for d in draws if d is not None]
        delayed = sum(1 for d in revoked if d > 1.0) / len(revoked)
        assert delayed > 0.7


class TestSize:
    def test_within_bounds(self):
        r = rng()
        for _ in range(500):
            assert 2 <= sample_size(r, WA) <= WA.member_cap

    def test_whatsapp_at_cap_mass(self):
        r = rng()
        draws = np.array([sample_size(r, WA) for _ in range(5000)])
        at_cap = np.mean(draws == WA.member_cap)
        # 5 % point mass plus the clipped lognormal tail.
        assert 0.05 <= at_cap < 0.18

    def test_discord_mostly_small(self):
        # Fig 7a: ~60 % of Discord groups below 100 members.
        r = rng()
        draws = np.array([sample_size(r, DC) for _ in range(5000)])
        assert 0.5 < np.mean(draws < 100) < 0.7

    def test_telegram_reaches_huge_sizes(self):
        r = rng()
        draws = np.array([sample_size(r, TG) for _ in range(20000)])
        assert draws.max() > 50_000

    def test_custom_cap_respected(self):
        r = rng()
        for _ in range(200):
            assert sample_size(r, TG, member_cap=500) <= 500


class TestSlope:
    def test_trend_fractions(self):
        r = rng()
        slopes = np.array([sample_slope(r, DC, 100) for _ in range(5000)])
        grow, flat, shrink = DC.trend_probs
        assert abs(np.mean(slopes > 0) - grow) < 0.03
        assert abs(np.mean(slopes == 0) - flat) < 0.03
        assert abs(np.mean(slopes < 0) - shrink) < 0.03

    def test_slope_scales_with_size(self):
        r = rng(3)
        small = np.mean(np.abs([sample_slope(r, TG, 10) for _ in range(3000)]))
        large = np.mean(np.abs([sample_slope(r, TG, 10_000) for _ in range(3000)]))
        assert large > 100 * small


class TestRatesAndFractions:
    def test_msg_rate_positive_and_capped(self):
        r = rng()
        draws = [sample_msg_rate(r, DC) for _ in range(3000)]
        assert all(0 < d <= 3000 for d in draws)

    def test_telegram_quieter_than_whatsapp(self):
        # Fig 9a: ~60 % of WA groups above 10 msg/day vs ~25 % for TG.
        r = rng(4)
        wa = np.mean([sample_msg_rate(r, WA) > 10 for _ in range(4000)])
        tg = np.mean([sample_msg_rate(r, TG) > 10 for _ in range(4000)])
        assert wa > 0.45
        assert tg < 0.4
        assert wa > tg + 0.2

    def test_online_frac_zero_for_whatsapp(self):
        assert sample_online_frac(rng(), WA) == 0.0

    def test_online_frac_in_unit_interval(self):
        r = rng()
        for cal in (TG, DC):
            for _ in range(200):
                assert 0.0 <= sample_online_frac(r, cal) <= 1.0

    def test_discord_more_online_than_telegram(self):
        # Fig 7b: Discord users are online in larger proportion.
        r = rng(5)
        dc = np.mean([sample_online_frac(r, DC) for _ in range(3000)])
        tg = np.mean([sample_online_frac(r, TG) for _ in range(3000)])
        assert dc > 2 * tg

    def test_active_frac_in_unit_interval(self):
        r = rng()
        for cal in (WA, TG, DC):
            for _ in range(200):
                assert 0.0 <= sample_active_frac(r, cal) <= 1.0


class TestEntityCount:
    def test_marginals(self):
        r = rng()
        draws = np.array([sample_entity_count(r, 0.73, 0.20) for _ in range(20000)])
        assert abs(np.mean(draws >= 1) - 0.73) < 0.02
        assert abs(np.mean(draws >= 2) - 0.20) < 0.02

    def test_zero_probability(self):
        r = rng()
        assert all(sample_entity_count(r, 0.0, 0.0) == 0 for _ in range(100))

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30)
    def test_counts_nonnegative(self, p1, frac2):
        p2 = p1 * frac2
        r = rng(7)
        assert all(sample_entity_count(r, p1, p2) >= 0 for _ in range(50))


class TestAuthorPoolSize:
    def test_matches_expected_distinct_count(self):
        # Draw T authors uniformly from the solved pool size and verify
        # the distinct count hits the target ratio.
        target_ratio = 0.367  # WhatsApp users/tweets
        n_tweets = 50_000
        pool = author_pool_size(n_tweets, target_ratio)
        r = rng(8)
        authors = r.integers(0, pool, size=n_tweets)
        ratio = len(np.unique(authors)) / n_tweets
        assert abs(ratio - target_ratio) < 0.02

    def test_degenerate_ratios(self):
        assert author_pool_size(100, 1.0) == 100
        assert author_pool_size(100, 0.0) == 100

    def test_monotone_in_ratio(self):
        assert author_pool_size(10_000, 0.8) > author_pool_size(10_000, 0.3)
