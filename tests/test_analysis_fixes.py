"""Regression tests for analysis-layer correctness fixes.

Each test here encodes a bug that used to exist: a fabricated growth
observation when no group was seen twice, a poster fraction whose
numerator and denominator counted different group populations, and
raw ``KeyError`` escapes on share lists referencing unretained tweets.
"""

from __future__ import annotations

import pytest

from repro.analysis.membership import membership
from repro.analysis.messages import user_activity
from repro.analysis.sharing import top_shared_urls
from repro.core.dataset import JoinedGroupData, Snapshot, StudyDataset
from repro.core.discovery import URLRecord
from repro.reporting.figures import render_fig7
from repro.twitter.model import Tweet


def _tweet(tid: int, text: str = "join my group") -> Tweet:
    return Tweet(tweet_id=tid, author_id=tid * 10, t=1.0, text=text, lang="en")


def _record(platform: str, code: str, shares) -> URLRecord:
    return URLRecord(
        canonical=f"{platform}:{code}",
        platform=platform,
        code=code,
        url=f"https://example.com/{code}",
        first_seen_t=min(t for _, t in shares) if shares else 0.0,
        shares=list(shares),
    )


def _single_snapshot_dataset() -> StudyDataset:
    """Every group observed alive exactly once: zero growth signal."""
    dataset = StudyDataset(n_days=3, scale=0.01)
    for i in range(4):
        record = _record("telegram", f"g{i}", [(100 + i, 0.5)])
        dataset.records[record.canonical] = record
        dataset.tweets[100 + i] = _tweet(100 + i)
        dataset.snapshots[record.canonical] = [
            Snapshot(
                canonical=record.canonical, day=0, t=0.6, alive=True, size=40
            )
        ]
    return dataset


class TestMembershipNoGrowthObservations:
    """membership() used to fabricate a np.zeros(1) growth sample."""

    def test_no_growth_sample_is_fabricated(self):
        res = membership(_single_snapshot_dataset(), "telegram")
        assert res.growth_cdf.n == 0
        assert res.growing_frac is None
        assert res.flat_frac is None
        assert res.shrinking_frac is None
        assert res.max_growth is None

    def test_size_cdf_still_reported(self):
        res = membership(_single_snapshot_dataset(), "telegram")
        assert res.size_cdf.n == 4
        assert res.size_cdf.median == 40.0

    def test_real_growth_observations_unaffected(self):
        dataset = _single_snapshot_dataset()
        canonical = "telegram:g0"
        dataset.snapshots[canonical].append(
            Snapshot(canonical=canonical, day=1, t=1.6, alive=True, size=44)
        )
        res = membership(dataset, "telegram")
        assert res.growth_cdf.n == 1
        assert res.growing_frac == 1.0
        assert res.flat_frac == 0.0
        assert res.shrinking_frac == 0.0
        assert res.max_growth == 4.0

    def test_fig7_renders_na_trend(self):
        dataset = StudyDataset(n_days=3, scale=0.01)
        for platform in ("whatsapp", "telegram", "discord"):
            record = _record(platform, "g0", [(7, 0.5)])
            dataset.records[record.canonical] = record
            dataset.snapshots[record.canonical] = [
                Snapshot(
                    canonical=record.canonical,
                    day=0, t=0.6, alive=True, size=10, online=2,
                )
            ]
        dataset.tweets[7] = _tweet(7)
        text = render_fig7(dataset)
        assert "n/a (paper" in text
        # A single-observation campaign must not claim 100% flat.
        assert "100%/0%" not in text


class TestPosterFractionAccounting:
    """poster_frac mixed hidden-list posters into the numerator."""

    def test_poster_frac_cannot_exceed_one(self):
        dataset = StudyDataset(n_days=3, scale=0.01)
        dataset.joined.append(
            JoinedGroupData(
                platform="telegram", canonical="telegram:hidden",
                gid="h1", join_t=1.0, size_at_join=None,
                member_list_hidden=True, n_messages=5,
                sender_counts={"u1": 2, "u2": 1, "u3": 1, "u4": 1},
            )
        )
        dataset.joined.append(
            JoinedGroupData(
                platform="telegram", canonical="telegram:known",
                gid="k1", join_t=1.0, size_at_join=2, n_messages=3,
                sender_counts={"u5": 3},
            )
        )
        res = user_activity(dataset, "telegram")
        assert res.n_posters == 5
        assert res.n_members_observed == 2
        assert res.poster_frac is not None
        # Before the fix: 5 posters / 2 members = 2.5.
        assert res.poster_frac == pytest.approx(0.5)
        assert res.poster_frac <= 1.0

    def test_all_groups_hidden_reports_none(self):
        dataset = StudyDataset(n_days=3, scale=0.01)
        dataset.joined.append(
            JoinedGroupData(
                platform="telegram", canonical="telegram:hidden",
                gid="h1", join_t=1.0, size_at_join=None,
                member_list_hidden=True, n_messages=1,
                sender_counts={"u1": 1},
            )
        )
        res = user_activity(dataset, "telegram")
        assert res.poster_frac is None
        assert res.n_members_observed is None


class TestDanglingTweetIds:
    """Share lists referencing unretained tweets must not KeyError."""

    def _partial_dataset(self) -> StudyDataset:
        dataset = StudyDataset(n_days=3, scale=0.01)
        record = _record(
            "telegram", "g0", [(1, 0.2), (2, 0.4), (3, 0.6)]
        )
        dataset.records[record.canonical] = record
        # Only tweet 2 is retained; 1 and 3 dangle (streamed/partial).
        dataset.tweets[2] = _tweet(2, "bitcoin crypto airdrop token")
        return dataset

    def test_tweets_for_skips_dangling_ids(self):
        dataset = self._partial_dataset()
        tweets = dataset.tweets_for("telegram")
        assert [t.tweet_id for t in tweets] == [2]

    def test_top_shared_urls_skips_dangling_ids(self):
        dataset = self._partial_dataset()
        results = top_shared_urls(dataset, "telegram", n=5)
        assert len(results) == 1
        assert results[0].n_shares == 3
