"""Tests for the privacy substrate: phones, hashing, PII records."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.privacy import (
    COUNTRY_DIALING_CODES,
    LinkedAccount,
    PhoneHasher,
    PhoneNumber,
    PIIExposure,
    PIIKind,
    country_of_dialing_code,
    hash_phone,
    random_phone,
)
from repro.privacy.hashing import HashedPhone
from repro.privacy.pii import ExposureSource, LINKABLE_PLATFORMS


class TestDialingCodes:
    def test_paper_countries_present(self):
        for country in ("BR", "NG", "ID", "IN", "SA", "MX", "AR"):
            assert country in COUNTRY_DIALING_CODES

    def test_brazil_code(self):
        assert COUNTRY_DIALING_CODES["BR"] == "55"

    def test_reverse_lookup(self):
        assert country_of_dialing_code("55") == "BR"
        assert country_of_dialing_code("234") == "NG"

    def test_unknown_code_gives_empty(self):
        assert country_of_dialing_code("99999") == ""

    def test_shared_code_resolves_to_first_registrant(self):
        # US and CA share "1"; the first registered country wins.
        assert country_of_dialing_code("1") == "US"


class TestPhoneNumber:
    def test_e164_format(self):
        phone = PhoneNumber(country="BR", dialing_code="55", subscriber="31987654321")
        assert phone.e164 == "+5531987654321"
        assert str(phone) == phone.e164

    def test_frozen(self):
        phone = PhoneNumber("BR", "55", "123456789")
        with pytest.raises(AttributeError):
            phone.subscriber = "0"


class TestRandomPhone:
    def test_country_preserved(self):
        rng = np.random.default_rng(0)
        phone = random_phone(rng, "NG")
        assert phone.country == "NG"
        assert phone.dialing_code == "234"

    def test_subscriber_is_nine_digits(self):
        rng = np.random.default_rng(0)
        phone = random_phone(rng, "BR")
        assert len(phone.subscriber) == 9
        assert phone.subscriber.isdigit()

    def test_no_leading_zero(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert random_phone(rng, "IN").subscriber[0] != "0"

    def test_unknown_country_falls_back(self):
        rng = np.random.default_rng(0)
        phone = random_phone(rng, "ZZ")
        assert phone.dialing_code == "000"

    def test_deterministic_given_rng(self):
        a = random_phone(np.random.default_rng(1), "BR")
        b = random_phone(np.random.default_rng(1), "BR")
        assert a == b


class TestHashing:
    def _phone(self):
        return PhoneNumber("BR", "55", "311234567")

    def test_hash_is_hex_sha256(self):
        digest = hash_phone(self._phone())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_salt_changes_digest(self):
        phone = self._phone()
        assert hash_phone(phone, "a") != hash_phone(phone, "b")

    def test_hasher_requires_salt(self):
        with pytest.raises(ValueError):
            PhoneHasher(salt="")

    def test_same_phone_same_record(self):
        hasher = PhoneHasher("s")
        assert hasher.record(self._phone()) == hasher.record(self._phone())

    def test_record_preserves_country_and_code(self):
        record = PhoneHasher("s").record(self._phone())
        assert record.country == "BR"
        assert record.dialing_code == "55"

    def test_record_does_not_contain_subscriber(self):
        phone = self._phone()
        record = PhoneHasher("s").record(phone)
        assert phone.subscriber not in record.digest
        assert not hasattr(record, "subscriber")

    def test_hashed_phone_hashable(self):
        hasher = PhoneHasher("s")
        records = {hasher.record(self._phone()), hasher.record(self._phone())}
        assert len(records) == 1

    def test_distinct_numbers_distinct_digests(self):
        hasher = PhoneHasher("s")
        a = hasher.record(PhoneNumber("BR", "55", "311111111"))
        b = hasher.record(PhoneNumber("BR", "55", "322222222"))
        assert a != b

    @given(st.text(alphabet="0123456789", min_size=6, max_size=12))
    def test_hash_never_leaks_subscriber(self, subscriber):
        phone = PhoneNumber("US", "1", subscriber)
        digest = hash_phone(phone, "salt")
        assert subscriber not in digest or len(subscriber) < 3


class TestPIIRecords:
    def test_table5_platforms_all_linkable(self):
        for name in ("twitch", "steam", "twitter", "spotify", "youtube",
                     "battlenet", "xbox", "reddit", "leagueoflegends",
                     "skype", "facebook"):
            assert name in LINKABLE_PLATFORMS

    def test_exposure_dataclass(self):
        exposure = PIIExposure(
            platform="whatsapp",
            user_id="whu1",
            kind=PIIKind.PHONE_NUMBER,
            source=ExposureSource.LANDING_PAGE,
            value="ab" * 32,
            country="BR",
        )
        assert exposure.kind is PIIKind.PHONE_NUMBER
        assert exposure.country == "BR"

    def test_linked_account_frozen(self):
        account = LinkedAccount(platform="twitch", handle="x")
        with pytest.raises(AttributeError):
            account.handle = "y"
