"""Tests for dataset persistence and CSV export."""

import csv

import pytest

from repro.io import export_all_csv, export_figure_csv, load_dataset, save_dataset
from repro.io.export import FIGURES
from repro.io.serialize import FORMAT_VERSION


class TestSerialization:
    @pytest.fixture(scope="class")
    def roundtripped(self, small_dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "study.json"
        save_dataset(small_dataset, path)
        return load_dataset(path)

    def test_dimensions_preserved(self, small_dataset, roundtripped):
        assert roundtripped.n_days == small_dataset.n_days
        assert roundtripped.scale == small_dataset.scale
        assert roundtripped.message_scale == small_dataset.message_scale

    def test_records_preserved(self, small_dataset, roundtripped):
        assert set(roundtripped.records) == set(small_dataset.records)
        for canonical, record in small_dataset.records.items():
            loaded = roundtripped.records[canonical]
            assert loaded.platform == record.platform
            assert loaded.shares == record.shares
            assert loaded.via_search == record.via_search

    def test_tweets_preserved(self, small_dataset, roundtripped):
        assert roundtripped.tweets == small_dataset.tweets
        assert roundtripped.control_tweets == small_dataset.control_tweets

    def test_snapshots_preserved(self, small_dataset, roundtripped):
        assert set(roundtripped.snapshots) == set(small_dataset.snapshots)
        canonical = next(iter(small_dataset.snapshots))
        assert roundtripped.snapshots[canonical] == (
            small_dataset.snapshots[canonical]
        )

    def test_joined_preserved(self, small_dataset, roundtripped):
        assert len(roundtripped.joined) == len(small_dataset.joined)
        for original, loaded in zip(small_dataset.joined, roundtripped.joined):
            assert loaded.n_messages == original.n_messages
            assert loaded.type_counts == original.type_counts
            assert loaded.daily_counts == original.daily_counts
            assert loaded.sender_counts == original.sender_counts

    def test_users_preserved(self, small_dataset, roundtripped):
        assert set(roundtripped.users) == set(small_dataset.users)
        key = next(iter(small_dataset.users))
        assert roundtripped.users[key] == small_dataset.users[key]

    def test_analyses_agree_after_roundtrip(self, small_dataset, roundtripped):
        from repro.analysis.revocation import revocation

        for platform in ("whatsapp", "telegram", "discord"):
            a = revocation(small_dataset, platform)
            b = revocation(roundtripped, platform)
            assert a.revoked_frac == b.revoked_frac
            assert a.before_first_obs_frac == b.before_first_obs_frac

    def test_gzip_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "study.json.gz"
        save_dataset(small_dataset, path)
        loaded = load_dataset(path)
        assert len(loaded.records) == len(small_dataset.records)

    def test_version_check(self, small_dataset, tmp_path):
        path = tmp_path / "study.json"
        save_dataset(small_dataset, path)
        tampered = path.read_text().replace(
            f'"format_version":{FORMAT_VERSION}', '"format_version":999'
        )
        path.write_text(tampered)
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_no_raw_phone_numbers_on_disk(self, small_dataset, tmp_path):
        path = tmp_path / "study.json"
        save_dataset(small_dataset, path)
        assert '"+' not in path.read_text()  # no E.164 strings anywhere


class TestExport:
    def test_every_figure_exports(self, small_dataset, tmp_path):
        paths = export_all_csv(small_dataset, tmp_path)
        assert len(paths) == len(FIGURES)
        for path in paths:
            assert path.exists()
            with open(path) as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2  # header + data

    def test_fig1_row_count(self, small_dataset, tmp_path):
        path = export_figure_csv(small_dataset, "fig1", tmp_path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        # One row per platform per day, plus header.
        assert len(rows) == 1 + 3 * small_dataset.n_days

    def test_fig4_shares_parse_as_floats(self, small_dataset, tmp_path):
        path = export_figure_csv(small_dataset, "fig4", tmp_path)
        with open(path) as handle:
            rows = list(csv.reader(handle))[1:]
        for _, _, share in rows:
            assert 0.0 <= float(share) <= 1.0

    def test_unknown_figure_rejected(self, small_dataset, tmp_path):
        with pytest.raises(KeyError):
            export_figure_csv(small_dataset, "fig99", tmp_path)

    def test_directory_created(self, small_dataset, tmp_path):
        nested = tmp_path / "a" / "b"
        path = export_figure_csv(small_dataset, "fig8", nested)
        assert path.exists()


class TestLoadErrors:
    """Truncated/corrupt input surfaces as DatasetError, path included."""

    def test_invalid_json_wrapped(self, tmp_path):
        from repro.io import DatasetError

        path = tmp_path / "bad.json"
        path.write_text("{ definitely not json")
        with pytest.raises(DatasetError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_gzip_wrapped(self, small_dataset, tmp_path):
        from repro.io import DatasetError

        path = tmp_path / "ds.json.gz"
        save_dataset(small_dataset, path)
        path.write_bytes(path.read_bytes()[:-200])
        with pytest.raises(DatasetError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_version_error_names_path(self, small_dataset, tmp_path):
        import json

        from repro.io import DatasetError

        path = tmp_path / "ds.json"
        save_dataset(small_dataset, path)
        document = json.loads(path.read_text())
        document["format_version"] = FORMAT_VERSION + 7
        path.write_text(json.dumps(document))
        with pytest.raises(DatasetError, match="unsupported dataset format"):
            load_dataset(path)
