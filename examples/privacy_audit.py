"""Scenario: audit PII exposure across the three messaging platforms.

Reproduces Section 6 as a standalone tool: runs the measurement
campaign, collects every observed PII leak as a typed record, and
prints Table 4, Table 5, and a breakdown by *observation channel* —
including the paper's most alarming finding, that WhatsApp exposes
group creators' phone numbers on the public landing page, before any
join.

All phone numbers are one-way hashed at the observation boundary; this
audit never sees a raw number.

Run:
    python examples/privacy_audit.py
"""

from collections import Counter

from repro import Study, StudyConfig
from repro.analysis.privacy import collect_exposures
from repro.reporting import render_table4, render_table5
from repro.reporting.tables import format_table


def main() -> None:
    config = StudyConfig(seed=29, scale=0.01, message_scale=0.2)
    print("Running the measurement campaign ...")
    dataset = Study(config).run()

    print()
    print(render_table4(dataset))
    print()
    print(render_table5(dataset))

    exposures = collect_exposures(dataset)
    by_channel = Counter((e.platform, e.source.value) for e in exposures)
    rows = [
        [platform, source, f"{count:,}"]
        for (platform, source), count in sorted(by_channel.items())
    ]
    print()
    print(
        format_table(
            ["platform", "observation channel", "#PII records"],
            rows,
            title="PII exposure by observation channel",
        )
    )

    landing = by_channel.get(("whatsapp", "landing_page"), 0)
    print()
    print(
        f"Alarming: {landing:,} WhatsApp creator phone numbers were exposed"
        " on public landing pages — visible to anyone holding the URL,"
        " no account or join required."
    )
    countries = Counter(
        e.country for e in exposures if e.platform == "whatsapp" and e.country
    )
    top = ", ".join(f"{c} ({n:,})" for c, n in countries.most_common(5))
    print(f"Top countries of exposed WhatsApp numbers: {top}")


if __name__ == "__main__":
    main()
