"""Scenario: real-time collection vs the paper's daily monitor.

The paper's conclusion calls for "robust, scalable, and real-time data
collection solutions", because 67 % of Discord invite URLs are already
dead at the first *daily* observation.  This example runs both
collectors over the same simulated world and shows how much of the
ephemeral catalogue the real-time collector (hourly poll-and-visit,
from :mod:`repro.extensions.realtime`) saves.

Run:
    python examples/realtime_collection.py
"""

from repro import Study, StudyConfig
from repro.extensions.realtime import RealTimeCollector, compare_with_daily
from repro.reporting.tables import format_table


def main() -> None:
    config = StudyConfig(seed=31, scale=0.01, message_scale=0.05)
    print("Running the paper's batch pipeline (daily monitor) ...")
    study = Study(config)
    dataset = study.run()

    print("Running the real-time collector over the same world ...")
    collector = RealTimeCollector(study.world)
    collector.run(config.n_days)

    comparison = compare_with_daily(collector, dataset)
    rows = [
        [
            platform,
            f"{rates['daily']:.1%}",
            f"{rates['realtime']:.1%}",
            f"{rates['realtime'] - rates['daily']:+.1%}",
        ]
        for platform, rates in comparison.items()
    ]
    print()
    print(
        format_table(
            ["platform", "daily monitor", "real-time collector", "gain"],
            rows,
            title="First-observation success (URL alive when first visited)",
        )
    )

    saved = sum(
        1
        for obs in collector.observations.values()
        if obs.platform == "discord" and obs.alive
    )
    total_dc = sum(
        1 for obs in collector.observations.values() if obs.platform == "discord"
    )
    print()
    print(
        f"The real-time collector archived metadata for {saved:,} of"
        f" {total_dc:,} Discord servers before their invites expired —"
        " the daily monitor never sees two-thirds of them."
    )
    print(
        "Takeaway: for ephemeral platforms, metadata must be captured at"
        " discovery time, not on a daily batch schedule."
    )


if __name__ == "__main__":
    main()
