"""Quickstart: run a scaled-down measurement campaign end to end.

Reproduces the paper's pipeline at 1 % of the original tweet volume —
discover group URLs on (simulated) Twitter for 38 days, monitor every
group daily, join a sample, collect messages — and prints the dataset
overview (Table 2) plus the headline findings.

Run:
    python examples/quickstart.py
"""

from repro import Study, StudyConfig
from repro.analysis.revocation import revocation
from repro.analysis.sharing import daily_discovery
from repro.reporting import render_fig1, render_table2

PLATFORMS = ("whatsapp", "telegram", "discord")


def main() -> None:
    config = StudyConfig(seed=7, scale=0.01, message_scale=0.1)
    print(
        f"Running a {config.n_days}-day campaign at scale={config.scale} "
        f"(seed={config.seed}) ..."
    )
    dataset = Study(config).run()

    print()
    print(render_table2(dataset))
    print()
    print(render_fig1(dataset))
    print()

    print("Key findings (paper Section 1):")
    new_per_day = {
        p: daily_discovery(dataset, p).median_new for p in PLATFORMS
    }
    print(
        "  1. Twitter is a rich discovery source: per day we find, in the"
        f" median, {new_per_day['whatsapp']:.0f} WhatsApp,"
        f" {new_per_day['telegram']:.0f} Telegram and"
        f" {new_per_day['discord']:.0f} Discord groups (at this scale)."
    )
    revoked = {p: revocation(dataset, p).revoked_frac for p in PLATFORMS}
    print(
        "  2. Group URLs are ephemeral:"
        f" {revoked['whatsapp']:.0%} of WhatsApp,"
        f" {revoked['telegram']:.0%} of Telegram and"
        f" {revoked['discord']:.0%} of Discord URLs died within the window."
    )
    wa_users = len(dataset.users_for("whatsapp"))
    print(
        "  3. PII leaks everywhere: the phone number of every one of the"
        f" {wa_users:,} observed WhatsApp users was exposed (stored hashed)."
    )

    print()
    print("Where to go next (same campaign, more machinery):")
    print(
        "  python -m repro --scale 0.01 --workers 4"
        "              # shard the monitor, same bytes"
    )
    print(
        "  python -m repro --workers 4 --worker-deadline 120"
        "      # bound hung workers"
    )
    print(
        "  python -m repro --scenario invite-storm --only scenario"
        "  # alternative weather"
    )
    print(
        "  python -m repro scenarios list"
        "                         # built-in packs + personas"
    )
    print(
        "  python -m repro serve --checkpoint-dir runs/live &"
        "      # live HTTP query API"
    )


if __name__ == "__main__":
    main()
