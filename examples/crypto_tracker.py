"""Scenario: track cryptocurrency groups discovered on Twitter.

The paper's topic analysis (Table 3) finds cryptocurrency discussion on
WhatsApp and Telegram but not Discord.  This example builds a focused
tracker on top of the public API: it classifies each discovered URL as
crypto-related from the *text of the tweets that shared it* (keyword
matching over the LDA-style token stream), then follows those groups'
size trajectories through the daily monitor snapshots.

This mirrors the paper's future-work plan of "focused data collection
within groups related to specific interesting topics".

Run:
    python examples/crypto_tracker.py
"""

from repro import Study, StudyConfig
from repro.analysis.stats import ecdf
from repro.reporting.tables import format_table
from repro.text.tokenize import tokenize_for_lda

CRYPTO_KEYWORDS = frozenset(
    "bitcoin btc ethereum eth crypto cryptocurrency usdt trx trc airdrop"
    " token tokens sats defi blockchain coin".split()
)

PLATFORMS = ("whatsapp", "telegram", "discord")


def is_crypto_record(dataset, record) -> bool:
    """A URL is crypto-related if its sharing tweets use crypto terms."""
    hits = 0
    for tweet_id, _ in record.shares:
        tokens = tokenize_for_lda(dataset.tweets[tweet_id].text)
        if CRYPTO_KEYWORDS & set(tokens):
            hits += 1
    return hits >= max(1, record.n_shares // 4)


def main() -> None:
    config = StudyConfig(seed=13, scale=0.01, message_scale=0.05)
    print("Collecting 38 days of group URLs from Twitter ...")
    dataset = Study(config).run()

    rows = []
    crypto_growth = {}
    for platform in PLATFORMS:
        records = dataset.records_for(platform)
        english = [
            r for r in records
            if any(dataset.tweets[tid].lang == "en" for tid, _ in r.shares)
        ]
        crypto = [r for r in english if is_crypto_record(dataset, r)]
        rows.append(
            [
                platform,
                f"{len(records):,}",
                f"{len(crypto):,}",
                f"{len(crypto) / max(len(english), 1):.1%}",
            ]
        )
        growths = []
        for record in crypto:
            snaps = [
                s for s in dataset.snapshots.get(record.canonical, []) if s.alive
            ]
            if len(snaps) >= 2 and snaps[0].size and snaps[-1].size:
                growths.append(snaps[-1].size - snaps[0].size)
        crypto_growth[platform] = growths

    print()
    print(
        format_table(
            ["platform", "URLs discovered", "crypto URLs",
             "crypto share of English"],
            rows,
            title="Cryptocurrency groups discovered via Twitter",
        )
    )
    print()
    print("Growth of crypto groups over the observation window:")
    for platform, growths in crypto_growth.items():
        if not growths:
            print(f"  {platform:<9} (no crypto groups with 2+ observations)")
            continue
        cdf = ecdf(growths)
        growing = sum(1 for g in growths if g > 0) / len(growths)
        print(
            f"  {platform:<9} n={len(growths):<4} median growth ="
            f" {cdf.median:+.0f} members, {growing:.0%} growing"
        )

    wa_share = float(rows[0][3].rstrip("%"))
    dc_share = float(rows[2][3].rstrip("%"))
    print()
    print(
        "Paper shape check: crypto is a WhatsApp/Telegram phenomenon "
        f"(WA {wa_share:.1f}% vs Discord {dc_share:.1f}% of English URLs)."
    )


if __name__ == "__main__":
    main()
