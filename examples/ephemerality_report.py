"""Scenario: how fast do shared group URLs die, and what does it mean
for researchers?

The paper's Section 5 takeaway: "the ephemeral nature of messaging
platforms' groups should be taken into consideration in future
research".  This example quantifies that: it runs the campaign, then
reports per-platform URL survival — how many URLs a researcher who
crawls Twitter with a delay of 0/1/3/7 days would still find alive.

Run:
    python examples/ephemerality_report.py
"""

from repro import Study, StudyConfig
from repro.analysis.revocation import revocation
from repro.reporting import render_fig6
from repro.reporting.tables import format_table

PLATFORMS = ("whatsapp", "telegram", "discord")
DELAYS = (0, 1, 3, 7)


def survival_after(dataset, platform, delay_days):
    """Fraction of URLs still alive ``delay_days`` after discovery.

    Snapshots are consecutive daily observations that stop at the first
    revocation, so the URL's state at discovery+delay is: the snapshot
    taken that day if one exists, dead if monitoring already ended with
    a revocation, and unknown (excluded) if the study window ended
    while the URL was still alive.
    """
    alive = total = 0
    for record in dataset.records_for(platform):
        snaps = dataset.snapshots.get(record.canonical)
        if not snaps:
            continue
        target_day = snaps[0].day + delay_days
        if target_day <= snaps[-1].day:
            total += 1
            alive += snaps[target_day - snaps[0].day].alive
        elif not snaps[-1].alive:
            total += 1  # revoked before the target day
    return alive / total if total else 0.0


def main() -> None:
    config = StudyConfig(seed=17, scale=0.01, message_scale=0.05)
    print("Running the measurement campaign ...")
    dataset = Study(config).run()

    print()
    print(render_fig6(dataset))

    rows = []
    for platform in PLATFORMS:
        rows.append(
            [platform]
            + [f"{survival_after(dataset, platform, d):.0%}" for d in DELAYS]
        )
    print()
    print(
        format_table(
            ["platform"] + [f"alive after {d}d" for d in DELAYS],
            rows,
            title="URL survival vs crawl delay (what a slower crawler loses)",
        )
    )

    print()
    print("Implications for dataset collection (paper Section 8):")
    dc = revocation(dataset, "discord")
    print(
        f"  * {dc.before_first_obs_frac:.0%} of Discord URLs are already dead"
        " at the first daily check — real-time collection is mandatory"
        " for Discord."
    )
    wa = revocation(dataset, "whatsapp")
    print(
        f"  * WhatsApp URLs last longer (median lifetime"
        f" {wa.lifetime_cdf.median:.0f} days among revoked URLs), so daily"
        " crawls suffice there."
    )
    print(
        "  * Researchers should archive group metadata at discovery time;"
        " a week-later recrawl misses a large fraction of the catalogue."
    )


if __name__ == "__main__":
    main()
