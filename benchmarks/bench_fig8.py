"""Fig 8: message-type mix in joined groups.

Expected shape: text dominates (78/85/96 %); stickers are a WhatsApp
speciality (~10 %); Discord is the most text-only platform.
"""

from repro.analysis.messages import message_types
from repro.platforms.base import MessageType
from repro.reporting import render_fig8


def test_fig8(benchmark, bench_dataset, emit):
    text = benchmark(render_fig8, bench_dataset)
    emit("fig8", text)

    mixes = {
        p: message_types(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    assert abs(mixes["whatsapp"].fraction(MessageType.TEXT) - 0.78) < 0.04
    assert abs(mixes["telegram"].fraction(MessageType.TEXT) - 0.85) < 0.04
    assert abs(mixes["discord"].fraction(MessageType.TEXT) - 0.96) < 0.03
    assert mixes["whatsapp"].fraction(MessageType.STICKER) > 0.06
