"""Benchmark: fleet sweep speedup and supervision overhead.

Two gates on the fleet supervisor, measured on one 4-cell sweep
(4 seeds × the bare pipeline):

* **Speedup** — the sweep at 4 workers must run at least
  ``MIN_SPEEDUP`` (2×) faster than the same sweep at 1 worker.  As in
  ``bench_parallel``, two numbers are measured: the **observed**
  wall-clock ratio, and the **critical path** — the sequential sweep
  wall over the slowest single cell's wall (the inherent serial cost
  once a core exists per worker; cell walls come from the sequential
  run, where they cannot count each other's timeslices).  Hosts with
  at least 4 usable cores gate on observed wall; smaller hosts fall
  back to the critical path, and the emitted table records the core
  count so committed results are honest about which gate applied.

* **Overhead** — the supervised sweep at 1 worker must cost at most
  ``MAX_OVERHEAD`` (5%) more wall-clock than a bare loop that runs
  the *same* cell subprocesses back to back with no supervision: no
  ledger, no sentinels, no deadline bookkeeping.  What the fleet adds
  (restartability, crash detection, the merged report's inputs) must
  ride along nearly free.

Smoke mode (``BENCH_FLEET_SMOKE=1``) runs a miniature sweep through
the same measurement and gate arithmetic and only asserts the ratios
parse as finite numbers — CI uses it to catch bit-rot in the gate
itself.
"""

import json
import math
import os
import subprocess
import sys
import time

import pytest

from repro.fleet import FleetPolicy, FleetRunner, SweepMatrix
from repro.io.atomic import atomic_write_text
from repro.procs import child_environ
from repro.reporting.tables import format_table

pytestmark = pytest.mark.fleet

SMOKE = os.environ.get("BENCH_FLEET_SMOKE") == "1"

#: Per-cell campaign: big enough that a cell's work dwarfs process
#: startup, small enough that three 4-cell sweeps stay quick.
_BASE = dict(n_days=5, scale=0.01, message_scale=0.05, join_day=1)
if SMOKE:
    _BASE = dict(n_days=3, scale=0.003, message_scale=0.05, join_day=1)

SEEDS = (3, 5, 7, 9)
WORKERS = 4
MIN_SPEEDUP = 2.0
MAX_OVERHEAD = 0.05


def _matrix() -> SweepMatrix:
    return SweepMatrix(seeds=SEEDS, base=dict(_BASE))


def _fleet_run(workdir, workers: int):
    start = time.perf_counter()
    result = FleetRunner(
        _matrix(), workdir, policy=FleetPolicy(workers=workers)
    ).run()
    wall_s = time.perf_counter() - start
    assert result.ok and not result.failed
    return wall_s, result


def _plain_run(workdir) -> float:
    """The unsupervised baseline: the same cell subprocesses, run
    back to back with a bare ``subprocess.run`` — no ledger, no exit
    sentinels, no deadlines, no retry bookkeeping."""
    workdir.mkdir(parents=True)
    start = time.perf_counter()
    for cell in _matrix().cells():
        cell_dir = workdir / cell.cell_id
        cell_dir.mkdir()
        spec = {
            "cell": cell.cell_id,
            "digest": cell.digest,
            "config": cell.config_kwargs(),
            "store": str(cell_dir / "store"),
            "summary": str(cell_dir / "summary.json"),
            "anchor_every": 2,
            "fork": None,
            "attempt": 1,
        }
        spec_path = cell_dir / "spec.json"
        atomic_write_text(spec_path, json.dumps(spec) + "\n")
        with open(cell_dir / "log.txt", "ab") as log:
            subprocess.run(
                [
                    sys.executable, "-m", "repro.fleet._child",
                    str(spec_path),
                ],
                env=child_environ(),
                stdout=log,
                stderr=subprocess.STDOUT,
                check=True,
            )
    return time.perf_counter() - start


def test_fleet_speedup_and_supervision_overhead(emit, tmp_path):
    plain_s = _plain_run(tmp_path / "plain")
    seq_s, seq_result = _fleet_run(tmp_path / "seq", 1)
    par_s, _ = _fleet_run(tmp_path / "par", WORKERS)

    critical_s = max(o.duration_s for o in seq_result.outcomes)
    observed = seq_s / par_s
    critical = seq_s / critical_s
    cores = len(os.sched_getaffinity(0))
    wall_gated = cores >= WORKERS
    speedup_gate = observed if wall_gated else critical
    overhead = seq_s / plain_s - 1.0

    rows = [
        ("usable cores on host", str(cores), "-"),
        ("cells in sweep", str(len(SEEDS)), "-"),
        ("plain sequential loop (no supervision)", f"{plain_s:.3f} s",
         "-"),
        ("fleet, 1 worker", f"{seq_s:.3f} s", "1.00x"),
        (
            f"fleet, {WORKERS} workers (observed)",
            f"{par_s:.3f} s",
            f"{observed:.2f}x",
        ),
        (
            "fleet critical path (slowest cell)",
            f"{critical_s:.3f} s",
            f"{critical:.2f}x",
        ),
        (
            f"speedup gate ({'observed wall' if wall_gated else 'critical path'}"
            f" >= {MIN_SPEEDUP:.0f}x)",
            f"{speedup_gate:.2f}x",
            "PASS" if speedup_gate >= MIN_SPEEDUP else "FAIL",
        ),
        (
            f"supervision overhead gate (<= {MAX_OVERHEAD:.0%})",
            f"{overhead:+.2%}",
            "PASS" if overhead <= MAX_OVERHEAD else "FAIL",
        ),
    ]
    emit(
        "bench_fleet",
        format_table(
            ("measurement", "value", "ratio"),
            rows,
            title=(
                f"Fleet sweep supervisor ({len(SEEDS)} cells x "
                f"{_BASE['n_days']}-day campaigns, scale "
                f"{_BASE['scale']}" + (", SMOKE" if SMOKE else "") + ")"
            ),
        ),
    )

    assert math.isfinite(observed) and observed > 0
    assert math.isfinite(critical) and critical > 0
    assert math.isfinite(overhead)
    if SMOKE:
        return  # gate arithmetic verified; thresholds need real scale
    assert speedup_gate >= MIN_SPEEDUP, (
        f"{'observed' if wall_gated else 'critical-path'} speedup "
        f"{speedup_gate:.2f}x at {WORKERS} workers is below the "
        f"{MIN_SPEEDUP:.0f}x gate ({cores} usable cores)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"supervision overhead {overhead:.2%} exceeds the "
        f"{MAX_OVERHEAD:.0%} gate (fleet {seq_s:.3f}s vs plain "
        f"{plain_s:.3f}s)"
    )
