"""Fig 1: group URLs discovered per day (all / unique / new).

Expected shape: Discord leads new-URLs-per-day (paper median 5,664 vs
1,817 Telegram vs 1,111 WhatsApp); Telegram leads all-shares-per-day
(its URLs are re-shared across several days).
"""

from repro.analysis.sharing import daily_discovery
from repro.reporting import render_fig1


def test_fig1(benchmark, bench_dataset, emit):
    text = benchmark(render_fig1, bench_dataset)
    emit("fig1", text)

    new = {
        p: daily_discovery(bench_dataset, p).median_new
        for p in ("whatsapp", "telegram", "discord")
    }
    assert new["discord"] > new["telegram"] > new["whatsapp"]
    alls = {
        p: daily_discovery(bench_dataset, p).median_all
        for p in ("whatsapp", "telegram", "discord")
    }
    assert alls["telegram"] == max(alls.values())
