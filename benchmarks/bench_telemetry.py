"""Benchmark: telemetry-subsystem overhead.

Telemetry is observational by contract, so it must also be close to
free: with the handle disabled (the default) the pipeline pays one
boolean check per instrumentation point, and even fully enabled —
every span, counter, and histogram live — the campaign must stay
within 5 % of the disabled run.  The emitted table documents both,
alongside the enabled run's own per-stage report (the subsystem
benchmarking itself).
"""

import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.reporting import render_telemetry
from repro.reporting.tables import format_table

pytestmark = pytest.mark.telemetry

#: Modest scale: large enough that per-call overhead would show, small
#: enough that three rounds per variant stay cheap.
_BASE = dict(
    seed=7,
    n_days=10,
    scale=0.01,
    message_scale=0.1,
    join_day=3,
)

#: Relative overhead budget for the telemetry-enabled run, plus a
#: small absolute floor so sub-second runs do not flake on timer noise.
MAX_OVERHEAD_FRAC = 0.05
ABS_EPSILON_S = 0.25


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run(enabled=False):
    study = Study(StudyConfig(**_BASE))
    if enabled:
        study.telemetry.enable()
    study.run()
    return study


def test_telemetry_overhead_under_five_percent(emit):
    off_s, off_study = _best_of(3, _run)
    on_s, on_study = _best_of(3, lambda: _run(enabled=True))

    assert len(off_study.telemetry.tracer) == 0, "off must record nothing"
    assert len(on_study.telemetry.tracer) > 0

    overhead = on_s - off_s
    rows = [
        ("telemetry off (default)", f"{off_s:.3f}", "-"),
        ("telemetry on", f"{on_s:.3f}", f"{overhead / off_s:+.1%}"),
    ]
    emit(
        "bench_telemetry",
        format_table(
            ("pipeline", "best of 3 (s)", "vs off"),
            rows,
            title="Telemetry-subsystem overhead (10-day campaign)",
        )
        + "\n\n"
        + render_telemetry(on_study.telemetry),
    )

    assert overhead <= max(MAX_OVERHEAD_FRAC * off_s, ABS_EPSILON_S), (
        f"telemetry-on overhead {overhead:.3f}s over off {off_s:.3f}s "
        f"exceeds the {MAX_OVERHEAD_FRAC:.0%} budget"
    )
