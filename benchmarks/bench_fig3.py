"""Fig 3: hashtag / mention / retweet prevalence vs the control.

Expected shape: hashtags rare everywhere (13-24 %); mentions prevalent
(68-84 %); retweet shares ordered Telegram (76 %) > Discord (50 %) >
WhatsApp (33 %).
"""

from repro.analysis.content import control_prevalence, entity_prevalence
from repro.reporting import render_fig3


def test_fig3(benchmark, bench_dataset, emit):
    text = benchmark(render_fig3, bench_dataset)
    emit("fig3", text)

    res = {
        p: entity_prevalence(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    control = control_prevalence(bench_dataset)
    assert (
        res["telegram"].retweet_frac
        > res["discord"].retweet_frac
        > res["whatsapp"].retweet_frac
    )
    for prevalence in res.values():
        assert prevalence.mention_frac > 0.5
        assert prevalence.hashtag_frac < 0.35
    assert abs(control.hashtag_frac - 0.13) < 0.03
    assert abs(control.mention_frac - 0.76) < 0.03
