"""Benchmark fixtures: one shared study at bench scale.

The dataset is built once per session (it is the expensive part) so
each bench times only its analysis and prints the paper-vs-measured
table.  Rendered outputs are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.study import Study, StudyConfig

#: Bench scale: 2 % of the paper's tweet volume, full message rates.
BENCH_CONFIG = StudyConfig(
    seed=7,
    n_days=38,
    scale=0.02,
    message_scale=0.5,
    join_day=10,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_study():
    """The shared bench study (world + pipeline), already run."""
    study = Study(BENCH_CONFIG)
    dataset = study.run()
    return study, dataset


@pytest.fixture(scope="session")
def bench_dataset(bench_study):
    """The dataset of the shared bench study."""
    return bench_study[1]


@pytest.fixture(scope="session")
def emit():
    """Callable that prints a rendered table and persists it to results/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
