"""Fig 6: URL accessibility — lifetimes and revocations per day.

Expected shape: 27/20/68 % of WhatsApp/Telegram/Discord URLs revoked
within the window; almost all Discord revocations happen before the
first daily observation (1-day invite auto-expiry).
"""

from repro.analysis.revocation import revocation
from repro.reporting import render_fig6


def test_fig6(benchmark, bench_dataset, emit):
    text = benchmark(render_fig6, bench_dataset)
    emit("fig6", text)

    res = {
        p: revocation(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    assert abs(res["whatsapp"].revoked_frac - 0.273) < 0.05
    assert abs(res["telegram"].revoked_frac - 0.204) < 0.05
    assert abs(res["discord"].revoked_frac - 0.684) < 0.05
    assert res["discord"].before_first_obs_frac > 0.55
    assert res["whatsapp"].before_first_obs_frac < 0.12
