"""Ablation: real-time vs daily first observation.

The paper's conclusion calls for "robust, scalable, and real-time data
collection solutions" because 67.4 % of Discord URLs die before the
first daily check.  This bench runs the
:class:`~repro.extensions.realtime.RealTimeCollector` (hourly
poll-and-visit) against the same world and compares first-observation
success with the paper's end-of-day monitor.
"""

from repro.extensions.realtime import RealTimeCollector, compare_with_daily
from repro.reporting.tables import format_table


def test_ablation_realtime(benchmark, bench_study, emit):
    study, dataset = bench_study

    def run():
        collector = RealTimeCollector(study.world)
        collector.run(dataset.n_days)
        return collector

    collector = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = compare_with_daily(collector, dataset)

    rows = [
        [
            platform,
            f"{rates['daily']:.1%}",
            f"{rates['realtime']:.1%}",
            f"{rates['realtime'] - rates['daily']:+.1%}",
        ]
        for platform, rates in comparison.items()
    ]
    emit(
        "ablation_realtime",
        format_table(
            ["platform", "daily first-obs alive", "real-time alive", "gain"],
            rows,
            title="Ablation: real-time vs daily first observation "
            "(paper conclusion)",
        ),
    )

    assert comparison["discord"]["realtime"] > (
        comparison["discord"]["daily"] + 0.3
    )
