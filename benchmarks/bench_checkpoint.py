"""Benchmark: per-day checkpointing overhead.

The run store writes a day record after every observed day.  Anchor
records snapshot the *complete* campaign state — world RNG streams,
discovery catalogue, monitor snapshots, joiner memberships,
resilience ledger — so their cost grows with accumulated state;
that's why the default cadence interleaves them with cheap replay
markers (restored by deterministic replay from the anchor).  The
gate: at bench scale (2 % of paper volume) day-granular
checkpointing must stay under 15 % wall-clock overhead versus the
bare campaign, or crash-safety would be priced out of exactly the
long campaigns it exists for.
"""

import shutil
import tempfile
import time

import pytest

from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.reporting.tables import format_table

pytestmark = pytest.mark.checkpoint

#: The acceptance scale: 2 % of the paper's tweet volume.
_BASE = dict(
    seed=7,
    n_days=10,
    scale=0.02,
    message_scale=0.1,
    join_day=3,
)

MAX_OVERHEAD_FRAC = 0.15
ABS_EPSILON_S = 0.25


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _run(checkpoint: bool):
    config = StudyConfig(**_BASE)
    if not checkpoint:
        return Study(config).run(), None
    tmp = tempfile.mkdtemp(prefix="bench-checkpoint-")
    try:
        dataset = Study(config).run(checkpoint_dir=tmp)
        store = RunStore.open(tmp)
        entries = store.manifest["days"].values()
        payload_bytes = sum(entry["bytes"] for entry in entries)
        n_anchors = sum(
            1 for entry in entries if entry["kind"] == "anchor"
        )
        return dataset, (len(store.days()), n_anchors, payload_bytes)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_checkpoint_overhead_under_fifteen_percent(emit):
    # Interleave the two pipelines so load drift on the host hits
    # both arms of the comparison, not just one.
    bare_s, ckpt_s = float("inf"), float("inf")
    stats = None
    for _ in range(3):
        elapsed, _ = _timed(lambda: _run(checkpoint=False))
        bare_s = min(bare_s, elapsed)
        elapsed, (_, run_stats) = _timed(lambda: _run(checkpoint=True))
        if elapsed < ckpt_s:
            ckpt_s, stats = elapsed, run_stats
    n_days, n_anchors, payload_bytes = stats

    overhead = ckpt_s - bare_s
    rows = [
        ("bare campaign", f"{bare_s:.3f}", "-"),
        (
            "per-day checkpointing",
            f"{ckpt_s:.3f}",
            f"{overhead / bare_s:+.1%}",
        ),
        (
            f"state captured ({n_anchors} anchors / {n_days} days)",
            f"{payload_bytes / 1e6:.1f} MB",
            "-",
        ),
    ]
    emit(
        "bench_checkpoint",
        format_table(
            ("pipeline", "best of 3 (s)", "vs bare"),
            rows,
            title=(
                f"Run-store overhead ({_BASE['n_days']}-day campaign, "
                f"scale {_BASE['scale']})"
            ),
        ),
    )

    assert overhead <= max(MAX_OVERHEAD_FRAC * bare_s, ABS_EPSILON_S), (
        f"per-day checkpointing overhead {overhead:.3f}s over bare "
        f"{bare_s:.3f}s exceeds the {MAX_OVERHEAD_FRAC:.0%} budget"
    )
