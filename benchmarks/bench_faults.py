"""Benchmark: fault-subsystem overhead and hostile-weather resilience.

Two questions.  First, cost: with faults disabled (the default), the
pipeline must not pay for the subsystem's existence — the resilience
executor and the idle proxies together must stay within 10 % of the
bare pipeline.  Second, value: under the ``paper-like`` profile the
campaign must absorb every injected fault and still produce a full
dataset, which the emitted collection-health report documents.
"""

import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.reporting import render_health
from repro.reporting.tables import format_table

pytestmark = pytest.mark.faults

#: Modest scale: large enough that per-call overhead would show, small
#: enough that three rounds per variant stay cheap.
_BASE = dict(
    seed=7,
    n_days=10,
    scale=0.01,
    message_scale=0.1,
    join_day=3,
)

#: Relative overhead budget for the faults-off path, plus a small
#: absolute floor so sub-second runs do not flake on timer noise.
MAX_OVERHEAD_FRAC = 0.10
ABS_EPSILON_S = 0.25


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run(**overrides):
    config = StudyConfig(**{**_BASE, **overrides})
    return Study(config).run()


def test_faults_off_overhead_under_ten_percent(emit):
    bare_s, _ = _best_of(3, _run)
    none_s, none_ds = _best_of(3, lambda: _run(faults="none"))
    paper_s, paper_ds = _best_of(1, lambda: _run(faults="paper-like"))

    assert none_ds.health is None or none_ds.health.is_clean()
    assert paper_ds.health is not None and not paper_ds.health.is_clean()

    overhead = none_s - bare_s
    rows = [
        ("bare (faults=None)", f"{bare_s:.3f}", "-"),
        ("profile none", f"{none_s:.3f}", f"{overhead / bare_s:+.1%}"),
        ("profile paper-like", f"{paper_s:.3f}",
         f"{(paper_s - bare_s) / bare_s:+.1%}"),
    ]
    emit(
        "bench_faults",
        format_table(
            ("pipeline", "best of 3 (s)", "vs bare"),
            rows,
            title="Fault-subsystem overhead (10-day campaign)",
        )
        + "\n\n"
        + render_health(paper_ds),
    )

    assert overhead <= max(MAX_OVERHEAD_FRAC * bare_s, ABS_EPSILON_S), (
        f"faults-off overhead {overhead:.3f}s over bare {bare_s:.3f}s "
        f"exceeds the {MAX_OVERHEAD_FRAC:.0%} budget"
    )


def test_paper_like_weather_is_absorbed(emit):
    dataset = _run(faults="paper-like")
    health = dataset.health
    assert health.total("faults") > 0
    # Every fault was either retried away or degraded to a miss —
    # never an abort, never a false death.
    n_groups = len(dataset.snapshots)
    assert n_groups > 0
    n_missed = sum(
        1 for snaps in dataset.snapshots.values() for s in snaps if s.missed
    )
    n_total = sum(len(snaps) for snaps in dataset.snapshots.values())
    assert n_missed < 0.25 * n_total, (
        f"paper-like weather missed {n_missed}/{n_total} snapshots; "
        "expected the retry layer to absorb most faults"
    )
    emit(
        "bench_faults_weather",
        render_health(dataset)
        + f"\n\ngroups monitored: {n_groups}, "
        f"snapshots: {n_total} ({n_missed} missed)",
    )
