"""Fig 9: message volume per group and per user.

Expected shape: Telegram groups are the least active per day (~25 %
above 10 msgs/day vs ~60 % elsewhere), yet its posting is the most
concentrated: WhatsApp's top-1 % posters hold ~31 % of messages versus
~60 % on Telegram/Discord.
"""

from repro.analysis.messages import group_activity, user_activity
from repro.reporting import render_fig9


def test_fig9(benchmark, bench_dataset, emit):
    text = benchmark(render_fig9, bench_dataset)
    emit("fig9", text)

    grp = {
        p: group_activity(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    usr = {
        p: user_activity(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    assert grp["telegram"].over_10_frac < grp["whatsapp"].over_10_frac
    assert grp["telegram"].over_10_frac < grp["discord"].over_10_frac
    assert usr["whatsapp"].top1pct_share < usr["telegram"].top1pct_share
    assert usr["whatsapp"].top1pct_share < usr["discord"].top1pct_share
    assert abs(usr["whatsapp"].top1pct_share - 0.31) < 0.10
