"""Table 3: LDA topics of English tweets, per platform.

Expected shape: group-advertisement topics dominate everywhere;
crypto appears on WhatsApp and Telegram but not Discord; sex topics are
Telegram-specific; gaming/hentai are Discord-specific; and no
politics-related topic emerges (the paper's footnote 1).
"""

from repro.analysis.topics import extract_topics
from repro.reporting import render_table3


def test_table3(benchmark, bench_dataset, emit):
    def run():
        return {
            platform: extract_topics(
                bench_dataset, platform, n_topics=10, n_iter=40, seed=1
            )
            for platform in ("whatsapp", "telegram", "discord")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("table3", render_table3(results))

    labels = {p: set(r.labels()) for p, r in results.items()}
    assert any("advertisement" in l.lower() or "advertising" in l.lower()
               for l in labels["whatsapp"])
    assert "Sex" in labels["telegram"]
    assert "Hentai" in labels["discord"]
    assert "Cryptocurrencies" not in labels["discord"]
    for platform_labels in labels.values():
        assert not any("politic" in l.lower() for l in platform_labels)
