"""Ablation: daily vs sparser monitoring cadence.

The paper monitored every group once per day.  This ablation re-runs
the monitor at 1/3/7-day cadences over the same world and measures how
much revocation signal a sparser cadence loses — sparser monitors both
detect fewer revocations within the window and lose lifetime
resolution.
"""

from repro.core.monitor import MetadataMonitor
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.reporting.tables import format_table


def run_monitor(study, dataset, cadence):
    world = study.world
    monitor = MetadataMonitor(
        whatsapp=WhatsAppWebClient(world.platform("whatsapp")),
        telegram=TelegramWebClient(world.platform("telegram")),
        discord=DiscordAPI(world.platform("discord"), f"monitor-c{cadence}"),
        hasher=PhoneHasher("ablation"),
    )
    records = list(dataset.records.values())
    for day in range(0, dataset.n_days, cadence):
        monitor.observe_day(day, records)

    platform_of = {r.canonical: r.platform for r in records}
    stats = {
        p: {"monitored": 0, "observations": 0, "revoked": 0}
        for p in ("whatsapp", "telegram", "discord")
    }
    for canonical, snaps in monitor.snapshots.items():
        entry = stats[platform_of[canonical]]
        entry["monitored"] += 1
        entry["observations"] += len(snaps)
        entry["revoked"] += not snaps[-1].alive
    return stats


def test_ablation_cadence(benchmark, bench_study, emit):
    study, dataset = bench_study

    def run_all():
        return {c: run_monitor(study, dataset, c) for c in (1, 3, 7)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for cadence, stats in results.items():
        for platform, entry in stats.items():
            rows.append(
                [
                    f"every {cadence}d",
                    platform,
                    f"{entry['monitored']:,}",
                    f"{entry['observations']:,}",
                    f"{entry['revoked']:,}",
                    f"{entry['revoked'] / entry['monitored']:.1%}",
                ]
            )
    emit(
        "ablation_cadence",
        format_table(
            ["cadence", "platform", "URLs monitored", "observations",
             "revocations seen", "revoked frac"],
            rows,
            title="Ablation: monitoring cadence (paper: daily)",
        ),
    )

    def total(cadence, field):
        return sum(entry[field] for entry in results[cadence].values())

    # Sparser cadences cost observations (and hence lifetime
    # resolution) roughly linearly — sub-linearly in practice because
    # most Discord URLs only ever get one observation at any cadence.
    assert total(1, "observations") > 2 * total(3, "observations")
    assert total(3, "observations") > 1.5 * total(7, "observations")
    # Revocation *detection* is nearly cadence-insensitive (a dead URL
    # stays dead), so daily monitoring buys resolution, not recall.
    assert total(7, "revoked") > 0.8 * total(1, "revoked")
    # Discord, however, loses *catalogue coverage* at sparse cadences:
    # its invites die before a weekly crawler ever sees them alive.
    dc_daily = results[1]["discord"]
    assert dc_daily["revoked"] / dc_daily["monitored"] > 0.5
