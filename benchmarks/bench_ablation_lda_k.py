"""Ablation: LDA topic count k (paper footnote: up to 50 topics).

The paper re-ran its topic modeling with up to 50 topics to confirm no
politics-related topic emerges.  This ablation sweeps k over the
Telegram English tweets, tracks how many topics remain matchable to
the published Table 3 vocabularies, and asserts the footnote's
politics-free finding at every k.
"""

from repro.analysis.topics import extract_topics
from repro.reporting.tables import format_table


def test_ablation_lda_k(benchmark, bench_dataset, emit):
    ks = (5, 10, 20)

    def run_all():
        return {
            k: extract_topics(
                bench_dataset, "telegram", n_topics=k, n_iter=30, seed=3
            )
            for k in ks
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for k, result in results.items():
        matched = [t for t in result.topics if t.label != "(unmatched)"]
        rows.append(
            [
                k,
                len(matched),
                f"{sum(t.share for t in matched):.0%}",
                ", ".join(sorted({t.label for t in matched}))[:60],
            ]
        )
    emit(
        "ablation_lda_k",
        format_table(
            ["k", "matched topics", "matched share", "labels"],
            rows,
            title="Ablation: LDA topic count on Telegram English tweets",
        ),
    )

    for result in results.values():
        # Footnote 1: no politics-related topic at any k.
        assert all("politic" not in t.label.lower() for t in result.topics)
    # At k=10 (the paper's setting) most topics match the published bank.
    matched_10 = [
        t for t in results[10].topics if t.label != "(unmatched)"
    ]
    assert len(matched_10) >= 7
