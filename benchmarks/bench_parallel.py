"""Benchmark: multi-worker probe-engine speedup on the monitor pass.

The daily metadata monitor is the dominant cost of a campaign day at
paper scale, and the parallel engine shards it across worker
processes with byte-identical output.  The gate: at 4 workers the
monitor stage must run at least ``MIN_SPEEDUP`` (2×) faster than the
sequential pass on the paper-scale probe volume.

Two speedups are measured and reported:

* **observed** — sequential monitor wall-clock over parallel monitor
  wall-clock, as a user on this host experiences it;
* **critical path** — sequential monitor wall-clock over the
  parallel pass's inherent serial cost: the parent's apply + merge
  time plus the slowest shard's CPU seconds per day.  CPU seconds,
  not wall: on a core-starved host concurrent workers' wall clocks
  count each other's timeslices, so worker wall time measures the
  host, not the engine.

On a host with at least 4 usable cores the gate is the observed
wall-clock speedup; on smaller hosts (CI containers are often pinned
to 1-2 cores, where N worker processes cannot beat one by wall
clock) the gate falls back to the critical path, which is what the
same engine achieves once cores exist to run the shards.  The
emitted table records the usable core count next to both numbers so
committed results are honest about which gate applied.

Smoke mode (``BENCH_PARALLEL_SMOKE=1``) runs a miniature campaign
through the same measurement and gate arithmetic and asserts the
speedups parse as finite numbers without enforcing the threshold —
CI uses it to catch bit-rot in the gate itself.
"""

import math
import os
import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.reporting.tables import format_table
from repro.telemetry import Telemetry

pytestmark = pytest.mark.parallel

SMOKE = os.environ.get("BENCH_PARALLEL_SMOKE") == "1"

#: Paper-scale probe volume: ~20k monitor probes over the window
#: (scale 0.1 × 8 days front-loads the catalogue the monitor visits
#: daily; the full 38-day campaign reaches the same per-day volume).
_BASE = dict(
    seed=7,
    n_days=8,
    scale=0.1,
    message_scale=0.05,
    join_day=3,
)
if SMOKE:
    _BASE = dict(
        seed=7, n_days=4, scale=0.01, message_scale=0.05, join_day=1
    )

WORKERS = 4
MIN_SPEEDUP = 2.0


def _run(workers: int) -> dict:
    study = Study(
        StudyConfig(**_BASE), telemetry=Telemetry(enabled=True)
    )
    start = time.perf_counter()
    study.run(workers=workers)
    wall_s = time.perf_counter() - start
    metrics = study.telemetry.metrics
    return {
        "wall_s": wall_s,
        "monitor_s": study.telemetry.profiler().stage_wall_s("monitor"),
        "probes": metrics.counter("parallel_probes_total"),
        "apply_s": metrics.counter("parallel_apply_seconds_total"),
        "merge_s": metrics.counter("parallel_merge_seconds_total"),
        "crit_cpu_s": metrics.counter(
            "parallel_critical_probe_cpu_seconds_total"
        ),
    }


def test_parallel_monitor_speedup(emit):
    sequential = _run(1)
    parallel = _run(WORKERS)

    critical_s = (
        parallel["apply_s"] + parallel["merge_s"] + parallel["crit_cpu_s"]
    )
    observed = sequential["monitor_s"] / parallel["monitor_s"]
    critical = sequential["monitor_s"] / critical_s
    cores = len(os.sched_getaffinity(0))
    wall_gated = cores >= WORKERS
    gate = observed if wall_gated else critical

    probes = int(parallel["probes"])
    rows = [
        ("usable cores on host", str(cores), "-"),
        ("probes sharded", str(probes), "-"),
        ("sequential monitor", f"{sequential['monitor_s']:.3f} s", "1.00x"),
        (
            f"parallel monitor ({WORKERS} workers, observed)",
            f"{parallel['monitor_s']:.3f} s",
            f"{observed:.2f}x",
        ),
        (
            "parallel critical path (apply+merge+max shard CPU)",
            f"{critical_s:.3f} s",
            f"{critical:.2f}x",
        ),
        (
            f"gate ({'observed wall' if wall_gated else 'critical path'}"
            f" >= {MIN_SPEEDUP:.0f}x)",
            f"{gate:.2f}x",
            "PASS" if gate >= MIN_SPEEDUP else "FAIL",
        ),
    ]
    emit(
        "bench_parallel",
        format_table(
            ("measurement", "value", "speedup"),
            rows,
            title=(
                f"Parallel probe engine ({_BASE['n_days']}-day campaign, "
                f"scale {_BASE['scale']}"
                + (", SMOKE" if SMOKE else "")
                + ")"
            ),
        ),
    )

    assert math.isfinite(observed) and observed > 0
    assert math.isfinite(critical) and critical > 0
    if SMOKE:
        return  # gate arithmetic verified; threshold needs real scale
    assert gate >= MIN_SPEEDUP, (
        f"{'observed' if wall_gated else 'critical-path'} speedup "
        f"{gate:.2f}x at {WORKERS} workers is below the "
        f"{MIN_SPEEDUP:.0f}x gate ({cores} usable cores)"
    )
