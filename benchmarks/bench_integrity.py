"""Benchmark: full-store fsck cost versus the campaign it protects.

``repro fsck`` re-reads and re-verifies everything the store claims —
manifest checksum, every object's gzip container, payload digest and
envelope, anchor linkage — so its cost scales with the store, not the
campaign.  The gate: verifying a full run store must cost under 10 %
of the campaign wall-clock that produced it.  Integrity checking is
only routinely run (after every chaos cycle, before every resume of a
long campaign) if it stays effectively free next to a day of
collection.
"""

import shutil
import tempfile
import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.integrity import fsck_store
from repro.reporting.tables import format_table

pytestmark = pytest.mark.integrity

#: The acceptance scale: 2 % of the paper's tweet volume (matches
#: bench_checkpoint so the two run-store benches share a baseline).
_BASE = dict(
    seed=7,
    n_days=10,
    scale=0.02,
    message_scale=0.1,
    join_day=3,
)

MAX_FSCK_FRAC = 0.10
ABS_EPSILON_S = 0.10


def test_full_store_fsck_under_ten_percent_of_campaign(emit):
    tmp = tempfile.mkdtemp(prefix="bench-integrity-")
    try:
        start = time.perf_counter()
        Study(StudyConfig(**_BASE)).run(checkpoint_dir=tmp)
        campaign_s = time.perf_counter() - start

        fsck_s = float("inf")
        report = None
        for _ in range(3):
            start = time.perf_counter()
            report = fsck_store(tmp)
            fsck_s = min(fsck_s, time.perf_counter() - start)
        assert report.ok, "bench store must verify clean"
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    rows = [
        ("campaign (checkpointed)", f"{campaign_s:.3f}", "-"),
        (
            "full-store fsck (best of 3)",
            f"{fsck_s:.3f}",
            f"{fsck_s / campaign_s:.1%}",
        ),
        (
            f"verified: {report.days_checked} days, "
            f"{report.objects_checked} objects",
            "-",
            "-",
        ),
    ]
    emit(
        "bench_integrity",
        format_table(
            ("operation", "wall (s)", "vs campaign"),
            rows,
            title=(
                f"Store verification cost ({_BASE['n_days']}-day "
                f"campaign, scale {_BASE['scale']})"
            ),
        ),
    )

    assert fsck_s <= max(MAX_FSCK_FRAC * campaign_s, ABS_EPSILON_S), (
        f"full-store fsck {fsck_s:.3f}s exceeds {MAX_FSCK_FRAC:.0%} of "
        f"the {campaign_s:.3f}s campaign"
    )
