"""Fig 2: CDF of tweets per group URL.

Expected shape: ~half of WhatsApp/Telegram URLs and ~62 % of Discord
URLs are shared exactly once; Telegram has by far the heaviest tail
(the paper found 14 URLs with more than 10 K tweets at full scale).
"""

from repro.analysis.sharing import tweets_per_url
from repro.reporting import render_fig2


def test_fig2(benchmark, bench_dataset, emit):
    text = benchmark(render_fig2, bench_dataset)
    emit("fig2", text)

    dists = {
        p: tweets_per_url(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    assert abs(dists["whatsapp"].single_share_frac - 0.50) < 0.06
    assert abs(dists["telegram"].single_share_frac - 0.50) < 0.06
    assert abs(dists["discord"].single_share_frac - 0.62) < 0.06
    assert dists["telegram"].mean_shares == max(
        d.mean_shares for d in dists.values()
    )
