"""Table 2: dataset overview — the headline volumes of the study.

Expected shape: Discord contributes the most group URLs, Telegram the
most tweets (and tweets per URL), WhatsApp the fewest of both, despite
being the largest platform — the paper's "WhatsApp is the most private"
observation.
"""

from repro.reporting import render_table2


def test_table2(benchmark, bench_dataset, emit):
    text = benchmark(render_table2, bench_dataset)
    emit("table2", text)

    urls = {
        p: len(bench_dataset.records_for(p))
        for p in ("whatsapp", "telegram", "discord")
    }
    assert urls["discord"] > urls["telegram"] > urls["whatsapp"]
