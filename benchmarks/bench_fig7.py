"""Fig 7: membership — sizes, online fractions, growth.

Expected shape: Telegram groups are up to 4 orders of magnitude larger
than WhatsApp's (capped at 257, ~5 % at the cap); Discord members are
online in larger proportion than Telegram's; more groups grow than
shrink on every platform.
"""

from repro.analysis.membership import membership
from repro.platforms.whatsapp import WHATSAPP_MAX_MEMBERS
from repro.reporting import render_fig7


def test_fig7(benchmark, bench_dataset, emit):
    text = benchmark(render_fig7, bench_dataset)
    emit("fig7", text)

    wa = membership(bench_dataset, "whatsapp", member_cap=WHATSAPP_MAX_MEMBERS)
    tg = membership(bench_dataset, "telegram")
    dc = membership(bench_dataset, "discord")

    assert wa.size_cdf.values.max() <= WHATSAPP_MAX_MEMBERS
    assert tg.size_cdf.quantile(0.99) > 20 * wa.size_cdf.quantile(0.99)
    # "up to 4 orders of magnitude" larger at the extreme (Fig 7a).
    assert tg.size_cdf.values.max() > 100 * wa.size_cdf.values.max()
    assert dc.online_frac_cdf.median > 2 * tg.online_frac_cdf.median
    for res in (wa, tg, dc):
        assert res.growing_frac > res.shrinking_frac
