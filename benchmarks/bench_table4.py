"""Table 4: PII exposure per platform.

Expected shape: WhatsApp exposes phone numbers for 100 % of observed
users (members and non-joined creators); Telegram for well under 1 %
(opt-in); Discord exposes no phones but linked accounts for ~30 %.
"""

import pytest
from repro.analysis.privacy import pii_summary
from repro.reporting import render_table4


def test_table4(benchmark, bench_dataset, emit):
    text = benchmark(render_table4, bench_dataset)
    emit("table4", text)

    wa = pii_summary(bench_dataset, "whatsapp")
    tg = pii_summary(bench_dataset, "telegram")
    dc = pii_summary(bench_dataset, "discord")
    assert wa.phone_frac == pytest.approx(1.0)
    assert wa.creators_observed > 0
    assert tg.phone_frac < 0.03
    assert dc.phones_exposed == 0
    assert 0.2 < dc.linked_frac < 0.4
