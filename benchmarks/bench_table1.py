"""Table 1: platform characteristics (static capability descriptors)."""

from repro.reporting import render_table1


def test_table1(benchmark, emit):
    text = benchmark(render_table1)
    emit("table1", text)
    assert "WhatsApp" in text
