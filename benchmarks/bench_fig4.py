"""Fig 4: tweet-language distribution per platform.

Expected shape: English tops everywhere (26/35/47 %); Spanish and
Portuguese follow on WhatsApp, Arabic and Turkish on Telegram, and
Japanese holds a remarkable ~27 % on Discord.
"""

from repro.analysis.language import language_shares
from repro.reporting import render_fig4


def test_fig4(benchmark, bench_dataset, emit):
    text = benchmark(render_fig4, bench_dataset)
    emit("fig4", text)

    shares = {
        p: language_shares(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    for platform_shares in shares.values():
        assert platform_shares.top == "en"
    assert shares["discord"].share("ja") > 0.18
    assert shares["telegram"].share("ar") > 0.08
    assert shares["whatsapp"].share("es") > 0.08
    assert shares["whatsapp"].share("pt") > 0.08
