"""Benchmark: scenario-subsystem overhead on the default weather.

The subsystem's contract is that the default ``paper-weather`` pack is
free: a campaign that names it (or no scenario at all) must not pay
for the scenario machinery's existence — the engine's phase lookup is
the only extra work on the hot path, and it returns ``None`` without
drawing from any RNG stream.  The gate holds the named-default run
within ``MAX_OVERHEAD_FRAC`` of the bare pipeline (plus a small
absolute floor against timer noise).  An active pack is measured for
context, not gated: persona draws and calibration shifts do real
extra work by design.

Smoke mode (``BENCH_SCENARIOS_SMOKE=1``) runs a miniature campaign
through the same arithmetic and asserts the overhead parses as a
finite number without enforcing the threshold — CI uses it to catch
bit-rot in the gate itself.
"""

import math
import os
import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.reporting import render_scenario_report
from repro.reporting.tables import format_table

pytestmark = pytest.mark.scenarios

SMOKE = os.environ.get("BENCH_SCENARIOS_SMOKE") == "1"

#: Modest scale: large enough that a per-group or per-day cost would
#: show, small enough that three rounds per variant stay cheap.
_BASE = dict(
    seed=7,
    n_days=10,
    scale=0.01,
    message_scale=0.1,
    join_day=3,
)
if SMOKE:
    _BASE = dict(
        seed=7, n_days=4, scale=0.004, message_scale=0.05, join_day=1
    )

#: Relative overhead budget for the identity-pack path (ISSUE 8 asks
#: for <= 5 %), plus an absolute floor so sub-second runs do not
#: flake on timer noise.
MAX_OVERHEAD_FRAC = 0.05
ABS_EPSILON_S = 0.25

REPEATS = 1 if SMOKE else 3


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run(**overrides):
    config = StudyConfig(**{**_BASE, **overrides})
    return Study(config).run()


def test_identity_pack_overhead_under_five_percent(emit):
    bare_s, bare_ds = _best_of(REPEATS, _run)
    named_s, named_ds = _best_of(
        REPEATS, lambda: _run(scenario="paper-weather")
    )
    storm_s, storm_ds = _best_of(1, lambda: _run(scenario="invite-storm"))

    # The named default changes nothing; the storm changes the world.
    assert named_ds.scenario == "paper-weather" and not named_ds.personas
    assert storm_ds.scenario == "invite-storm" and storm_ds.personas

    overhead = named_s - bare_s
    rows = [
        ("bare (scenario=None)", f"{bare_s:.3f}", "-"),
        ("paper-weather (named)", f"{named_s:.3f}",
         f"{overhead / bare_s:+.1%}"),
        ("invite-storm (active)", f"{storm_s:.3f}",
         f"{(storm_s - bare_s) / bare_s:+.1%}"),
    ]
    emit(
        "bench_scenarios",
        format_table(
            ("pipeline", f"best of {REPEATS} (s)", "vs bare"),
            rows,
            title=(
                f"Scenario-subsystem overhead ({_BASE['n_days']}-day "
                f"campaign, scale {_BASE['scale']}"
                + (", SMOKE" if SMOKE else "")
                + ")"
            ),
        )
        + "\n\n"
        + render_scenario_report(storm_ds),
    )

    assert math.isfinite(overhead)
    if SMOKE:
        return  # gate arithmetic verified; threshold needs real scale
    assert overhead <= max(MAX_OVERHEAD_FRAC * bare_s, ABS_EPSILON_S), (
        f"identity-pack overhead {overhead:.3f}s over bare "
        f"{bare_s:.3f}s exceeds the {MAX_OVERHEAD_FRAC:.0%} budget"
    )
