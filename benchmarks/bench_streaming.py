"""Benchmark: streaming analysis memory stays bounded as campaigns grow.

The whole point of the streaming layer is the long-horizon campaign:
the batch path materialises the full :class:`StudyDataset` (every
tweet, snapshot, and message), so its footprint grows linearly with
campaign length, while the streaming fold holds one day slice plus
fixed-size accumulators and seeded reservoirs.  The gate: growing the
campaign 10x must grow the streaming fold's peak traced memory by
less than ``MAX_GROWTH_FACTOR`` (it is O(day), not O(campaign)), and
at the long horizon the fold must stay under half the peak of simply
*decoding* the batch state from the same store — otherwise the layer
would not be earning its keep.
"""

import os
import shutil
import tempfile
import tracemalloc

import pytest

from repro.analysis.streaming import StreamingAnalyzer
from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.reporting import render_streaming_report
from repro.reporting.tables import format_table

pytestmark = pytest.mark.streaming

SMOKE = os.environ.get("BENCH_STREAMING_SMOKE") == "1"

#: Campaign lengths compared: the long horizon is 10x the short one
#: (4x in CI smoke mode, to keep the leg quick).
BASE_DAYS = 3 if SMOKE else 6
FACTOR = 4 if SMOKE else 10

_BASE = dict(
    seed=7,
    scale=0.004,
    message_scale=0.05,
    join_day=2,
)

#: Streaming fold peak may grow by at most this factor over a 10x
#: longer campaign (a flat curve lands near 1.0; linear would be ~10).
MAX_GROWTH_FACTOR = 3.0

#: At the long horizon the fold must use at most this fraction of the
#: peak taken by decoding the batch study state from the same store.
MAX_FRAC_OF_BATCH = 0.5


def _traced_peak(fn):
    """(peak traced bytes, result) of one call, isolated per phase."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
        return peak, result
    finally:
        tracemalloc.stop()


def _campaign(n_days: int, workdir: str) -> str:
    store_dir = os.path.join(workdir, f"store-{n_days}")
    config = StudyConfig(n_days=n_days, **_BASE)
    Study(config).run(checkpoint_dir=store_dir, slices=True)
    return store_dir


def _measure(n_days: int, workdir: str):
    store_dir = _campaign(n_days, workdir)

    def fold():
        store = RunStore.open(store_dir)
        analyzer = StreamingAnalyzer.from_store(store)
        return analyzer, render_streaming_report(
            analyzer, _BASE["scale"]
        )

    stream_peak, (analyzer, report) = _traced_peak(fold)
    batch_peak, study = _traced_peak(lambda: Study.resume(store_dir))
    assert analyzer.days_folded == n_days
    assert "campaign rollup folded" in report
    return {
        "n_days": n_days,
        "stream_peak": stream_peak,
        "batch_peak": batch_peak,
    }


def _mib(n_bytes: int) -> str:
    return f"{n_bytes / 2**20:.2f} MiB"


def test_streaming_memory_bounded(emit):
    workdir = tempfile.mkdtemp(prefix="bench-streaming-")
    try:
        short = _measure(BASE_DAYS, workdir)
        long = _measure(BASE_DAYS * FACTOR, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    growth = long["stream_peak"] / short["stream_peak"]
    frac = long["batch_peak"] / long["stream_peak"]
    rows = [
        [
            f"{r['n_days']} days",
            _mib(r["stream_peak"]),
            _mib(r["batch_peak"]),
            f"{r['batch_peak'] / r['stream_peak']:.1f}x",
        ]
        for r in (short, long)
    ]
    rows.append(
        [
            f"growth over {FACTOR}x days",
            f"{growth:.2f}x (gate < {MAX_GROWTH_FACTOR}x)",
            f"{long['batch_peak'] / short['batch_peak']:.2f}x",
            "",
        ]
    )
    emit(
        "bench_streaming",
        format_table(
            [
                "campaign",
                "streaming fold peak",
                "batch decode peak",
                "batch/stream",
            ],
            rows,
            title=(
                "Streaming analysis memory (peak traced bytes: fold + "
                "render vs decoding the batch state from the same store)"
            ),
        ),
    )
    assert growth < MAX_GROWTH_FACTOR, (
        f"streaming fold peak grew {growth:.2f}x over a {FACTOR}x "
        f"longer campaign (gate: < {MAX_GROWTH_FACTOR}x) — the fold "
        "is no longer O(day)"
    )
    assert long["stream_peak"] < long["batch_peak"] * MAX_FRAC_OF_BATCH, (
        f"streaming fold peak {_mib(long['stream_peak'])} is not under "
        f"{MAX_FRAC_OF_BATCH:.0%} of the batch decode peak "
        f"{_mib(long['batch_peak'])} at {long['n_days']} days"
    )
