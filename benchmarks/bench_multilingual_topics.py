"""Section 4 prose: LDA on Spanish and Portuguese tweets.

The paper repeats its topic modeling for other popular languages and
reports (without a table, "due to space constraints") that COVID-19
topics emerge in Spanish on WhatsApp and Telegram, and politics-related
topics in Spanish on Telegram and Portuguese on WhatsApp — none of
which appear in English.  This bench regenerates that analysis.
"""

from repro.analysis.topics import extract_topics
from repro.reporting.tables import format_table


def test_multilingual_topics(benchmark, bench_dataset, emit):
    targets = (
        ("whatsapp", "es", 4),
        ("telegram", "es", 4),
        ("whatsapp", "pt", 4),
    )

    def run():
        return {
            (platform, lang): extract_topics(
                bench_dataset, platform, n_topics=k, n_iter=40, seed=1,
                lang=lang,
            )
            for platform, lang, k in targets
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (platform, lang), result in results.items():
        for topic in result.topics:
            rows.append(
                [platform, lang, topic.label, f"{topic.share:.0%}",
                 " ".join(topic.top_terms[:6])]
            )
    emit(
        "multilingual_topics",
        format_table(
            ["platform", "lang", "label", "share", "top terms"],
            rows,
            title="Non-English LDA topics (paper Section 4, prose)",
        ),
    )

    labels_wa_es = {t.label for t in results[("whatsapp", "es")].topics}
    labels_tg_es = {t.label for t in results[("telegram", "es")].topics}
    labels_wa_pt = {t.label for t in results[("whatsapp", "pt")].topics}
    assert any("COVID" in label for label in labels_wa_es)
    assert any("COVID" in label for label in labels_tg_es)
    assert any("Politics" in label for label in labels_tg_es)
    assert any("Politics" in label for label in labels_wa_pt)
