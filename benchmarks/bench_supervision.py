"""Benchmark: supervision overhead on a crash-free parallel campaign.

The supervised engine (:class:`repro.parallel.SupervisedEngine`) turns
the pool's blind ``recv()`` collection loop into deadline-bounded
polling over reply pipes and process sentinels, plus per-day restart
bookkeeping.  All of that must be invisible when nothing goes wrong:
the gate is that the supervised monitor stage costs at most
``MAX_OVERHEAD`` (5 %) more wall-clock than the same campaign driven
through the bare engine.

A third campaign with one worker SIGKILLed mid-probe is timed for
context (no gate): it shows what one crash-heal cycle — in-parent
shard re-execution plus a respawn — actually costs.

Smoke mode (``BENCH_SUPERVISION_SMOKE=1``) runs a miniature campaign
through the same arithmetic and asserts the overhead parses as a
finite number without enforcing the threshold — CI uses it to catch
bit-rot in the gate itself.
"""

import math
import os
import time

import pytest

import repro.core.study as study_mod
from repro.core.study import Study, StudyConfig
from repro.reporting.tables import format_table
from repro.telemetry import Telemetry

pytestmark = pytest.mark.parallel

SMOKE = os.environ.get("BENCH_SUPERVISION_SMOKE") == "1"

#: Same campaign shape as bench_parallel: paper-scale probe volume.
_BASE = dict(
    seed=7,
    n_days=8,
    scale=0.1,
    message_scale=0.05,
    join_day=3,
)
if SMOKE:
    _BASE = dict(
        seed=7, n_days=4, scale=0.01, message_scale=0.05, join_day=1
    )

WORKERS = 2
MAX_OVERHEAD = 0.05
KILL_DAY = _BASE["join_day"]
#: Wall-clock repeats per measured configuration; the minimum is the
#: honest estimate (noise on a shared host only ever adds time).
REPEATS = 1 if SMOKE else 3


def _run(kill_worker=None) -> dict:
    study = Study(
        StudyConfig(**_BASE), telemetry=Telemetry(enabled=True)
    )
    fired = []
    if kill_worker is not None:
        def hook(day):
            if day == KILL_DAY and not fired:
                fired.append(True)
                return kill_worker
            return None

        study.worker_kill_hook = hook
    start = time.perf_counter()
    study.run(workers=WORKERS)
    wall_s = time.perf_counter() - start
    metrics = study.telemetry.metrics
    assert kill_worker is None or fired
    return {
        "wall_s": wall_s,
        "monitor_s": study.telemetry.profiler().stage_wall_s("monitor"),
        "crashes": metrics.counter_total("parallel_worker_crashes_total"),
        "reexec_s": metrics.counter_total("parallel_reexec_seconds_total"),
        "restarts": metrics.counter_total("parallel_worker_restarts_total"),
    }


def _best(runs) -> dict:
    return min(runs, key=lambda r: r["monitor_s"])


def test_supervision_overhead(emit, monkeypatch):
    # The bare baseline: the same campaign with the supervision layer
    # stripped — the study hands the raw engine straight through.
    # Runs alternate so host drift hits both sides evenly; the fastest
    # of each side is compared.
    bare_runs, supervised_runs = [], []
    for _ in range(REPEATS):
        with monkeypatch.context() as patch:
            patch.setattr(
                study_mod, "SupervisedEngine", lambda engine, **_kw: engine
            )
            bare_runs.append(_run())
        supervised_runs.append(_run())
    bare = _best(bare_runs)
    supervised = _best(supervised_runs)
    healed = _run(kill_worker=1)

    overhead = supervised["monitor_s"] / bare["monitor_s"] - 1.0
    heal_cost_s = healed["monitor_s"] - supervised["monitor_s"]

    rows = [
        (
            f"bare engine monitor ({WORKERS} workers)",
            f"{bare['monitor_s']:.3f} s",
            "baseline",
        ),
        (
            "supervised monitor (crash-free)",
            f"{supervised['monitor_s']:.3f} s",
            f"{overhead:+.1%}",
        ),
        (
            f"gate (overhead <= {MAX_OVERHEAD:.0%})",
            f"{overhead:+.1%}",
            "PASS" if overhead <= MAX_OVERHEAD else "FAIL",
        ),
        (
            f"supervised monitor (1 SIGKILL at day {KILL_DAY})",
            f"{healed['monitor_s']:.3f} s",
            f"{heal_cost_s:+.3f} s",
        ),
        (
            "  crash-heal cycle",
            f"{int(healed['crashes'])} crash, "
            f"{int(healed['restarts'])} restart",
            f"re-exec {healed['reexec_s']:.3f} s",
        ),
    ]
    emit(
        "bench_supervision",
        format_table(
            ("measurement", "value", "delta"),
            rows,
            title=(
                f"Supervised pool overhead ({_BASE['n_days']}-day "
                f"campaign, scale {_BASE['scale']}, "
                f"best of {REPEATS}"
                + (", SMOKE" if SMOKE else "")
                + ")"
            ),
        ),
    )

    assert math.isfinite(overhead)
    assert healed["crashes"] == 1 and healed["restarts"] == 1
    if SMOKE:
        return  # gate arithmetic verified; threshold needs real scale
    assert overhead <= MAX_OVERHEAD, (
        f"supervision costs {overhead:+.1%} on a crash-free monitor "
        f"pass, above the {MAX_OVERHEAD:.0%} gate"
    )
