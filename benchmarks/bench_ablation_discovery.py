"""Ablation: Search-only vs Stream-only vs merged discovery.

The paper merged both Twitter APIs after observing that each returns a
different subset of matching tweets.  This ablation quantifies the
merge benefit: the merged engine should recover strictly more tweets
(and marginally more URLs) than either source alone.
"""

from repro.core.discovery import DiscoveryEngine
from repro.reporting.tables import format_table
from repro.twitter.search import SearchAPI
from repro.twitter.streaming import StreamingAPI


def run_discovery(world, n_days, use_search, use_stream):
    search = SearchAPI(world.twitter) if use_search else None
    stream = StreamingAPI(world.twitter) if use_stream else None
    engine = DiscoveryEngine(search, stream)
    for day in range(n_days):
        engine.run_day(day)
    return engine


def test_ablation_discovery(benchmark, bench_study, emit):
    study, dataset = bench_study
    world = study.world
    n_days = dataset.n_days

    def run_all():
        return {
            "search-only": run_discovery(world, n_days, True, False),
            "stream-only": run_discovery(world, n_days, False, True),
            "merged": run_discovery(world, n_days, True, True),
        }

    engines = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, f"{len(engine.tweets):,}", f"{len(engine.records):,}"]
        for name, engine in engines.items()
    ]
    emit(
        "ablation_discovery",
        format_table(
            ["engine", "#tweets collected", "#URLs discovered"],
            rows,
            title="Ablation: discovery source (the paper merged both APIs)",
        ),
    )

    merged = engines["merged"]
    for name in ("search-only", "stream-only"):
        assert len(merged.tweets) > len(engines[name].tweets)
        assert len(merged.records) >= len(engines[name].records)
