"""Fig 5: staleness — group age when first shared on Twitter.

Expected shape: WhatsApp groups are "fresh" (76 % shared on their
creation day, only 10 % older than a year); Telegram/Discord advertise
older groups (< 30 % same-day, 25-29 % older than a year).
"""

from repro.analysis.staleness import staleness
from repro.reporting import render_fig5


def test_fig5(benchmark, bench_dataset, emit):
    text = benchmark(render_fig5, bench_dataset)
    emit("fig5", text)

    res = {
        p: staleness(bench_dataset, p)
        for p in ("whatsapp", "telegram", "discord")
    }
    assert res["whatsapp"].same_day_frac > 0.6
    assert res["telegram"].same_day_frac < 0.4
    assert res["discord"].same_day_frac < 0.4
    assert res["whatsapp"].over_year_frac < res["telegram"].over_year_frac
    assert res["whatsapp"].over_year_frac < res["discord"].over_year_frac
