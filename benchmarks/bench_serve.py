"""Benchmark: serve-daemon query latency/throughput and read caching.

Two gates over an in-process :class:`~repro.serve.ServeDaemon` whose
campaign has run to completion (so timings measure the query path,
not the simulation):

* **load gate** — the seeded persona mix from
  :mod:`repro.serve.load` (the scenario-registry personas:
  lurker, poster, spammer, admin) must finish error-free with overall p99 latency at
  most ``MAX_P99_S`` and throughput at least ``MIN_RPS``;
* **read-cache gate** — with the store's decompress cache enabled, a
  repeat read of the same day record must return byte-identical
  payload without touching the object file, and the hot read path
  must beat the cold (gunzip + digest check) path by at least
  ``MIN_READ_SPEEDUP``.

Smoke mode (``BENCH_SERVE_SMOKE=1``) runs a miniature campaign
through the same arithmetic and asserts the numbers parse as finite
without enforcing thresholds — CI uses it to catch bit-rot in the
gates themselves on shared 1-core runners.
"""

import math
import os
import time

import pytest

from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.reporting.tables import format_table
from repro.serve import ServeConfig, ServeDaemon, run_load

pytestmark = pytest.mark.serve

SMOKE = os.environ.get("BENCH_SERVE_SMOKE") == "1"

_BASE = dict(seed=7, n_days=8, scale=0.01, message_scale=0.05, join_day=3)
if SMOKE:
    _BASE = dict(
        seed=7, n_days=4, scale=0.004, message_scale=0.05, join_day=1
    )

CLIENTS = 3 if SMOKE else 6
REQUESTS = 10 if SMOKE else 60
LOAD_SEED = 11

#: Loopback query service against cached, pre-rendered bodies: the
#: p99 bound is generous (an anchor unpickle on a cold day costs
#: ~tens of ms at bench scale) and throughput asks only that the
#: threading server actually overlaps its readers.
MAX_P99_S = 0.25
MIN_RPS = 150.0
#: A cached repeat read skips open+gunzip+sha256; anything under 2x
#: means the cache is not actually short-circuiting the read path.
MIN_READ_SPEEDUP = 2.0
READ_REPEATS = 20 if SMOKE else 200


@pytest.fixture(scope="module")
def serving(tmp_path_factory):
    """A daemon over a completed campaign, torn down after the module."""
    store_dir = tmp_path_factory.mktemp("serve-bench") / "store"
    daemon = ServeDaemon(
        Study(StudyConfig(**_BASE)),
        ServeConfig(),
        checkpoint_dir=store_dir,
    )
    daemon.start()
    assert daemon.driver.finished.wait(600)
    assert daemon.driver.phase == "complete"
    yield daemon
    daemon.close()


def test_load_gate(serving, emit):
    # Warm-up pass primes the response cache the way a steady-state
    # daemon runs; the measured pass replays the same seeded mix.
    run_load(serving.url, clients=CLIENTS, requests=REQUESTS, seed=LOAD_SEED)
    report = run_load(
        serving.url, clients=CLIENTS, requests=REQUESTS, seed=LOAD_SEED
    )

    p99_s = report.latency(0.99)
    rows = [
        (
            persona,
            f"{stats.requests}",
            f"{report.latency(0.50, persona) * 1e3:.2f} ms",
            f"{report.latency(0.99, persona) * 1e3:.2f} ms",
        )
        for persona, stats in sorted(report.personas.items())
    ]
    rows += [
        (
            "total",
            f"{report.total_requests}",
            f"{report.latency(0.50) * 1e3:.2f} ms",
            f"{p99_s * 1e3:.2f} ms",
        ),
        (
            f"gate (p99 <= {MAX_P99_S * 1e3:.0f} ms, "
            f">= {MIN_RPS:.0f} req/s)",
            f"{report.throughput_rps:.0f} req/s",
            "-",
            "SMOKE" if SMOKE else (
                "PASS"
                if p99_s <= MAX_P99_S and report.throughput_rps >= MIN_RPS
                else "FAIL"
            ),
        ),
    ]
    emit(
        "bench_serve",
        format_table(
            ("persona", "requests", "p50", "p99"),
            rows,
            title=(
                f"Serve daemon load ({CLIENTS} clients x {REQUESTS} "
                f"requests, seed {LOAD_SEED}, {_BASE['n_days']}-day "
                f"campaign, scale {_BASE['scale']}, "
                f"{os.cpu_count()} cores"
                + (", SMOKE" if SMOKE else "")
                + ")"
            ),
        ),
    )

    assert report.total_errors == 0
    assert math.isfinite(p99_s) and math.isfinite(report.throughput_rps)
    if SMOKE:
        return  # gate arithmetic verified; thresholds need real scale
    assert p99_s <= MAX_P99_S, (
        f"p99 latency {p99_s * 1e3:.1f} ms above the "
        f"{MAX_P99_S * 1e3:.0f} ms gate"
    )
    assert report.throughput_rps >= MIN_RPS, (
        f"throughput {report.throughput_rps:.0f} req/s below the "
        f"{MIN_RPS:.0f} req/s gate"
    )


def test_read_cache_gate(serving, emit):
    """Repeated reads of one day record: cached vs uncached path."""
    store = RunStore.open(serving.view.directory)
    day = _BASE["n_days"] - 1

    def timed_reads() -> float:
        start = time.perf_counter()
        for _ in range(READ_REPEATS):
            payload = store.read_day(day)
        elapsed = time.perf_counter() - start
        return payload, elapsed

    store.disable_read_cache()
    cold_payload, cold_s = timed_reads()
    store.enable_read_cache(4)
    store.read_day(day)  # populate: the one gunzip the cache allows
    hot_payload, hot_s = timed_reads()
    speedup = cold_s / hot_s if hot_s > 0 else float("inf")

    rows = [
        (
            f"uncached ({READ_REPEATS} reads)",
            f"{cold_s * 1e3:.2f} ms",
            f"{len(cold_payload)} B/read",
        ),
        (
            f"cached ({READ_REPEATS} reads)",
            f"{hot_s * 1e3:.2f} ms",
            "byte-identical"
            if hot_payload == cold_payload
            else "MISMATCH",
        ),
        (
            f"gate (speedup >= {MIN_READ_SPEEDUP:.0f}x)",
            f"{speedup:.1f}x",
            "SMOKE" if SMOKE else (
                "PASS" if speedup >= MIN_READ_SPEEDUP else "FAIL"
            ),
        ),
    ]
    emit(
        "bench_serve_read_cache",
        format_table(
            ("measurement", "wall", "note"),
            rows,
            title=(
                f"Store decompress cache (day {day} anchor, "
                f"{os.cpu_count()} cores"
                + (", SMOKE" if SMOKE else "")
                + ")"
            ),
        ),
    )

    assert hot_payload == cold_payload
    assert math.isfinite(speedup) or hot_s == 0
    if SMOKE:
        return
    assert speedup >= MIN_READ_SPEEDUP, (
        f"cached reads only {speedup:.1f}x faster than gunzip path, "
        f"below the {MIN_READ_SPEEDUP:.0f}x gate"
    )
