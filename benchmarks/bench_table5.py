"""Table 5: Discord linked-account breakdown.

Expected shape: Twitch leads (paper: 20.4 %), Steam second, Facebook
and Skype at the bottom (< 1 %).
"""

from repro.analysis.privacy import discord_linked_accounts
from repro.reporting import render_table5


def test_table5(benchmark, bench_dataset, emit):
    text = benchmark(render_table5, bench_dataset)
    emit("table5", text)

    breakdown = discord_linked_accounts(bench_dataset)
    fracs = {name: frac for name, _, frac in breakdown.rows}
    assert max(fracs, key=fracs.get) == "twitch"
    assert fracs["twitch"] > fracs["steam"] > fracs["facebook"]
    assert fracs["facebook"] < 0.02
