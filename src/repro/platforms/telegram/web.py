"""Telegram Web-client preview (no account required).

The paper's custom scraper fetched each group's web page to record the
title, member count, number of members online, and whether the chat
room is a channel or a group (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RevokedURLError
from repro.platforms.base import GroupKind
from repro.platforms.telegram.service import TelegramService

__all__ = ["TelegramPreview", "TelegramWebClient"]


@dataclass(frozen=True)
class TelegramPreview:
    """What the Telegram web page for a group shows without joining.

    Attributes:
        title: Group/channel title.
        size: Member count at the time of the visit.
        online: Members online at the time of the visit.
        kind: Whether the chat room is a channel or a group.
    """

    title: str
    size: int
    online: int
    kind: GroupKind


class TelegramWebClient:
    """Read-only web-page scraper for Telegram groups and channels."""

    def __init__(self, service: TelegramService) -> None:
        self._service = service

    def preview(self, url: str, t: float) -> TelegramPreview:
        """Fetch and parse the group's web page at time ``t``.

        Raises:
            UnknownURLError: The URL never existed.
            RevokedURLError: The invite has been revoked / the group
                deleted; the page shows nothing else.
        """
        code = TelegramService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"telegram URL revoked: {url}")
        return TelegramPreview(
            title=record.title,
            size=record.size_on(t),
            online=record.online_on(t),
            kind=record.kind,
        )
