"""Simulated Telegram: service, Web-client preview, and data API."""

from repro.platforms.telegram.api import TelegramAPI
from repro.platforms.telegram.service import (
    TELEGRAM_CAPABILITIES,
    TELEGRAM_GROUP_MAX_MEMBERS,
    TelegramService,
)
from repro.platforms.telegram.web import TelegramPreview, TelegramWebClient

__all__ = [
    "TELEGRAM_CAPABILITIES",
    "TELEGRAM_GROUP_MAX_MEMBERS",
    "TelegramAPI",
    "TelegramPreview",
    "TelegramService",
    "TelegramWebClient",
]
