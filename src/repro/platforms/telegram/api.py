"""Telegram data API (the paper's Section 3.3 collection channel).

Telegram, unlike WhatsApp, has a public API: after joining a group with
an account, the full message history *since the group was created* is
retrievable, along with the member list — unless the administrators
opted to hide it, which the paper found to be the case in 76 of its
100 joined groups.  User profiles expose a phone number only for the
~0.68 % of users who opt in to phone visibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    APIRateLimitError,
    MemberListHiddenError,
    NotAMemberError,
    RevokedURLError,
)
from repro.platforms.base import GroupKind, GroupRecord, Message
from repro.platforms.telegram.service import TelegramService
from repro.privacy.phone import PhoneNumber

__all__ = ["TelegramAPI", "TelegramUserInfo"]


@dataclass(frozen=True)
class TelegramUserInfo:
    """A Telegram user profile as the API exposes it to other members.

    ``phone`` is None unless the user opted in to phone visibility.
    """

    user_id: str
    display_name: str
    phone: Optional[PhoneNumber]


class TelegramAPI:
    """An authenticated Telegram account speaking the data API.

    The paper names Telegram's API rate limits as the constraint that
    capped its collection at 100 groups.  ``max_calls`` makes the limit
    explicit: when set, the account's flood-wait kicks in after that
    many API calls and every further call raises
    :class:`~repro.errors.APIRateLimitError` until :meth:`reset_quota`.
    The default (None) leaves the account unthrottled, which is what
    the core pipeline uses (it stays well under real limits).
    """

    def __init__(
        self,
        service: TelegramService,
        account_id: str,
        max_calls: Optional[int] = None,
    ) -> None:
        if max_calls is not None and max_calls < 1:
            raise ValueError(f"max_calls must be >= 1, got {max_calls}")
        self._service = service
        self.account_id = account_id
        self._joined: Dict[str, float] = {}
        self._max_calls = max_calls
        self.calls_made = 0

    def _count_call(self) -> None:
        if self._max_calls is not None and self.calls_made >= self._max_calls:
            raise APIRateLimitError(
                f"account {self.account_id} hit its flood-wait after "
                f"{self._max_calls} API calls"
            )
        self.calls_made += 1

    def reset_quota(self) -> None:
        """Clear the flood-wait (a new rate window has begun)."""
        self.calls_made = 0

    @property
    def joined_gids(self) -> List[str]:
        """Ids of the groups this account has joined."""
        return list(self._joined)

    def join(self, url: str, t: float) -> GroupRecord:
        """Join the group behind ``url`` (channels.joinChannel)."""
        self._count_call()
        code = TelegramService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"telegram URL revoked: {url}")
        self._joined.setdefault(record.gid, t)
        return record

    def _require_membership(self, gid: str) -> float:
        if gid not in self._joined:
            raise NotAMemberError(
                f"account {self.account_id} has not joined {gid}"
            )
        return self._joined[gid]

    def creation_date(self, gid: str) -> float:
        """Group creation time (API-visible to members)."""
        self._count_call()
        self._require_membership(gid)
        return self._service.group(gid).created_t

    def kind(self, gid: str) -> GroupKind:
        """Whether the chat room is a group or a channel."""
        self._count_call()
        self._require_membership(gid)
        return self._service.group(gid).kind

    def creator(self, gid: str) -> str:
        """The creator's user id (member-visible only — the paper knows
        Telegram creators solely for the 100 joined groups)."""
        self._count_call()
        self._require_membership(gid)
        return self._service.group(gid).creator_id

    def history(
        self, gid: str, until: float, scale: float = 1.0, with_text: bool = True
    ) -> Iterator[Message]:
        """The full message history since creation, up to ``until``.

        (Unlike WhatsApp, Telegram serves pre-join history.)
        """
        self._count_call()
        self._require_membership(gid)
        record = self._service.group(gid)
        return record.messages_between(
            record.created_t, until, scale=scale, with_text=with_text
        )

    def members(self, gid: str, t: float) -> List[str]:
        """Member user ids.

        Raises:
            MemberListHiddenError: Admins hid the member list (the
                default outcome — ~76 % of groups in the paper).
        """
        self._count_call()
        self._require_membership(gid)
        if self._service.member_list_hidden(gid):
            raise MemberListHiddenError(
                f"member list of {gid} is hidden by its administrators"
            )
        return self._service.group(gid).roster(t)

    def get_user(self, user_id: str) -> TelegramUserInfo:
        """Fetch a user profile, honouring phone-visibility opt-in."""
        self._count_call()
        profile = self._service.user_profile(user_id)
        return TelegramUserInfo(
            user_id=profile.user_id,
            display_name=profile.display_name,
            phone=profile.phone if profile.phone_visible else None,
        )
