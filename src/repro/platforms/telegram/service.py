"""Telegram ground-truth service.

Telegram has two public chat-room flavours: *groups* (many-to-many, up
to 200 K members) and *channels* (few-to-many, unlimited members).  The
paper treats both uniformly as "groups" for its analyses; we keep the
distinction in :class:`~repro.platforms.base.GroupKind` because it
drives who can post (channels: creator + admins only) and hence the
active-member statistics of Section 5.

Invite URLs come in several shapes — ``t.me/<name>``,
``t.me/joinchat/<hash>``, ``telegram.me/<name>`` — matching the URL
patterns the paper searched Twitter for.
"""

from __future__ import annotations

import re

from repro.platforms.base import (
    PlatformCapabilities,
    PlatformService,
    PlatformUserModel,
)
from repro.rng import stable_uniform

__all__ = [
    "TELEGRAM_CAPABILITIES",
    "TELEGRAM_GROUP_MAX_MEMBERS",
    "TELEGRAM_CHANNEL_MAX_MEMBERS",
    "TelegramService",
]

TELEGRAM_GROUP_MAX_MEMBERS = 200_000
#: Channels are unlimited; use a large finite cap for simulation.
TELEGRAM_CHANNEL_MAX_MEMBERS = 5_000_000

#: Fraction of groups whose administrators hide the member list.  The
#: paper obtained member lists in only 24 of its 100 joined groups.
MEMBER_LIST_HIDDEN_PROB = 0.76

TELEGRAM_CAPABILITIES = PlatformCapabilities(
    name="Telegram",
    initial_release="August 2013",
    user_base="400 Million",
    registration="Phone",
    public_chat_options="Groups and Channels",
    max_members=TELEGRAM_GROUP_MAX_MEMBERS,
    has_data_api=True,
    message_forwarding="Yes",
    end_to_end_encryption='Only for "secret" chats',
)

_INVITE_RE = re.compile(
    r"(?:https?://)?(?:t\.me|telegram\.me|telegram\.org)/"
    r"(?:joinchat/)?([A-Za-z0-9_]{4,40})"
)


class TelegramService(PlatformService):
    """Ground truth for the simulated Telegram platform."""

    name = "telegram"
    capabilities = TELEGRAM_CAPABILITIES
    invite_code_length = 16

    def __init__(self, seed: int, user_model: PlatformUserModel) -> None:
        super().__init__(seed, user_model)

    def invite_url(self, gid: str) -> str:
        """A shareable URL, rotating between the pattern variants.

        The variant is a stable function of the group id so repeated
        calls agree; all variants resolve to the same group.
        """
        code = self.invite_code(gid)
        u = stable_uniform(f"telegram/urlvariant/{gid}")
        if u < 0.55:
            return f"https://t.me/{code}"
        if u < 0.85:
            return f"https://t.me/joinchat/{code}"
        return f"https://telegram.me/{code}"

    @staticmethod
    def parse_invite_url(url: str) -> str:
        """Extract the invite code / public name from a Telegram URL."""
        match = _INVITE_RE.search(url)
        if not match:
            raise ValueError(f"not a Telegram group URL: {url!r}")
        return match.group(1)

    def member_list_hidden(self, gid: str) -> bool:
        """Whether this group's admins hid the member list."""
        return stable_uniform(f"telegram/hidden/{gid}") < MEMBER_LIST_HIDDEN_PROB
