"""Simulated messaging platforms: WhatsApp, Telegram, and Discord.

Each platform package exposes (a) a *service* holding the simulated
ground truth (groups, trajectories, users) and (b) the *observation
clients* the paper's pipeline used — web-client landing-page previews
for WhatsApp/Telegram, REST-style APIs for Telegram/Discord — with the
same access restrictions (join limits, hidden member lists, bot
restrictions, invite expiry) the authors had to work around.
"""

from repro.platforms.base import (
    GroupKind,
    GroupPlan,
    GroupRecord,
    Message,
    MessageType,
    PlatformCapabilities,
    PlatformService,
    UserProfile,
)
from repro.platforms.discord import DiscordAPI, DiscordService
from repro.platforms.telegram import TelegramAPI, TelegramService, TelegramWebClient
from repro.platforms.whatsapp import WhatsAppService, WhatsAppWebClient

__all__ = [
    "DiscordAPI",
    "DiscordService",
    "GroupKind",
    "GroupPlan",
    "GroupRecord",
    "Message",
    "MessageType",
    "PlatformCapabilities",
    "PlatformService",
    "TelegramAPI",
    "TelegramService",
    "TelegramWebClient",
    "UserProfile",
    "WhatsAppService",
    "WhatsAppWebClient",
]
