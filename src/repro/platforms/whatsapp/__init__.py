"""Simulated WhatsApp: service (ground truth) + Web-client observer."""

from repro.platforms.whatsapp.service import (
    WHATSAPP_CAPABILITIES,
    WHATSAPP_MAX_MEMBERS,
    WhatsAppService,
)
from repro.platforms.whatsapp.web import (
    WhatsAppAccount,
    WhatsAppPreview,
    WhatsAppWebClient,
)

__all__ = [
    "WHATSAPP_CAPABILITIES",
    "WHATSAPP_MAX_MEMBERS",
    "WhatsAppAccount",
    "WhatsAppPreview",
    "WhatsAppService",
    "WhatsAppWebClient",
]
