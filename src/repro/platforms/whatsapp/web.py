"""WhatsApp Web-client observer.

Reproduces the paper's two observation channels:

* **Landing-page preview** (Section 3.2): opening a group URL without
  joining reveals the group title, current size, and — alarmingly — the
  creator's phone number (and hence country code).  This is the basis
  of the WhatsApp PII findings in Section 6.
* **Joined-group collection** (Section 3.3): after joining via the Web
  client, messages posted *after the join date* and the phone numbers
  of all members become visible.  A single account can join roughly
  250-300 groups before being banned; :class:`WhatsAppAccount` models
  that limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.errors import (
    GroupFullError,
    JoinLimitError,
    NotAMemberError,
    RevokedURLError,
)
from repro.platforms.base import GroupRecord, Message
from repro.platforms.whatsapp.service import WhatsAppService
from repro.privacy.phone import PhoneNumber
from repro.rng import derive_rng

__all__ = ["WhatsAppPreview", "WhatsAppWebClient", "WhatsAppAccount"]


@dataclass(frozen=True)
class WhatsAppPreview:
    """What the group-URL landing page shows without joining.

    Attributes:
        title: Group title.
        size: Member count at the time of the visit.
        creator_dialing_code: Country dialing code of the creator's
            phone (the paper derives group countries from this).
        creator_phone: The creator's full phone number.  WhatsApp
            exposes this to *anyone* holding the URL; the measurement
            pipeline must hash it before storage (Section 3.4 ethics).
    """

    title: str
    size: int
    creator_dialing_code: str
    creator_phone: PhoneNumber


class WhatsAppWebClient:
    """Read-only landing-page scraper (no account required)."""

    def __init__(self, service: WhatsAppService) -> None:
        self._service = service

    def preview(self, url: str, t: float) -> WhatsAppPreview:
        """Scrape the landing page of ``url`` at time ``t``.

        Raises:
            UnknownURLError: The URL never existed.
            RevokedURLError: The URL has been revoked; the landing page
                shows only the revocation notice.
        """
        code = WhatsAppService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"whatsapp URL revoked: {url}")
        creator = self._service.user_profile(record.creator_id)
        assert creator.phone is not None  # WhatsApp registration requires one
        return WhatsAppPreview(
            title=record.title,
            size=record.size_on(t),
            creator_dialing_code=creator.phone.dialing_code,
            creator_phone=creator.phone,
        )


class WhatsAppAccount:
    """A phone-registered account used to join groups and read messages.

    Attributes:
        account_id: Identifier of the account (one per SIM card in the
            paper's setup).
    """

    def __init__(self, service: WhatsAppService, account_id: str) -> None:
        self._service = service
        self.account_id = account_id
        self._joined: Dict[str, float] = {}  # gid -> join time
        # The empirical ban threshold is "between 250 and 300 groups";
        # each account draws its own limit from that range.
        rng = derive_rng(service.seed, f"whatsapp/account/{account_id}")
        self._join_limit = int(rng.integers(250, 301))

    @property
    def join_limit(self) -> int:
        """This account's empirically-drawn ban threshold."""
        return self._join_limit

    @property
    def joined_gids(self) -> List[str]:
        """Ids of the groups this account is currently a member of."""
        return list(self._joined)

    def join(self, url: str, t: float) -> GroupRecord:
        """Click "Join" on the landing page of ``url`` at time ``t``.

        Raises:
            JoinLimitError: The account hit its ban threshold.
            RevokedURLError: The invite is dead.
            GroupFullError: The group sits at WhatsApp's member cap.
        """
        if len(self._joined) >= self._join_limit:
            raise JoinLimitError(
                f"account {self.account_id} reached its limit of "
                f"{self._join_limit} WhatsApp groups"
            )
        code = WhatsAppService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"whatsapp URL revoked: {url}")
        if record.gid not in self._joined and (
            record.size_on(t) >= record.plan.member_cap
        ):
            raise GroupFullError(
                f"whatsapp group {record.gid} is full "
                f"({record.plan.member_cap} members)"
            )
        self._joined.setdefault(record.gid, t)
        return record

    def _require_membership(self, gid: str) -> float:
        if gid not in self._joined:
            raise NotAMemberError(
                f"account {self.account_id} is not a member of {gid}"
            )
        return self._joined[gid]

    def creation_date(self, gid: str) -> float:
        """Group creation time — visible only after joining."""
        self._require_membership(gid)
        return self._service.group(gid).created_t

    def messages(
        self, gid: str, until: float, scale: float = 1.0, with_text: bool = True
    ) -> Iterator[Message]:
        """Messages shared after this account joined (WhatsApp shows no
        pre-join history), up to time ``until``."""
        joined_at = self._require_membership(gid)
        record = self._service.group(gid)
        return record.messages_between(
            joined_at, until, scale=scale, with_text=with_text
        )

    def member_phone_numbers(self, gid: str, t: float) -> Dict[str, PhoneNumber]:
        """Phone numbers of all group members (visible to any member).

        This is the paper's headline WhatsApp PII leak: joining a group
        reveals every member's phone number.  Callers must hash before
        storing.
        """
        self._require_membership(gid)
        record = self._service.group(gid)
        numbers: Dict[str, PhoneNumber] = {}
        for user_id in record.roster(t):
            profile = self._service.user_profile(user_id)
            if profile.phone is not None:
                numbers[user_id] = profile.phone
        return numbers
