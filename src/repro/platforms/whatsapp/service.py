"""WhatsApp ground-truth service.

WhatsApp is the largest, most closed platform of the three: no data
API, phone-number registration, a 257-member cap on groups, and invite
URLs of the form ``https://chat.whatsapp.com/<gID>`` where gID is a
22-character token minted when the group is created.
"""

from __future__ import annotations

import re

from repro.platforms.base import (
    PlatformCapabilities,
    PlatformService,
    PlatformUserModel,
)

__all__ = ["WHATSAPP_CAPABILITIES", "WHATSAPP_MAX_MEMBERS", "WhatsAppService"]

#: The paper empirically reports groups "simultaneously with up to 257
#: users" and uses 257 as the cap in Section 5.
WHATSAPP_MAX_MEMBERS = 257

WHATSAPP_CAPABILITIES = PlatformCapabilities(
    name="WhatsApp",
    initial_release="January 2009",
    user_base="2 Billion",
    registration="Phone",
    public_chat_options="Groups",
    max_members=WHATSAPP_MAX_MEMBERS,
    has_data_api=False,  # only a Business API
    message_forwarding="Yes (up to 5 groups)",
    end_to_end_encryption="Yes",
)

_INVITE_RE = re.compile(
    r"(?:https?://)?chat\.whatsapp\.com/(?:invite/)?([A-Za-z0-9]{8,32})"
)


class WhatsAppService(PlatformService):
    """Ground truth for the simulated WhatsApp platform."""

    name = "whatsapp"
    capabilities = WHATSAPP_CAPABILITIES
    invite_code_length = 22

    def __init__(self, seed: int, user_model: PlatformUserModel) -> None:
        super().__init__(seed, user_model)

    def invite_url(self, gid: str) -> str:
        """The shareable group URL (``chat.whatsapp.com/<gID>``)."""
        return f"https://chat.whatsapp.com/{self.invite_code(gid)}"

    @staticmethod
    def parse_invite_url(url: str) -> str:
        """Extract the invite code from a WhatsApp group URL."""
        match = _INVITE_RE.search(url)
        if not match:
            raise ValueError(f"not a WhatsApp group URL: {url!r}")
        return match.group(1)
