"""Discord ground-truth service.

Discord users register with an *email* (no phone number — hence no
phone-number PII), create servers (guilds) with channels, and invite
others via ``discord.gg/<code>`` URLs.  Two properties drive the
paper's Discord findings:

* **Invite expiry**: invite links auto-expire after one day by default,
  which is why 68.4 % of discovered Discord URLs were revoked and
  67.4 % were already dead at the first daily observation.
* **Connected accounts**: profiles can link external accounts (Twitch,
  Steam, Twitter, …), exposed through the API — the Section 6 Discord
  PII leak.
"""

from __future__ import annotations

import re

from repro.platforms.base import (
    PlatformCapabilities,
    PlatformService,
    PlatformUserModel,
)

__all__ = [
    "DISCORD_CAPABILITIES",
    "DISCORD_MAX_MEMBERS",
    "DISCORD_USER_SERVER_LIMIT",
    "DiscordService",
]

DISCORD_MAX_MEMBERS = 250_000
#: Verified servers may host up to 500 K members.
DISCORD_VERIFIED_MAX_MEMBERS = 500_000
#: A single (non-Nitro) user account can join at most 100 servers.
DISCORD_USER_SERVER_LIMIT = 100

DISCORD_CAPABILITIES = PlatformCapabilities(
    name="Discord",
    initial_release="May 2015",
    user_base="250 Million",
    registration="Email",
    public_chat_options="Server",
    max_members=DISCORD_MAX_MEMBERS,
    has_data_api=True,
    message_forwarding="Only available via link and only for members",
    end_to_end_encryption="No",
)

_INVITE_RE = re.compile(
    r"(?:https?://)?(?:discord\.gg|discord\.com/invite)/([A-Za-z0-9]{2,16})"
)


class DiscordService(PlatformService):
    """Ground truth for the simulated Discord platform."""

    name = "discord"
    capabilities = DISCORD_CAPABILITIES
    invite_code_length = 8

    def __init__(self, seed: int, user_model: PlatformUserModel) -> None:
        super().__init__(seed, user_model)

    def invite_url(self, gid: str) -> str:
        """A shareable invite URL (mostly ``discord.gg``, some
        ``discord.com/invite`` — both patterns the paper searched)."""
        code = self.invite_code(gid)
        from repro.rng import stable_uniform

        if stable_uniform(f"discord/urlvariant/{gid}") < 0.8:
            return f"https://discord.gg/{code}"
        return f"https://discord.com/invite/{code}"

    @staticmethod
    def parse_invite_url(url: str) -> str:
        """Extract the invite code from a Discord invite URL."""
        match = _INVITE_RE.search(url)
        if not match:
            raise ValueError(f"not a Discord invite URL: {url!r}")
        return match.group(1)
