"""Discord REST API observers.

Two observer flavours, matching the paper's Section 3.3:

* :class:`DiscordBot` — a bot application.  Bots *cannot join servers
  on their own* (an administrator must add them), which is exactly why
  the authors fell back to a dedicated user account; we reproduce the
  restriction so the pipeline has to make the same choice.
* :class:`DiscordAPI` — a regular user account.  It can join up to 100
  servers, read messages on all channels since server creation, and
  fetch user profiles *including connected external accounts*.

Invite metadata (title, member counts, creator, creation date) is
available to anyone without joining, via ``get_invite``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import (
    BotRestrictionError,
    JoinLimitError,
    NotAMemberError,
    RevokedURLError,
)
from repro.platforms.base import GroupRecord, Message
from repro.platforms.discord.service import (
    DISCORD_USER_SERVER_LIMIT,
    DiscordService,
)

__all__ = ["DiscordAPI", "DiscordBot", "DiscordInviteInfo", "DiscordUserInfo"]


@dataclass(frozen=True)
class DiscordInviteInfo:
    """Metadata the REST API returns for an invite, without joining.

    Attributes:
        title: Server name.
        size: Total member count.
        online: Members currently online.
        creator_id: User id of the server creator.
        created_t: Server creation time (days since study start).
    """

    title: str
    size: int
    online: int
    creator_id: str
    created_t: float


@dataclass(frozen=True)
class DiscordUserInfo:
    """A Discord profile as exposed to fellow server members.

    ``linked_accounts`` is the Section 6 PII leak: tuples of
    (external platform, handle).
    """

    user_id: str
    display_name: str
    linked_accounts: Tuple


class DiscordBot:
    """A bot application — deliberately unable to join servers itself."""

    def __init__(self, service: DiscordService, bot_id: str) -> None:
        self._service = service
        self.bot_id = bot_id

    def join(self, url: str, t: float) -> GroupRecord:
        """Bots cannot self-join; always raises."""
        raise BotRestrictionError(
            "Discord bots cannot join servers on their own; a server "
            "administrator must add them"
        )


class DiscordAPI:
    """A regular user account speaking the Discord REST API."""

    def __init__(self, service: DiscordService, account_id: str) -> None:
        self._service = service
        self.account_id = account_id
        self._joined: Dict[str, float] = {}

    # -- no-join observation -------------------------------------------

    def get_invite(self, url: str, t: float) -> DiscordInviteInfo:
        """Resolve an invite URL to server metadata without joining.

        Raises:
            UnknownURLError: The code never existed.
            RevokedURLError: The invite expired or was revoked.
        """
        code = DiscordService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"discord invite expired/revoked: {url}")
        return DiscordInviteInfo(
            title=record.title,
            size=record.size_on(t),
            online=record.online_on(t),
            creator_id=record.creator_id,
            created_t=record.created_t,
        )

    # -- membership ------------------------------------------------------

    @property
    def joined_gids(self) -> List[str]:
        """Ids of the servers this account has joined."""
        return list(self._joined)

    def join(self, url: str, t: float) -> GroupRecord:
        """Join the server behind ``url`` with this user account.

        Raises:
            JoinLimitError: Already in 100 servers (the platform cap —
                the reason the paper joined exactly 100).
            RevokedURLError: The invite is dead.
        """
        if len(self._joined) >= DISCORD_USER_SERVER_LIMIT:
            raise JoinLimitError(
                f"account {self.account_id} is already in "
                f"{DISCORD_USER_SERVER_LIMIT} servers"
            )
        code = DiscordService.parse_invite_url(url)
        record = self._service.group_by_invite(code)
        if record.is_revoked_at(t):
            raise RevokedURLError(f"discord invite expired/revoked: {url}")
        self._joined.setdefault(record.gid, t)
        return record

    def _require_membership(self, gid: str) -> float:
        if gid not in self._joined:
            raise NotAMemberError(
                f"account {self.account_id} has not joined server {gid}"
            )
        return self._joined[gid]

    def history(
        self, gid: str, until: float, scale: float = 1.0, with_text: bool = True
    ) -> Iterator[Message]:
        """All messages on the server's channels since creation."""
        self._require_membership(gid)
        record = self._service.group(gid)
        return record.messages_between(
            record.created_t, until, scale=scale, with_text=with_text
        )

    def get_user(self, user_id: str) -> DiscordUserInfo:
        """Fetch a profile, exposing connected external accounts."""
        profile = self._service.user_profile(user_id)
        return DiscordUserInfo(
            user_id=profile.user_id,
            display_name=profile.display_name,
            linked_accounts=profile.linked_accounts,
        )
