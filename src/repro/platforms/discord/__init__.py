"""Simulated Discord: service (ground truth) + REST API observers."""

from repro.platforms.discord.api import (
    DiscordAPI,
    DiscordBot,
    DiscordInviteInfo,
    DiscordUserInfo,
)
from repro.platforms.discord.service import (
    DISCORD_CAPABILITIES,
    DISCORD_MAX_MEMBERS,
    DISCORD_USER_SERVER_LIMIT,
    DiscordService,
)

__all__ = [
    "DISCORD_CAPABILITIES",
    "DISCORD_MAX_MEMBERS",
    "DISCORD_USER_SERVER_LIMIT",
    "DiscordAPI",
    "DiscordBot",
    "DiscordInviteInfo",
    "DiscordService",
    "DiscordUserInfo",
]
