"""Common ground-truth model shared by the three platform simulators.

Design
------
The simulator must support the paper's full 38-day campaign over up to
hundreds of thousands of groups without materialising every message and
member up front.  Each group therefore carries a :class:`GroupPlan` — a
small set of sampled trajectory parameters — and the heavy artefacts
(daily sizes, member rosters, message histories, user profiles) are
computed *lazily and deterministically* from the study seed plus stable
string keys (see :mod:`repro.rng`).  Accessing the same group twice
yields identical data, regardless of access order.

The *observation boundary* is enforced by the per-platform clients
(``web.py`` / ``api.py`` modules); this module is the ground truth they
observe.
"""

from __future__ import annotations

import enum
import string
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import UnknownURLError
from repro.privacy.phone import PhoneNumber, random_phone
from repro.rng import derive_rng, stable_hash, stable_uniform
from repro.text.topicbank import COMMON_TERMS, LANGUAGE_VOCAB, PLATFORM_TOPICS

__all__ = [
    "GroupKind",
    "GroupPlan",
    "GroupRecord",
    "Message",
    "MessageType",
    "PlatformCapabilities",
    "PlatformService",
    "PlatformUserModel",
    "UserProfile",
]

#: Cap on how many roster members are materialised for one group; very
#: large Telegram groups/channels are sampled down to this many (the
#: paper likewise never enumerated 200 K-member groups in full).
ROSTER_MATERIALISE_CAP = 50_000

#: Cap (days) on how far back a message-history fetch will materialise.
HISTORY_DAYS_CAP = 365


class MessageType(enum.Enum):
    """Content type of a message (Table 1's supported-content row)."""

    TEXT = "text"
    IMAGE = "image"
    VIDEO = "video"
    AUDIO = "audio"
    STICKER = "sticker"
    DOCUMENT = "document"
    CONTACT = "contact"
    LOCATION = "location"
    SERVICE = "service"  # join/leave/edit notices (Telegram "other")


class GroupKind(enum.Enum):
    """Public chat-room flavours across the three platforms."""

    GROUP = "group"      # WhatsApp group / Telegram group
    CHANNEL = "channel"  # Telegram channel (few-to-many)
    SERVER = "server"    # Discord server (guild)


@dataclass(frozen=True)
class PlatformCapabilities:
    """Static platform characteristics (the rows of Table 1)."""

    name: str
    initial_release: str
    user_base: str
    registration: str
    public_chat_options: str
    max_members: int
    has_data_api: bool
    message_forwarding: str
    end_to_end_encryption: str


@dataclass(frozen=True)
class Message:
    """A single message inside a group.

    Attributes:
        message_id: Platform-unique id.
        group_id: Group the message was posted in.
        sender_id: Platform-local user id of the author.
        t: Simulation time of posting (days since study start; may be
            negative for history predating the study).
        mtype: Content type.
        text: Body text (empty for most non-text types).
    """

    message_id: str
    group_id: str
    sender_id: str
    t: float
    mtype: MessageType
    text: str = ""


@dataclass(frozen=True)
class UserProfile:
    """Ground-truth profile of a platform user.

    What an observer can actually *see* of this profile depends on the
    platform client used (e.g. Telegram hides ``phone`` unless
    ``phone_visible``); the clients enforce that, not this dataclass.
    """

    user_id: str
    display_name: str
    country: str
    phone: Optional[PhoneNumber] = None
    phone_visible: bool = False
    linked_accounts: Tuple = ()


@dataclass
class GroupPlan:
    """Sampled life plan of one group — everything lazy evaluation needs.

    Attributes:
        gid: Platform-unique group id.
        kind: Group/channel/server.
        title: Group title shown on landing pages.
        topic_label: Generative topic (drives message text).
        lang: Dominant language of the group.
        creator_id: Platform-local user id of the creator.
        created_t: Creation time (days since study start; negative means
            the group predates the study — the "staleness" of Fig 5).
        anchor_t: Trajectory anchor: the time of the group's first share
            on Twitter; ``size0`` is the member count at this time.
        size0: Member count at ``anchor_t``.
        slope: Net member growth per day (negative = shrinking).
        revoke_t: Time the invite URL dies (None = never during study).
        msg_rate: Mean messages per day.
        online_frac: Mean fraction of members online at any instant.
        active_frac: Fraction of members who ever post.
        sender_zipf: Zipf exponent of the per-member posting skew.
        member_cap: Platform's member limit for this chat kind.
    """

    gid: str
    kind: GroupKind
    title: str
    topic_label: str
    lang: str
    creator_id: str
    created_t: float
    anchor_t: float
    size0: int
    slope: float
    revoke_t: Optional[float]
    msg_rate: float
    online_frac: float
    active_frac: float
    sender_zipf: float
    member_cap: int


@dataclass(frozen=True)
class PlatformUserModel:
    """Parameters for materialising user profiles on one platform.

    Attributes:
        population: Size of the platform's user-id space from which
            group rosters draw (controls cross-group overlap).
        countries: Country codes for profile sampling.
        country_probs: Matching probabilities.
        has_phone: Whether accounts are registered with a phone number.
        phone_visible_prob: Probability the phone is visible to other
            users (Telegram's opt-in; 1.0 on WhatsApp, 0.0 on Discord).
        linked_account_prob: Probability a profile links >=1 external
            account (Discord only).
        linked_platform_weights: Relative weights of Table 5 platforms.
    """

    population: int
    countries: Tuple[str, ...]
    country_probs: Tuple[float, ...]
    has_phone: bool
    phone_visible_prob: float = 0.0
    linked_account_prob: float = 0.0
    linked_platform_weights: Tuple[Tuple[str, float], ...] = ()


_ALPHANUM = string.ascii_letters + string.digits


def _encode_token(key: str, length: int) -> str:
    """Derive a stable alphanumeric token of ``length`` chars from a key."""
    rng = np.random.default_rng(stable_hash(key))
    idx = rng.integers(0, len(_ALPHANUM), size=length)
    return "".join(_ALPHANUM[i] for i in idx)


# Message-type mixes per platform, calibrated to Fig 8.
_TYPE_MIXES: Dict[str, Tuple[Tuple[MessageType, float], ...]] = {
    "whatsapp": (
        (MessageType.TEXT, 0.78),
        (MessageType.STICKER, 0.10),
        (MessageType.IMAGE, 0.065),
        (MessageType.VIDEO, 0.030),
        (MessageType.AUDIO, 0.015),
        (MessageType.DOCUMENT, 0.005),
        (MessageType.CONTACT, 0.002),
        (MessageType.LOCATION, 0.003),
    ),
    "telegram": (
        (MessageType.TEXT, 0.85),
        (MessageType.IMAGE, 0.050),
        (MessageType.VIDEO, 0.030),
        (MessageType.STICKER, 0.020),
        (MessageType.AUDIO, 0.010),
        (MessageType.DOCUMENT, 0.010),
        (MessageType.SERVICE, 0.030),
    ),
    "discord": (
        (MessageType.TEXT, 0.96),
        (MessageType.IMAGE, 0.030),
        (MessageType.VIDEO, 0.005),
        (MessageType.DOCUMENT, 0.005),
    ),
}


class GroupRecord:
    """Ground truth of one group: plan + lazy materialisation.

    All accessors are pure functions of (study seed, gid, arguments), so
    repeated observation — e.g. the daily monitor hitting the landing
    page 38 times — is consistent.
    """

    def __init__(self, plan: GroupPlan, platform: "PlatformService") -> None:
        self.plan = plan
        self._platform = platform
        self._roster: Optional[List[str]] = None
        self._sender_cum: Optional[np.ndarray] = None  # truncated-Zipf CDF

    # -- identity -----------------------------------------------------

    @property
    def gid(self) -> str:
        return self.plan.gid

    @property
    def title(self) -> str:
        return self.plan.title

    @property
    def kind(self) -> GroupKind:
        return self.plan.kind

    @property
    def creator_id(self) -> str:
        return self.plan.creator_id

    @property
    def created_t(self) -> float:
        return self.plan.created_t

    # -- trajectory ---------------------------------------------------

    def is_revoked_at(self, t: float) -> bool:
        """True once the invite URL has died."""
        return self.plan.revoke_t is not None and t >= self.plan.revoke_t

    def size_on(self, t: float) -> int:
        """Member count at time ``t`` (piecewise-linear with jitter)."""
        plan = self.plan
        dt = max(t - plan.anchor_t, 0.0)
        base = plan.size0 + plan.slope * dt
        # Small deterministic day-to-day wiggle (+-1 %) so daily
        # snapshots are not perfectly linear.
        wiggle = 1.0 + 0.02 * (stable_uniform(f"{plan.gid}/size/{int(t)}") - 0.5)
        return int(np.clip(round(base * wiggle), 1, plan.member_cap))

    def online_on(self, t: float) -> int:
        """Members online at time ``t`` (Telegram/Discord expose this)."""
        size = self.size_on(t)
        jitter = 0.5 + stable_uniform(f"{self.plan.gid}/online/{int(t)}")
        online = int(round(size * self.plan.online_frac * jitter))
        return int(np.clip(online, 0, size))

    # -- roster -------------------------------------------------------

    def roster(self, t: float) -> List[str]:
        """Member user ids at time ``t`` (capped materialisation).

        The roster is a deterministic sample from the platform's user-id
        space; its prefix is stable over time, so a growing group keeps
        its earlier members.
        """
        size = min(self.size_on(t), ROSTER_MATERIALISE_CAP)
        if self._roster is None or len(self._roster) < size:
            rng = derive_rng(
                self._platform.seed, f"{self._platform.name}/roster/{self.gid}"
            )
            want = max(size, len(self._roster or ()))
            # Draw with a margin, dedup preserving order, keep `want`.
            draw = rng.integers(0, self._platform.user_model.population,
                                size=int(want * 1.5) + 16)
            seen: Dict[int, None] = {}
            for uid in draw:
                seen.setdefault(int(uid), None)
                if len(seen) >= want:
                    break
            self._roster = [self._platform.format_user_id(u) for u in seen]
        members = self._roster[:size]
        # The creator is always a member.
        if self.plan.creator_id not in members:
            members = [self.plan.creator_id] + members[: max(size - 1, 0)]
        return members

    def active_members(self, t: float) -> List[str]:
        """The subset of members who ever post (``active_frac``)."""
        roster = self.roster(t)
        n_active = max(1, int(round(len(roster) * self.plan.active_frac)))
        if self.kind is GroupKind.CHANNEL:
            # Channels are few-to-many: only the creator and a handful
            # of administrators post.
            n_active = min(len(roster), 3)
        return roster[:n_active]

    # -- messages -----------------------------------------------------

    def message_count_on(self, day: int, scale: float = 1.0) -> int:
        """Number of messages posted on whole day ``day``."""
        if day < int(np.floor(self.plan.created_t)):
            return 0
        if self.plan.revoke_t is not None and day > self.plan.revoke_t:
            # A dead invite URL does not imply a dead group, but revoked
            # groups in our world wind down: activity stops.
            return 0
        rng = derive_rng(
            self._platform.seed,
            f"{self._platform.name}/msgcount/{self.gid}/{day}",
        )
        return int(rng.poisson(self.plan.msg_rate * scale))

    def messages_between(
        self, t0: float, t1: float, scale: float = 1.0, with_text: bool = True
    ) -> Iterator[Message]:
        """Yield the messages posted in [t0, t1), oldest first.

        ``scale`` thins the per-day Poisson rate — the study-level
        message scale factor.  History older than
        :data:`HISTORY_DAYS_CAP` days before ``t1`` is not materialised.
        ``with_text=False`` skips body-text generation (several times
        faster) for consumers that only aggregate counts.
        """
        t0 = max(t0, self.plan.created_t, t1 - HISTORY_DAYS_CAP)
        first_day = int(np.floor(t0))
        last_day = int(np.ceil(t1))
        senders = self.active_members(t1)
        # Posting frequency follows a Zipf law over the active members,
        # truncated to the pool (sampled via the cumulative weights —
        # exponents <= 1 are valid, unlike numpy's unbounded sampler).
        if self._sender_cum is None or len(self._sender_cum) != len(senders):
            weights = np.arange(1, len(senders) + 1, dtype=float)
            weights **= -self.plan.sender_zipf
            self._sender_cum = np.cumsum(weights)
        cum = self._sender_cum
        for day in range(first_day, last_day):
            count = self.message_count_on(day, scale)
            if count == 0:
                continue
            rng = derive_rng(
                self._platform.seed,
                f"{self._platform.name}/msgs/{self.gid}/{day}",
            )
            times = np.sort(day + rng.random(count))
            ranks = np.searchsorted(cum, rng.random(count) * cum[-1])
            types, probs = self._platform.type_mix
            type_idx = rng.choice(len(types), size=count, p=probs)
            for i in range(count):
                t = float(times[i])
                if not (t0 <= t < t1):
                    continue
                mtype = types[int(type_idx[i])]
                text = ""
                if with_text and mtype is MessageType.TEXT:
                    text = self._sample_text(rng)
                yield Message(
                    message_id=f"{self.gid}/m{day}.{i}",
                    group_id=self.gid,
                    sender_id=senders[int(ranks[i])],
                    t=t,
                    mtype=mtype,
                    text=text,
                )

    def _sample_text(self, rng: np.random.Generator) -> str:
        vocab = self._platform.topic_vocab(self.plan.topic_label, self.plan.lang)
        n_words = int(rng.integers(2, 9))
        idx = rng.integers(0, len(vocab), size=n_words)
        return " ".join(vocab[i] for i in idx)


class PlatformService:
    """Base class for the three platform ground-truth services.

    Subclasses set :attr:`name`, :attr:`capabilities`, and invite-URL
    encoding, and may add platform-specific state (e.g. Discord invite
    expiry bookkeeping).
    """

    name: str = "base"
    capabilities: PlatformCapabilities

    #: Shared telemetry handle, attached by the study (class-level
    #: default keeps standalone services instrumentation-free).
    telemetry = None

    def __init__(self, seed: int, user_model: PlatformUserModel) -> None:
        self.seed = seed
        self.user_model = user_model
        self._groups: Dict[str, GroupRecord] = {}
        self._invite_to_gid: Dict[str, str] = {}
        self._profiles: Dict[str, UserProfile] = {}
        types_probs = _TYPE_MIXES[self.name]
        self.type_mix: Tuple[Tuple[MessageType, ...], np.ndarray] = (
            tuple(t for t, _ in types_probs),
            np.array([p for _, p in types_probs]) /
            sum(p for _, p in types_probs),
        )
        self._topic_vocabs: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    # -- groups -------------------------------------------------------

    def register_group(self, plan: GroupPlan) -> GroupRecord:
        """Add a group to the platform and index its invite code."""
        record = GroupRecord(plan, self)
        self._groups[plan.gid] = record
        self._invite_to_gid[self.invite_code(plan.gid)] = plan.gid
        return record

    def group(self, gid: str) -> GroupRecord:
        """Look a group up by its id."""
        try:
            return self._groups[gid]
        except KeyError:
            raise UnknownURLError(f"no such group on {self.name}: {gid}") from None

    def group_by_invite(self, code: str) -> GroupRecord:
        """Resolve an invite code to its group."""
        if self.telemetry is not None:
            self.telemetry.count(
                "platform_lookups_total", platform=self.name, op="invite"
            )
        gid = self._invite_to_gid.get(code)
        if gid is None:
            raise UnknownURLError(f"unknown {self.name} invite code: {code}")
        return self._groups[gid]

    def groups(self) -> Sequence[GroupRecord]:
        """All registered groups (ground truth; tests only)."""
        return list(self._groups.values())

    # -- invite codes / URLs -------------------------------------------

    #: Length of the invite token; subclasses override.
    invite_code_length: int = 16

    def invite_code(self, gid: str) -> str:
        """The stable invite token for a group id."""
        return _encode_token(f"{self.name}/invite/{gid}", self.invite_code_length)

    def invite_url(self, gid: str) -> str:
        """The full shareable invite URL; subclasses override."""
        raise NotImplementedError

    # -- users ----------------------------------------------------------

    def format_user_id(self, number: int) -> str:
        """Render a numeric population index as a platform user id."""
        return f"{self.name[:2]}u{number}"

    def user_profile(self, user_id: str) -> UserProfile:
        """Materialise (and cache) the ground-truth profile of a user."""
        if self.telemetry is not None:
            self.telemetry.count(
                "platform_lookups_total", platform=self.name, op="profile"
            )
        profile = self._profiles.get(user_id)
        if profile is None:
            profile = self._materialise_profile(user_id)
            self._profiles[user_id] = profile
        return profile

    def _materialise_profile(self, user_id: str) -> UserProfile:
        model = self.user_model
        rng = derive_rng(self.seed, f"{self.name}/profile/{user_id}")
        country = model.countries[
            int(rng.choice(len(model.countries), p=np.asarray(model.country_probs)))
        ]
        phone = random_phone(rng, country) if model.has_phone else None
        phone_visible = bool(
            model.has_phone and rng.random() < model.phone_visible_prob
        )
        linked: Tuple = ()
        if model.linked_account_prob and rng.random() < model.linked_account_prob:
            linked = self._sample_linked_accounts(rng, user_id)
        return UserProfile(
            user_id=user_id,
            display_name=f"user_{stable_hash(user_id) % 10**8:08d}",
            country=country,
            phone=phone,
            phone_visible=phone_visible,
            linked_accounts=linked,
        )

    def _sample_linked_accounts(
        self, rng: np.random.Generator, user_id: str
    ) -> Tuple:
        from repro.privacy.pii import LinkedAccount  # local: avoid cycle

        names = [n for n, _ in self.user_model.linked_platform_weights]
        weights = np.array(
            [w for _, w in self.user_model.linked_platform_weights], dtype=float
        )
        probs = weights / weights.sum()
        n_links = min(1 + int(rng.poisson(1.4)), len(names))
        picks = rng.choice(len(names), size=n_links, replace=False, p=probs)
        return tuple(
            LinkedAccount(platform=names[int(i)], handle=f"{names[int(i)]}_{user_id}")
            for i in picks
        )

    # -- text generation -------------------------------------------------

    def topic_vocab(self, topic_label: str, lang: str) -> Tuple[str, ...]:
        """Vocabulary for message text of a given topic and language."""
        key = (topic_label, lang)
        vocab = self._topic_vocabs.get(key)
        if vocab is None:
            if lang == "en":
                terms: Tuple[str, ...] = ()
                for spec in PLATFORM_TOPICS.get(self.name, ()):
                    if spec.label == topic_label:
                        terms = terms + spec.terms
                vocab = (terms or COMMON_TERMS) + COMMON_TERMS
            else:
                vocab = LANGUAGE_VOCAB.get(lang, LANGUAGE_VOCAB["und"])
            self._topic_vocabs[key] = vocab
        return vocab
