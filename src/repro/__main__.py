"""Command-line interface: run a campaign and print tables/figures.

Usage::

    python -m repro                       # 1 % study, all tables+figures
    python -m repro --scale 0.02 --seed 7
    python -m repro --only table2 fig6    # subset of outputs
    python -m repro --topics              # include Table 3 (LDA; slower)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.analysis.topics import extract_topics
from repro.core.study import Study, StudyConfig
from repro.faults import PROFILES, FaultPlan
from repro.reporting import (
    render_health,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.reporting.figures import render_interplay

RENDERERS: Dict[str, Callable] = {
    "health": render_health,
    "interplay": render_interplay,
    "table2": render_table2,
    "table4": render_table4,
    "table5": render_table5,
    "fig1": render_fig1,
    "fig2": render_fig2,
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Demystifying the Messaging Platforms' Ecosystem "
            "Through the Lens of Twitter' (IMC 2020) on a simulated "
            "ecosystem."
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="study seed")
    parser.add_argument(
        "--scale", type=float, default=0.01,
        help="tweet-volume scale (1.0 = paper scale)",
    )
    parser.add_argument(
        "--message-scale", type=float, default=0.1,
        help="in-group message-volume scale",
    )
    parser.add_argument(
        "--days", type=int, default=38, help="campaign length in days"
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(RENDERERS), default=None,
        help="render only these outputs",
    )
    parser.add_argument(
        "--faults", choices=sorted(PROFILES), default="none",
        help="fault-injection profile for the campaign (default: none)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault schedule (default: the study seed)",
    )
    parser.add_argument(
        "--topics", action="store_true",
        help="also run the Table 3 LDA topic extraction (slower)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="print the calibration self-check (paper vs measured)",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="save the collected dataset to a JSON(.gz) file",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR", default=None,
        help="export every figure's data series as CSV into DIR",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = StudyConfig(
        seed=args.seed,
        n_days=args.days,
        scale=args.scale,
        message_scale=args.message_scale,
        join_day=min(10, args.days - 1),
        # "none" keeps the bare, proxy-free pipeline: byte-identical
        # output to a build without the fault subsystem.
        faults=None if args.faults == "none" else FaultPlan.profile(args.faults),
        fault_seed=args.fault_seed,
    )
    print(
        f"# Running {config.n_days}-day study: seed={config.seed} "
        f"scale={config.scale} message_scale={config.message_scale} "
        f"faults={args.faults}",
        file=sys.stderr,
    )
    start = time.time()
    dataset = Study(config).run()
    print(f"# Study complete in {time.time() - start:.1f}s", file=sys.stderr)

    print(render_table1())
    names = args.only if args.only else sorted(RENDERERS)
    if args.faults != "none" and "health" not in names:
        names = ["health"] + list(names)
    for name in names:
        print()
        print(RENDERERS[name](dataset))

    if args.topics:
        print()
        results = {
            platform: extract_topics(
                dataset, platform, n_topics=10, n_iter=40, seed=args.seed
            )
            for platform in ("whatsapp", "telegram", "discord")
        }
        print(render_table3(results))

    if args.validate:
        from repro.validation import render_validation_report, validate_dataset

        print()
        print(render_validation_report(validate_dataset(dataset)))

    if args.save:
        from repro.io import save_dataset

        save_dataset(dataset, args.save)
        print(f"# Dataset saved to {args.save}", file=sys.stderr)

    if args.export_csv:
        from repro.io import export_all_csv

        paths = export_all_csv(dataset, args.export_csv)
        print(f"# {len(paths)} CSV files written to {args.export_csv}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
