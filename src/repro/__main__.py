"""Command-line interface: run a campaign and print tables/figures.

Usage::

    python -m repro                       # 1 % study, all tables+figures
    python -m repro --scale 0.02 --seed 7
    python -m repro --only table2 fig6    # subset of outputs
    python -m repro --topics              # include Table 3 (LDA; slower)

Subcommands ride alongside the flat campaign interface::

    python -m repro fsck DIR [--repair]   # verify (and heal) a run store
                                          # or exported CSV directory
    python -m repro report --from-store DIR      # streaming report from
                                          # a --slices run store
    python -m repro chaos --workdir DIR   # kill-resume-verify harness
    python -m repro fleet --workdir DIR --seeds 3 5 7   # sweep fleet
    python -m repro serve --checkpoint-dir DIR   # campaign query daemon
    python -m repro serve-load --url URL  # persona load harness
    python -m repro scenarios list        # built-in scenario packs
    python -m repro scenarios describe NAME      # one pack in full
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.analysis.topics import extract_topics
from repro.checkpoint import RunStore
from repro.core.study import Study, StudyConfig
from repro.errors import ConfigError
from repro.faults import PROFILES, FaultPlan
from repro.scenarios import SCENARIO_PACKS, ScenarioPack, load_pack_file
from repro.telemetry import export_telemetry
from repro.reporting import (
    render_chaos_report,
    render_fsck_report,
    render_health,
    render_repair_report,
    render_scenario_report,
    render_telemetry,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.reporting.figures import render_interplay

RENDERERS: Dict[str, Callable] = {
    "health": render_health,
    "scenario": render_scenario_report,
    "interplay": render_interplay,
    "table2": render_table2,
    "table4": render_table4,
    "table5": render_table5,
    "fig1": render_fig1,
    "fig2": render_fig2,
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
}

LOG_LEVELS = ("debug", "info", "warning", "error")

# Named explicitly: under ``python -m repro`` this module imports as
# ``__main__``, which would fall outside the ``repro`` logger tree.
logger = logging.getLogger("repro.cli")


def package_version() -> str:
    """The installed package version, falling back to the source tree."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from repro import __version__

        return __version__


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time.

    A plain ``StreamHandler(sys.stderr)`` binds the stream object once
    at creation, so anything that swaps ``sys.stderr`` afterwards
    (pytest's capture, callers redirecting a second ``main()`` run)
    would keep writing to the stale stream.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore
        pass


def configure_logging(level: str) -> None:
    """Route ``repro.*`` log records to stderr at ``level``.

    Idempotent: repeated ``main()`` calls in one process reuse the
    handler instead of stacking duplicates.
    """
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    if not any(isinstance(h, _StderrHandler) for h in root.handlers):
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
    root.propagate = False


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Demystifying the Messaging Platforms' Ecosystem "
            "Through the Lens of Twitter' (IMC 2020) on a simulated "
            "ecosystem."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info; debug adds per-day "
             "progress)",
    )
    parser.add_argument(
        "--telemetry-dir", metavar="DIR", default=None,
        help="enable campaign telemetry and export it into DIR "
             "(JSONL event log, Prometheus-style metrics, plain-text "
             "report); off by default and never affects study output",
    )
    parser.add_argument("--seed", type=int, default=7, help="study seed")
    parser.add_argument(
        "--scale", type=float, default=0.01,
        help="tweet-volume scale (1.0 = paper scale)",
    )
    parser.add_argument(
        "--message-scale", type=float, default=0.1,
        help="in-group message-volume scale",
    )
    parser.add_argument(
        "--days", type=int, default=38, help="campaign length in days"
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(RENDERERS), default=None,
        help="render only these outputs",
    )
    parser.add_argument(
        "--faults", choices=sorted(PROFILES), default="none",
        help="fault-injection profile for the campaign (default: none)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault schedule (default: the study seed)",
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIO_PACKS), default=None,
        help="scenario pack shaping the campaign's weather (default: "
             "paper-weather, the paper's calibrated baseline; see "
             "'repro scenarios list')",
    )
    parser.add_argument(
        "--scenario-file", metavar="PATH", default=None,
        help="load a custom scenario pack from a JSON file instead of "
             "naming a built-in one",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the daily monitor probe pass "
             "(default: 1 = sequential; any N produces byte-identical "
             "output)",
    )
    parser.add_argument(
        "--worker-deadline", type=float, default=None, metavar="SECONDS",
        help="with --workers N>1: how long a probe day waits on any "
             "one worker before declaring it hung and re-executing its "
             "shard in-parent (default: 300)",
    )
    parser.add_argument(
        "--worker-restarts", type=int, default=None, metavar="K",
        help="with --workers N>1: respawns allowed per worker slot "
             "before the campaign degrades to the sequential path "
             "(default: 2; 0 degrades on the first loss)",
    )
    parser.add_argument(
        "--topics", action="store_true",
        help="also run the Table 3 LDA topic extraction (slower)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="print the calibration self-check (paper vs measured)",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="save the collected dataset to a JSON(.gz) file",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR", default=None,
        help="export every figure's data series as CSV into DIR",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="run store directory: write a day record after every "
             "observed day (anchor snapshots + replay markers)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="anchor cadence: one full state snapshot every N days, "
             "replay markers in between (default: 5; 1 = snapshot "
             "every day)",
    )
    parser.add_argument(
        "--slices", action="store_true",
        help="with --checkpoint-dir: also record a per-day analysis "
             "slice and an end-of-campaign rollup, enabling the "
             "bounded-memory 'repro report --from-store' path (fresh "
             "runs only; a resumed store keeps its slice setting)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign checkpointed in --checkpoint-dir "
             "from its latest day (or --from-day)",
    )
    parser.add_argument(
        "--from-day", type=int, default=None, metavar="N",
        help="with --resume: day boundary to restore instead of the "
             "latest checkpointed day",
    )
    parser.add_argument(
        "--fork-day", type=int, default=None, metavar="N",
        help="branch the campaign in --checkpoint-dir at day N "
             "(combine with --fork-seed/--fork-faults for what-if runs)",
    )
    parser.add_argument(
        "--fork-into", metavar="DIR", default=None,
        help="with --fork-day: write the fork's own checkpoints here",
    )
    parser.add_argument(
        "--fork-seed", type=int, default=None, metavar="SEED",
        help="with --fork-day: reseed the forked campaign's future "
             "(default: keep the parent's seed)",
    )
    parser.add_argument(
        "--fork-faults", choices=sorted(PROFILES), default=None,
        help="with --fork-day: fault profile for the forked future "
             "('none' strips faults; default: keep the parent's plan)",
    )
    parser.add_argument(
        "--fork-scenario", choices=sorted(SCENARIO_PACKS), default=None,
        help="with --fork-day: scenario pack for the forked future "
             "('paper-weather' strips back to the paper's baseline; "
             "default: keep the parent's pack)",
    )
    return parser


def validate_args(args: argparse.Namespace) -> None:
    """Reject invalid argument combinations with a clear ConfigError.

    Raised at parse time, before any world is built, so a typo costs
    an error message rather than a deep traceback minutes in.
    """
    if args.days <= 0:
        raise ConfigError(f"--days must be positive, got {args.days}")
    if args.scale <= 0:
        raise ConfigError(f"--scale must be positive, got {args.scale}")
    if args.message_scale <= 0:
        raise ConfigError(
            f"--message-scale must be positive, got {args.message_scale}"
        )
    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.workers == 1 and (
        args.worker_deadline is not None or args.worker_restarts is not None
    ):
        raise ConfigError(
            "--worker-deadline/--worker-restarts only make sense with "
            "--workers N > 1"
        )
    if args.worker_deadline is not None and args.worker_deadline <= 0:
        raise ConfigError(
            f"--worker-deadline must be positive, got {args.worker_deadline}"
        )
    if args.worker_restarts is not None and args.worker_restarts < 0:
        raise ConfigError(
            f"--worker-restarts must be >= 0, got {args.worker_restarts}"
        )
    if args.resume and args.fork_day is not None:
        raise ConfigError("--resume and --fork-day are mutually exclusive")
    if (args.resume or args.fork_day is not None) and not args.checkpoint_dir:
        raise ConfigError(
            "--resume/--fork-day require --checkpoint-dir to name the "
            "run store"
        )
    if args.from_day is not None and not args.resume:
        raise ConfigError("--from-day only makes sense with --resume")
    if args.checkpoint_every is not None:
        if not args.checkpoint_dir:
            raise ConfigError(
                "--checkpoint-every only makes sense with --checkpoint-dir"
            )
        if args.resume or args.fork_day is not None:
            raise ConfigError(
                "--checkpoint-every applies to fresh runs only; a "
                "resumed or forked campaign keeps its store's cadence"
            )
        if args.checkpoint_every < 1:
            raise ConfigError(
                f"--checkpoint-every must be >= 1, got "
                f"{args.checkpoint_every}"
            )
    if args.slices:
        if not args.checkpoint_dir:
            raise ConfigError(
                "--slices only makes sense with --checkpoint-dir "
                "(analysis slices live in the run store)"
            )
        if args.resume or args.fork_day is not None:
            raise ConfigError(
                "--slices applies to fresh runs only; a resumed or "
                "forked campaign keeps its store's slice setting"
            )
    for name, value in (
        ("--fork-seed", args.fork_seed),
        ("--fork-faults", args.fork_faults),
        ("--fork-scenario", args.fork_scenario),
        ("--fork-into", args.fork_into),
    ):
        if value is not None and args.fork_day is None:
            raise ConfigError(f"{name} only makes sense with --fork-day")
    if args.scenario is not None and args.scenario_file is not None:
        raise ConfigError(
            "--scenario and --scenario-file are mutually exclusive"
        )
    if (args.scenario is not None or args.scenario_file is not None) and (
        args.resume or args.fork_day is not None
    ):
        raise ConfigError(
            "--scenario/--scenario-file apply to fresh runs only; a "
            "resumed campaign keeps its store's pack and a fork swaps "
            "packs with --fork-scenario"
        )


def _checkpointed_day(store: "RunStore", day: int, flag: str) -> None:
    """ConfigError unless ``day`` has a record in ``store``."""
    if not store.has_day(day):
        days = store.days()
        have = f"days {days[0]}..{days[-1]}" if days else "no days"
        raise ConfigError(
            f"{flag} {day} is outside the checkpointed range "
            f"({store.directory} holds {have})"
        )


def _build_study(args: argparse.Namespace) -> Study:
    """A Study positioned per the CLI: fresh, resumed, or forked."""
    if args.resume:
        if args.from_day is not None:
            _checkpointed_day(
                RunStore.open(args.checkpoint_dir), args.from_day, "--from-day"
            )
        return Study.resume(args.checkpoint_dir, from_day=args.from_day)
    if args.fork_day is not None:
        _checkpointed_day(
            RunStore.open(args.checkpoint_dir), args.fork_day, "--fork-day"
        )
        fault_plan: object = "keep"
        if args.fork_faults is not None:
            fault_plan = (
                None if args.fork_faults == "none" else args.fork_faults
            )
        scenario: object = "keep"
        if args.fork_scenario is not None:
            # "paper-weather" strips back to the identity weather;
            # None on the config means exactly that pack.
            scenario = (
                None
                if args.fork_scenario == "paper-weather"
                else args.fork_scenario
            )
        return Study.fork(
            args.checkpoint_dir,
            args.fork_day,
            seed=args.fork_seed,
            fault_plan=fault_plan,
            scenario=scenario,
            fork_dir=args.fork_into,
        )
    scenario = None
    if args.scenario is not None and args.scenario != "paper-weather":
        scenario = ScenarioPack.named(args.scenario)
    elif args.scenario_file is not None:
        scenario = load_pack_file(args.scenario_file)
    config = StudyConfig(
        seed=args.seed,
        n_days=args.days,
        scale=args.scale,
        message_scale=args.message_scale,
        join_day=min(10, args.days - 1),
        # "none" keeps the bare, proxy-free pipeline: byte-identical
        # output to a build without the fault subsystem.
        faults=None if args.faults == "none" else FaultPlan.profile(args.faults),
        fault_seed=args.fault_seed,
        scenario=scenario,
    )
    return Study(config)


def build_fsck_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fsck",
        description=(
            "Verify the integrity of a campaign run store (checkpoint "
            "directory) or an exported CSV directory: manifest checksum "
            "and schema, per-day record digests, gzip health, anchor "
            "linkage, dangling objects, orphaned temp files, SHA256SUMS. "
            "Read-only unless --repair is given."
        ),
    )
    parser.add_argument(
        "path", metavar="PATH",
        help="run store directory (holds manifest.json) or exported "
             "CSV directory (holds SHA256SUMS)",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="heal a damaged run store in place: quarantine damaged "
             "objects, rebuild markers and anchors by deterministic "
             "replay from the nearest surviving anchor, restore a torn "
             "manifest from backup (stores only; exports are "
             "regenerated, not repaired)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the machine-readable report to PATH",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def fsck_main(argv) -> int:
    """``repro fsck PATH [--repair]``: exit 0 clean, 1 damaged."""
    args = build_fsck_parser().parse_args(argv)
    configure_logging(args.log_level)
    from repro.integrity import fsck_path, repair_store
    from repro.io.atomic import atomic_write_text

    report = fsck_path(args.path)
    print(render_fsck_report(report))
    payload: Dict[str, object] = report.to_dict()
    ok = report.ok
    if args.repair and not report.ok:
        if report.target_kind != "store":
            raise ConfigError(
                "--repair only applies to run stores; a damaged CSV "
                "export is regenerated from its dataset, not repaired"
            )
        repair = repair_store(args.path, report)
        print()
        print(render_repair_report(repair))
        payload = {"fsck": report.to_dict(), "repair": repair.to_dict()}
        ok = repair.ok
    if args.json:
        atomic_write_text(
            Path(args.json), json.dumps(payload, indent=2) + "\n"
        )
    return 0 if ok else 1


def build_report_parser() -> argparse.ArgumentParser:
    from repro.reporting import STREAMING_SECTIONS

    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Render the campaign report from a slice-enabled run store "
            "by streaming: the per-day analysis slices are folded in a "
            "single O(day)-memory pass (seeded reservoirs bound every "
            "distribution sample), never materialising the dataset. "
            "Below the reservoir threshold every section is "
            "byte-identical to the batch report of the same campaign."
        ),
    )
    parser.add_argument(
        "--from-store", metavar="DIR", required=True,
        help="run store directory written with --slices",
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(STREAMING_SECTIONS),
        default=None,
        help="render only these sections",
    )
    parser.add_argument(
        "--through-day", type=int, default=None, metavar="N",
        help="fold only days 0..N (default: every checkpointed day; "
             "joined-group sections need the full window's rollup)",
    )
    parser.add_argument(
        "--reservoir-threshold", type=int, default=None, metavar="N",
        help="per-distribution reservoir capacity (default: 4096; "
             "results are exact, byte-identical to batch, while every "
             "sample fits its reservoir)",
    )
    parser.add_argument(
        "--epoch-days", type=int, default=None, metavar="N",
        help="epoch length for the per-epoch rollup section "
             "(default: 38, the paper's campaign window)",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def report_main(argv) -> int:
    """``repro report --from-store DIR``: streaming campaign report."""
    args = build_report_parser().parse_args(argv)
    configure_logging(args.log_level)
    from repro.analysis.streaming import (
        DEFAULT_EPOCH_DAYS,
        RESERVOIR_THRESHOLD,
        StreamingAnalyzer,
    )
    from repro.reporting import render_streaming_report

    if args.reservoir_threshold is not None and args.reservoir_threshold < 1:
        raise ConfigError(
            f"--reservoir-threshold must be >= 1, got "
            f"{args.reservoir_threshold}"
        )
    if args.epoch_days is not None and args.epoch_days < 1:
        raise ConfigError(
            f"--epoch-days must be >= 1, got {args.epoch_days}"
        )
    if args.through_day is not None and args.through_day < 0:
        raise ConfigError(
            f"--through-day must be >= 0, got {args.through_day}"
        )
    store = RunStore.open(args.from_store)
    analyzer = StreamingAnalyzer.from_store(
        store,
        reservoir_threshold=(
            args.reservoir_threshold
            if args.reservoir_threshold is not None
            else RESERVOIR_THRESHOLD
        ),
        epoch_days=(
            args.epoch_days
            if args.epoch_days is not None
            else DEFAULT_EPOCH_DAYS
        ),
        through_day=args.through_day,
    )
    config = store.manifest.get("config", {})
    scale = float(config.get("scale", 1.0))
    # Match the batch CLI: with a run store in play the health section
    # carries a store-integrity line (a read-only fsck of the store).
    from repro.integrity import fsck_store

    fsck_report = fsck_store(args.from_store)
    print(
        render_streaming_report(
            analyzer, scale, only=args.only, fsck=fsck_report
        )
    )
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Crash-consistency chaos harness: run one golden campaign, "
            "then kill a fresh campaign at each scheduled abort point "
            "(in-process abort or real subprocess SIGKILL), resume it "
            "from its run store, and verify the resumed exports are "
            "byte-identical to the golden run."
        ),
    )
    parser.add_argument(
        "--workdir", metavar="DIR", required=True,
        help="directory for the golden run and every kill-resume cycle",
    )
    parser.add_argument(
        "--days", type=int, default=6, help="campaign length in days"
    )
    parser.add_argument("--seed", type=int, default=7, help="study seed")
    parser.add_argument(
        "--scale", type=float, default=0.004,
        help="tweet-volume scale (default sized for a quick harness run)",
    )
    parser.add_argument(
        "--message-scale", type=float, default=0.05,
        help="in-group message-volume scale",
    )
    parser.add_argument(
        "--join-day", type=int, default=None, metavar="N",
        help="day the join sample is drawn (default: day 10, clamped "
             "into the campaign window; early joins leave more "
             "post-join days for message collection)",
    )
    parser.add_argument(
        "--faults", choices=sorted(PROFILES), default="none",
        help="fault-injection profile for the campaigns (default: none)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault schedule (default: the study seed)",
    )
    parser.add_argument(
        "--points", type=int, default=5,
        help="number of scheduled abort points (default: 5)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the abort-point schedule (default: 0)",
    )
    parser.add_argument(
        "--mode", choices=("abort", "sigkill", "both"), default="both",
        help="kill mode: in-process abort, subprocess SIGKILL, or a "
             "seeded mix (default: both)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=2, metavar="N",
        help="anchor cadence for every campaign in the harness "
             "(default: 2, so schedules cross marker and anchor days)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the killed/resumed campaigns through the supervised "
             "worker pool (golden stays sequential, so every cycle "
             "also checks pool-vs-sequential byte-identity)",
    )
    parser.add_argument(
        "--worker-kills", type=int, default=0, metavar="K",
        help="add K supervision cycles that SIGKILL one worker "
             "mid-probe on a seeded (day, worker) schedule; the "
             "campaign must complete without resume (requires "
             "--workers >= 2)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the machine-readable report to PATH",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def chaos_main(argv) -> int:
    """``repro chaos --workdir DIR``: exit 0 iff every cycle held."""
    args = build_chaos_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.days <= 0:
        raise ConfigError(f"--days must be positive, got {args.days}")
    if args.points < 1:
        raise ConfigError(f"--points must be >= 1, got {args.points}")
    if args.checkpoint_every < 1:
        raise ConfigError(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.worker_kills < 0:
        raise ConfigError(
            f"--worker-kills must be >= 0, got {args.worker_kills}"
        )
    if args.worker_kills > 0 and args.workers < 2:
        raise ConfigError("--worker-kills requires --workers >= 2")
    from repro.chaos import ChaosRunner, ChaosSchedule, WorkerKillSchedule
    from repro.io.atomic import atomic_write_text

    join_day = (
        min(10, args.days - 1) if args.join_day is None else args.join_day
    )
    if not 0 <= join_day < args.days:
        raise ConfigError(
            f"--join-day must fall inside the campaign window, got "
            f"{join_day}"
        )
    config_spec = dict(
        seed=args.seed,
        n_days=args.days,
        scale=args.scale,
        message_scale=args.message_scale,
        join_day=join_day,
        faults=None if args.faults == "none" else args.faults,
        fault_seed=args.fault_seed,
    )
    modes = (
        ("abort", "sigkill") if args.mode == "both" else (args.mode,)
    )
    schedule = ChaosSchedule.generate(
        args.chaos_seed,
        n_days=args.days,
        join_day=join_day,
        n_points=args.points,
        modes=modes,
    )
    worker_kills = None
    if args.worker_kills > 0:
        worker_kills = WorkerKillSchedule.generate(
            args.chaos_seed,
            n_days=args.days,
            workers=args.workers,
            n_points=args.worker_kills,
        )
    logger.info(
        "# Chaos: %d cycles + %d worker-kill cycles over a %d-day "
        "campaign (faults=%s, schedule seed %d, workers=%d)",
        len(schedule), args.worker_kills, args.days, args.faults,
        args.chaos_seed, args.workers,
    )
    start = time.time()
    report = ChaosRunner(
        config_spec,
        schedule,
        args.workdir,
        anchor_every=args.checkpoint_every,
        workers=args.workers,
        worker_kills=worker_kills,
    ).run()
    logger.info("# Chaos complete in %.1fs", time.time() - start)
    print(render_chaos_report(report))
    if args.json:
        atomic_write_text(
            Path(args.json), json.dumps(report.to_dict(), indent=2) + "\n"
        )
    return 0 if report.ok else 1


def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description=(
            "Run a declarative sweep matrix — seeds x fault profiles x "
            "scenario packs — as subprocess campaigns under a bounded, "
            "self-healing worker pool. Every cell is recorded in a "
            "restartable content-addressed ledger under --workdir; "
            "--resume skips completed cells by digest and re-runs "
            "in-flight ones from their checkpoints. Cells whose restart "
            "budget runs out degrade to a 'failed' column in the merged "
            "sensitivity report instead of aborting the sweep."
        ),
    )
    parser.add_argument(
        "--workdir", metavar="DIR", required=True,
        help="sweep workdir: fleet manifest, per-cell ledger records, "
             "run stores, summaries and the merged report",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="SEED",
        help="study seeds, one campaign per seed per (faults, scenario) "
             "pair",
    )
    parser.add_argument(
        "--faults", nargs="+", choices=sorted(PROFILES), default=None,
        help="fault profiles axis (default: none)",
    )
    parser.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIO_PACKS),
        default=None,
        help="scenario packs axis (default: paper-weather)",
    )
    parser.add_argument(
        "--sweep-file", metavar="PATH", default=None,
        help="load the whole matrix from a JSON sweep file instead of "
             "axis flags (keys: seeds, faults, scenarios, base, fork)",
    )
    parser.add_argument(
        "--days", type=int, default=6,
        help="campaign length per cell (default: %(default)s)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.004,
        help="tweet-volume scale per cell (default: %(default)s)",
    )
    parser.add_argument(
        "--message-scale", type=float, default=0.05,
        help="in-group message-volume scale (default: %(default)s)",
    )
    parser.add_argument(
        "--join-day", type=int, default=None, metavar="N",
        help="day the join sample is drawn (default: day 10, clamped "
             "into the campaign window)",
    )
    parser.add_argument(
        "--fork-from", metavar="DIR", default=None,
        help="branch every cell from this checkpointed parent store "
             "(with --fork-day) instead of running fresh campaigns",
    )
    parser.add_argument(
        "--fork-day", type=int, default=None, metavar="N",
        help="with --fork-from: the branch day",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent cell subprocesses (default: %(default)s)",
    )
    parser.add_argument(
        "--cell-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell attempt before it is declared "
             "hung and stopped (default: 3600)",
    )
    parser.add_argument(
        "--cell-restarts", type=int, default=None, metavar="K",
        help="retry budget per cell before it degrades to 'failed' "
             "(default: 2; 0 fails a cell on its first loss)",
    )
    parser.add_argument(
        "--backoff-seed", type=int, default=0,
        help="seed of the restart-backoff stream (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=2, metavar="N",
        help="anchor cadence inside every cell's run store "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the sweep recorded in --workdir: completed cells "
             "are skipped by digest, interrupted ones finish from their "
             "checkpoints, failed ones get a fresh budget",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the machine-readable merged report to PATH "
             "(always written to WORKDIR/report.json)",
    )
    parser.add_argument(
        "--telemetry-dir", metavar="DIR", default=None,
        help="export fleet telemetry (cells started/completed/retried/"
             "failed/skipped, backoff seconds, ledger writes) into DIR",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def fleet_main(argv) -> int:
    """``repro fleet --workdir DIR``: exit 0 iff the sweep completed."""
    args = build_fleet_parser().parse_args(argv)
    configure_logging(args.log_level)
    from repro.fleet import (
        FleetLedger,
        FleetPolicy,
        FleetRunner,
        SweepMatrix,
    )
    from repro.io.atomic import atomic_write_text
    from repro.reporting import fleet_report_dict, render_fleet_report
    from repro.telemetry import Telemetry

    matrix_flags = (
        args.seeds is not None
        or args.faults is not None
        or args.scenarios is not None
        or args.fork_from is not None
    )
    if args.resume and (matrix_flags or args.sweep_file):
        raise ConfigError(
            "--resume re-runs the sweep recorded in --workdir; matrix "
            "flags and --sweep-file only apply to fresh sweeps"
        )
    if args.sweep_file and matrix_flags:
        raise ConfigError(
            "--sweep-file carries the whole matrix; it is mutually "
            "exclusive with --seeds/--faults/--scenarios/--fork-from"
        )
    if (args.fork_from is None) != (args.fork_day is None):
        raise ConfigError(
            "--fork-from and --fork-day must be given together"
        )
    if args.cell_deadline is not None and args.cell_deadline <= 0:
        raise ConfigError(
            f"--cell-deadline must be positive, got {args.cell_deadline}"
        )
    if args.cell_restarts is not None and args.cell_restarts < 0:
        raise ConfigError(
            f"--cell-restarts must be >= 0, got {args.cell_restarts}"
        )
    if args.checkpoint_every < 1:
        raise ConfigError(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )

    if args.resume:
        matrix = FleetLedger.open(args.workdir).matrix
    elif args.sweep_file:
        matrix = SweepMatrix.from_file(args.sweep_file)
    else:
        if args.seeds is None:
            raise ConfigError(
                "a fresh sweep needs --seeds (or --sweep-file, or "
                "--resume against an existing workdir)"
            )
        fork = None
        if args.fork_from is not None:
            fork = {"store": str(args.fork_from), "day": args.fork_day}
        matrix = SweepMatrix(
            seeds=args.seeds,
            faults=args.faults or ("none",),
            scenarios=args.scenarios or ("paper-weather",),
            base={
                "n_days": args.days,
                "scale": args.scale,
                "message_scale": args.message_scale,
                "join_day": args.join_day,
            },
            fork=fork,
        )

    if matrix.fork is not None:
        from repro.checkpoint import MANIFEST_NAME

        fork_store = Path(matrix.fork["store"])
        if not (fork_store / MANIFEST_NAME).exists():
            raise ConfigError(
                f"sweep fork store {fork_store} has no checkpoint "
                "manifest; every cell would crash against it "
                "(--fork-from needs a store written by "
                "--checkpoint-dir)"
            )

    policy_kwargs = {"workers": args.workers,
                     "backoff_seed": args.backoff_seed}
    if args.cell_deadline is not None:
        policy_kwargs["cell_deadline_s"] = args.cell_deadline
    if args.cell_restarts is not None:
        policy_kwargs["max_restarts"] = args.cell_restarts
    policy = FleetPolicy(**policy_kwargs)

    telemetry = Telemetry(enabled=bool(args.telemetry_dir))
    logger.info(
        "# Fleet: %d cells (%d seeds x %d faults x %d scenarios), "
        "%d workers%s",
        len(matrix), len(matrix.seeds), len(matrix.faults),
        len(matrix.scenarios), policy.workers,
        ", resuming" if args.resume else "",
    )
    start = time.time()
    result = FleetRunner(
        matrix,
        args.workdir,
        policy=policy,
        telemetry=telemetry,
        resume=args.resume,
        anchor_every=args.checkpoint_every,
    ).run()
    logger.info(
        "# Fleet complete in %.1fs: %d completed, %d failed",
        time.time() - start, len(result.completed), len(result.failed),
    )

    report = render_fleet_report(result)
    print(report, end="")
    payload = (
        json.dumps(fleet_report_dict(result), indent=2, sort_keys=True)
        + "\n"
    )
    workdir = Path(args.workdir)
    atomic_write_text(workdir / "report.txt", report)
    atomic_write_text(workdir / "report.json", payload)
    if args.json:
        atomic_write_text(Path(args.json), payload)
    if args.telemetry_dir:
        export_telemetry(telemetry, args.telemetry_dir)
        logger.info("# Telemetry written to %s", args.telemetry_dir)
    return 0 if result.ok else 1


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run a campaign as a long-lived daemon: a driver thread "
            "advances the simulation day by day (checkpointing every "
            "day into --checkpoint-dir) while a threading HTTP server "
            "concurrently answers /v1/status, /v1/days, /v1/day/N, "
            "/v1/health, /v1/report and /metrics queries, fronted by a "
            "content-digest-keyed response cache. SIGTERM drains "
            "in-flight requests, stops at the next day boundary and "
            "exits 0 with the store resumable."
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", required=True,
        help="run store directory the daemon writes and serves from",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = ephemeral; see --port-file)",
    )
    parser.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port here once listening (for scripts "
             "driving an ephemeral port)",
    )
    parser.add_argument(
        "--day-delay", type=float, default=0.0, metavar="SECONDS",
        help="pause between simulated days (default: 0 = run flat out)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=128, metavar="N",
        help="response-cache capacity (default: %(default)s)",
    )
    parser.add_argument(
        "--read-cache-entries", type=int, default=8, metavar="N",
        help="store decompress-cache capacity (default: %(default)s; "
             "0 disables)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="anchor cadence (default: 1 so every published day is "
             "directly decodable by /v1/day)",
    )
    parser.add_argument(
        "--slices", action="store_true",
        help="record per-day analysis slices in the served store, "
             "enabling /v1/report?source=streaming and 'repro report "
             "--from-store' (fresh runs only; a resumed store keeps "
             "its slice setting)",
    )
    parser.add_argument(
        "--no-linger", action="store_true",
        help="exit once the campaign completes instead of continuing "
             "to serve the finished store",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign checkpointed in --checkpoint-dir "
             "instead of starting fresh",
    )
    parser.add_argument("--seed", type=int, default=7, help="study seed")
    parser.add_argument(
        "--days", type=int, default=38, help="campaign length in days"
    )
    parser.add_argument(
        "--scale", type=float, default=0.01,
        help="tweet-volume scale (1.0 = paper scale)",
    )
    parser.add_argument(
        "--message-scale", type=float, default=0.1,
        help="in-group message-volume scale",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the daily probe pass (default: 1)",
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIO_PACKS), default=None,
        help="scenario pack shaping the served campaign's weather "
             "(fresh runs only; resumed stores keep their own)",
    )
    parser.add_argument(
        "--scenario-file", metavar="PATH", default=None,
        help="load a custom scenario pack from a JSON file instead of "
             "--scenario",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def serve_main(argv) -> int:
    """``repro serve --checkpoint-dir DIR``: run the campaign daemon."""
    args = build_serve_parser().parse_args(argv)
    configure_logging(args.log_level)
    from repro.serve import ServeConfig, ServeDaemon

    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_entries=args.cache_entries,
        read_cache_entries=args.read_cache_entries,
        day_delay_s=args.day_delay,
        linger=not args.no_linger,
    )
    if args.checkpoint_every < 1:
        raise ConfigError(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.scenario is not None and args.scenario_file is not None:
        raise ConfigError(
            "--scenario and --scenario-file are mutually exclusive"
        )
    if args.resume and (
        args.scenario is not None or args.scenario_file is not None
    ):
        raise ConfigError(
            "--scenario/--scenario-file apply to fresh runs only; a "
            "resumed store keeps the scenario it was checkpointed with"
        )
    if args.resume and args.slices:
        raise ConfigError(
            "--slices applies to fresh runs only; a resumed store "
            "keeps its slice setting"
        )
    if args.resume:
        study = Study.resume(args.checkpoint_dir)
    else:
        scenario = None
        if args.scenario is not None and args.scenario != "paper-weather":
            scenario = ScenarioPack.named(args.scenario)
        elif args.scenario_file is not None:
            scenario = load_pack_file(args.scenario_file)
        study = Study(
            StudyConfig(
                seed=args.seed,
                n_days=args.days,
                scale=args.scale,
                message_scale=args.message_scale,
                join_day=min(10, args.days - 1),
                scenario=scenario,
            )
        )
    daemon = ServeDaemon(
        study,
        serve_config,
        checkpoint_dir=args.checkpoint_dir,
        anchor_every=args.checkpoint_every,
        slices=args.slices,
        run_kwargs={"workers": args.workers} if args.workers > 1 else None,
    )
    logger.info(
        "# Serving %s on %s (%s campaign, %d days)",
        args.checkpoint_dir, daemon.url,
        "resumed" if args.resume else "fresh", study.config.n_days,
    )
    return daemon.serve(port_file=args.port_file)


def build_serve_load_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve-load",
        description=(
            "Replay deterministic client personas from the scenario "
            "registry (lurker, poster, spammer, admin) against a "
            "running 'repro serve' daemon and print a "
            "latency/throughput table."
        ),
    )
    parser.add_argument(
        "--url", required=True, metavar="URL",
        help="base URL of the daemon (e.g. http://127.0.0.1:8700)",
    )
    parser.add_argument(
        "--clients", type=int, default=6, metavar="N",
        help="concurrent client threads, dealt round-robin across "
             "personas (default: %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=50, metavar="N",
        help="requests per client (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="persona RNG seed (default: %(default)s)",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def serve_load_main(argv) -> int:
    """``repro serve-load --url URL``: exit 0 iff no request failed."""
    args = build_serve_load_parser().parse_args(argv)
    configure_logging(args.log_level)
    from repro.serve import run_load

    report = run_load(
        args.url, clients=args.clients, requests=args.requests,
        seed=args.seed,
    )
    print(report.format_table())
    return 0 if report.total_errors == 0 else 1


def build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description=(
            "Inspect the built-in scenario packs and the persona "
            "registry they mix (see --scenario / --scenario-file on "
            "the main command)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="one line per built-in pack (and per persona)"
    )
    describe = sub.add_parser(
        "describe", help="print one pack's phases, mixes and overlays"
    )
    describe.add_argument(
        "name",
        help="a built-in pack name (see 'scenarios list') or a "
             "persona name",
    )
    return parser


def scenarios_main(argv) -> int:
    """``repro scenarios list|describe NAME``: inspect the registry."""
    from repro.scenarios import PERSONAS, get_persona

    args = build_scenarios_parser().parse_args(argv)
    if args.command == "list":
        print("scenario packs:")
        for name in SCENARIO_PACKS:
            pack = ScenarioPack.named(name)
            marker = " (default)" if pack.is_identity else ""
            print(f"  {name:<16} {pack.description}{marker}")
        print()
        print("personas:")
        for persona in PERSONAS.values():
            print(f"  {persona.name:<16} {persona.description}")
        return 0
    if args.name in SCENARIO_PACKS:
        pack = ScenarioPack.named(args.name)
        print(f"{pack.name}: {pack.description}")
        print(f"persona mix: {pack.persona_mix()}")
        if pack.is_identity:
            print("phases: none (the paper's weather, unmodified)")
            return 0
        for phase in pack.phases:
            window = (
                f"[{phase.start_day}, "
                f"{'...' if phase.end_day is None else phase.end_day})"
            )
            print(f"phase {phase.label or '?'} days {window}")
            print(f"  mix: {dict(phase.mix)}")
            overlay = {
                knob: value
                for knob, value in phase.overlay.knobs().items()
                if value != 1.0
            }
            if phase.overlay.platforms:
                overlay["platforms"] = list(phase.overlay.platforms)
            print(f"  overlay: {overlay or 'none'}")
        return 0
    # Fall through to the persona registry.
    try:
        persona = get_persona(args.name)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"known packs: {', '.join(SCENARIO_PACKS)}", file=sys.stderr
        )
        return 2
    print(f"{persona.name}: {persona.description}")
    for knob, value in persona.knobs().items():
        if value != 1.0:
            print(f"  {knob}: {value}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenarios":
        return scenarios_main(argv[1:])
    if argv and argv[0] == "fsck":
        return fsck_main(argv[1:])
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "fleet":
        return fleet_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "serve-load":
        return serve_load_main(argv[1:])
    args = build_parser().parse_args(argv)
    validate_args(args)
    configure_logging(args.log_level)
    study = _build_study(args)
    if args.telemetry_dir:
        study.telemetry.enable()
    config = study.config
    checkpointing = args.resume or args.fork_day is not None
    mode = (
        "Resuming" if args.resume
        else "Forking" if args.fork_day is not None
        else "Running"
    )
    faults = config.faults.name if config.faults is not None else "none"
    logger.info(
        "# %s %d-day study: seed=%s scale=%s message_scale=%s faults=%s "
        "scenario=%s",
        mode, config.n_days, config.seed, config.scale,
        config.message_scale, faults, config.scenario_name,
    )
    start = time.time()
    dataset = study.run(
        checkpoint_dir=None if checkpointing else args.checkpoint_dir,
        anchor_every=None if checkpointing else args.checkpoint_every,
        slices=False if checkpointing else args.slices,
        workers=args.workers,
        worker_deadline=args.worker_deadline,
        worker_restarts=args.worker_restarts,
    )
    logger.info("# Study complete in %.1fs", time.time() - start)

    # With a run store in play, the health report carries a
    # store-integrity section (a post-campaign fsck of the store).
    fsck_report = None
    store_dir = (
        args.fork_into if args.fork_day is not None else args.checkpoint_dir
    )
    if store_dir is not None:
        from repro.integrity import fsck_store

        fsck_report = fsck_store(store_dir, telemetry=study.telemetry)

    print(render_table1())
    names = args.only if args.only else sorted(RENDERERS)
    if args.faults != "none" and "health" not in names:
        names = ["health"] + list(names)
    if dataset.scenario != "paper-weather" and "scenario" not in names:
        names = ["scenario"] + list(names)
    for name in names:
        print()
        if name == "health" and fsck_report is not None:
            print(render_health(dataset, fsck=fsck_report))
        else:
            print(RENDERERS[name](dataset))

    if args.topics:
        print()
        results = {
            platform: extract_topics(
                dataset, platform, n_topics=10, n_iter=40, seed=args.seed
            )
            for platform in ("whatsapp", "telegram", "discord")
        }
        print(render_table3(results))

    if args.validate:
        from repro.validation import render_validation_report, validate_dataset

        print()
        print(render_validation_report(validate_dataset(dataset)))

    if args.telemetry_dir:
        report = render_telemetry(study.telemetry)
        print()
        print(report)
        export_telemetry(study.telemetry, args.telemetry_dir, report=report)
        logger.info("# Telemetry written to %s", args.telemetry_dir)

    if args.save:
        from repro.io import save_dataset

        save_dataset(dataset, args.save)
        logger.info("# Dataset saved to %s", args.save)

    if args.export_csv:
        from repro.io import export_all_csv

        paths = export_all_csv(dataset, args.export_csv)
        logger.info(
            "# %d CSV files written to %s", len(paths), args.export_csv
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
