"""Tweet/message tokenisation.

Mirrors the preprocessing the paper applies before LDA: lowercase,
strip URLs, mentions and punctuation, drop stop words and very short
tokens.
"""

from __future__ import annotations

import re
from typing import List

from repro.text.stopwords import is_stopword

__all__ = ["tokenize", "tokenize_for_lda"]

_URL_RE = re.compile(r"https?://\S+|\b[\w.-]+\.(?:com|me|gg|org)/\S*")
_MENTION_RE = re.compile(r"@\w+")
_TOKEN_RE = re.compile(r"[a-z][a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase word tokens.

    URLs and @-mentions are removed first; hashtags contribute their
    bare word (``#crypto`` -> ``crypto``).
    """
    cleaned = _URL_RE.sub(" ", text.lower())
    cleaned = _MENTION_RE.sub(" ", cleaned)
    return _TOKEN_RE.findall(cleaned)


def tokenize_for_lda(text: str, min_len: int = 3) -> List[str]:
    """Tokenise and remove stop words / short tokens for topic modeling."""
    return [
        token
        for token in tokenize(text)
        if len(token) >= min_len and not is_stopword(token)
    ]
