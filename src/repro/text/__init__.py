"""Text processing: tokenisation, stop words, language ID, topic bank.

Used on both sides of the reproduction: the simulator generates tweet
and message text from topic vocabularies, and the analysis pipeline
tokenises that text, removes stop words, and runs LDA over it — exactly
the preprocessing the paper applies before topic modeling (Section 4).
"""

from repro.text.langid import detect_language
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.tokenize import tokenize, tokenize_for_lda

__all__ = [
    "ENGLISH_STOPWORDS",
    "detect_language",
    "is_stopword",
    "tokenize",
    "tokenize_for_lda",
]
