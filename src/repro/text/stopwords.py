"""English stop-word list.

The paper removes stop words from English tweets before running LDA.
This list covers the standard closed-class English vocabulary plus the
handful of Twitter-specific tokens (``rt``, ``https``…) that would
otherwise dominate topics.  Note the paper's own topic terms include
words like "will", "can", "don" — their stop list evidently kept some
of these, so ours is deliberately conservative and keeps them too.
"""

from __future__ import annotations

__all__ = ["ENGLISH_STOPWORDS", "is_stopword"]

ENGLISH_STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by could couldn did
    didn do does doesn doing down during each few for from further had
    hadn has hasn have haven having he her here hers herself him himself
    his how i if in into is isn it its itself let me more most mustn my
    myself no nor not of off on once only or other ought our ours
    ourselves out over own same shan she should shouldn so some such than
    that the their theirs them themselves then there these they this
    those through to too under until up very was wasn we were weren what
    when where which while who whom why with won would wouldn you your
    yours yourself yourselves
    rt amp http https www com
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return True if ``token`` is an English stop word."""
    return token in ENGLISH_STOPWORDS
