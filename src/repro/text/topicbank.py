"""Topic vocabularies calibrated to Table 3 of the paper.

Table 3 lists, for each platform, the ten LDA topics extracted from the
English tweets that share group URLs, with a manual label, the topic's
tweet share, and its top terms.  The reproduction uses those published
topics as *generative* specifications: English tweet text is sampled
from these vocabularies (plus common filler), so that re-running LDA on
the synthetic corpus recovers the same topic structure the paper found.

The same specifications are reused on the analysis side to auto-label
the topics LDA extracts (by vocabulary overlap), replacing the paper's
manual labeling step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "TopicSpec",
    "PLATFORM_TOPICS",
    "LANGUAGE_TOPIC_BANKS",
    "COMMON_TERMS",
    "LANGUAGE_VOCAB",
    "topic_shares",
    "language_bank",
]


@dataclass(frozen=True)
class TopicSpec:
    """One generative topic: a label, a tweet share, and its vocabulary.

    Attributes:
        label: The paper's manual high-level label for the topic.
        share: Fraction of the platform's English tweets drawn from it.
        terms: Characteristic vocabulary (most-probable words first).
    """

    label: str
    share: float
    terms: Tuple[str, ...]


def _t(label: str, share: float, terms: str) -> TopicSpec:
    return TopicSpec(label=label, share=share, terms=tuple(terms.split()))


#: Ten topics per platform, terms taken from Table 3 (OCR fragments such
#: as "oin"/"ollow" repaired to the obvious full words).
PLATFORM_TOPICS: Dict[str, List[TopicSpec]] = {
    "whatsapp": [
        _t("Forex training", 0.06,
           "learn free forex training join trading text mini class animation "
           "signals profit chart broker pips"),
        _t("Earn money from home", 0.08,
           "home earn dont just money using can start stay google "
           "work online income easy legit"),
        _t("Instagram followers boosting", 0.09,
           "join followers instagram gain want money online group learn make "
           "boost promo grow page engagement"),
        _t("Cryptocurrencies", 0.07,
           "bitcoin ethereum crypto currency ads year like line people new "
           "invest wallet market coin blockchain"),
        _t("Earn money from home", 0.13,
           "make can money know daily home earn forex cash market "
           "payout profit weekly guaranteed system"),
        _t("Cryptocurrencies", 0.05,
           "learn cryptocurrency make join days period another want day accumulate "
           "holders trade portfolio gains signal"),
        _t("WhatsApp group advertisement", 0.30,
           "join group whatsapp link follow click please chat open twitter "
           "invite members add active welcome"),
        _t("Making money", 0.09,
           "get never time actually income chat best taking account full "
           "rich hustle paid legit bonus"),
        _t("Nigeria-related", 0.06,
           "will new retweet capital people now interested writing nigerian online "
           "lagos naija abuja gist news"),
        _t("Cryptocurrencies", 0.07,
           "business ethereum free smart skills eth million join training webinar "
           "defi contract mining invest class"),
    ],
    "telegram": [
        _t("Cryptocurrencies", 0.09,
           "bitcoin join sats get winners hours chat nice come "
           "satoshi pump crypto btc exchange trading"),
        _t("Cryptocurrencies", 0.09,
           "usdt giveaways join winners follow enter btc trc trx hours "
           "tron deposit reward bonus listing"),
        _t("Social network activity", 0.11,
           "follow like retweet giveaway tag join win twitter friends friend "
           "share comment notifications mutuals boost"),
        _t("Ask me anything / quiz", 0.08,
           "ama may will utc quiz someone wallet dont just today "
           "session answer question prize live"),
        _t("Advertising Telegram groups", 0.14,
           "free join just telegram money day channel dont can baby "
           "best link active chat new"),
        _t("Sex", 0.13,
           "new worth user brand xpro performer smartphones girls boobs price "
           "video premium content hot leaked"),
        _t("Giveaways", 0.07,
           "giving away will tmn link honor full butt video get "
           "winner free claim fast limited"),
        _t("Sex", 0.10,
           "fuck want girl click show trading pussy powerful can cum "
           "nude cam private snap onlyfans"),
        _t("Advertising Telegram groups", 0.11,
           "telegram join group channel now below link get available opened "
           "subscribe members official community new"),
        _t("Referral marketing", 0.08,
           "airdrop open tokens wink referral token earn new good "
           "signup bounty reward invite code claim"),
    ],
    "discord": [
        _t("Gaming", 0.07,
           "patreon free get today mystery public gaming gamedev indiegames alongside "
           "update release beta demo stream"),
        _t("Organizing online events", 0.07,
           "will may hosting week one time tonight dont night last "
           "event movie party voice schedule"),
        _t("Gaming", 0.05,
           "like join alpha deal daily art lots battle raffle nintendo "
           "switch game play clan squad"),
        _t("Advertising Discord groups", 0.33,
           "discord join server link can visit want just new hey "
           "community chill friendly active members"),
        _t("Pokemon", 0.07,
           "united states venonat bite quick bug full fortnite pikachu confusion "
           "raid shiny pokemon catch trade"),
        _t("Advertising Discord groups", 0.10,
           "giveaway follow retweet friends tag join discord enter fast winners "
           "nitro boost free server invite"),
        _t("Tournaments", 0.09,
           "good live launching now tournament open next will free prize "
           "bracket scrims team signup match"),
        _t("Giveaways", 0.08,
           "giving est away awp will saturday friday coins many competition "
           "skins csgo drop winner raffle"),
        _t("Advertising Discord groups", 0.04,
           "discord join make sure ends chat token music server "
           "bots emotes roles lounge gaming"),
        _t("Hentai", 0.09,
           "join discord server come hentai now new paradise tenshi official "
           "anime waifu nsfw manga lewd"),
    ],
}

#: Topic banks for the non-English analyses the paper reports in prose:
#: "We find some topics that do not emerge in our English analysis
#: mainly due to the COVID-19 pandemic (in Spanish for WhatsApp and
#: Telegram) and politics-related groups (in Spanish for Telegram and
#: in Portuguese for WhatsApp)."  Terms are written without diacritics
#: so the ASCII tokenizer round-trips them.
LANGUAGE_TOPIC_BANKS: Dict[str, Dict[str, List[TopicSpec]]] = {
    "es": {
        "whatsapp": [
            _t("COVID-19", 0.18,
               "covid pandemia cuarentena vacuna virus contagio salud "
               "mascarilla hospital casos sintomas noticias"),
            _t("Group advertisement (es)", 0.40,
               "unete grupo enlace amigos nuevo entra chat bienvenidos "
               "activo miembros comparte invita"),
            _t("Earn money (es)", 0.25,
               "dinero ganar casa trabajo facil gratis ingresos pago "
               "rapido negocio oportunidad invierte"),
            _t("Cryptocurrencies (es)", 0.17,
               "bitcoin cripto moneda invertir ganancias billetera "
               "mercado trading señales bolsa"),
        ],
        "telegram": [
            _t("COVID-19", 0.15,
               "covid pandemia cuarentena vacuna virus contagio salud "
               "mascarilla hospital casos sintomas noticias"),
            _t("Politics (es)", 0.20,
               "politica gobierno presidente elecciones partido votar "
               "congreso izquierda derecha protesta ley corrupcion"),
            _t("Channel advertisement (es)", 0.35,
               "canal unete enlace telegram nuevo gratis entra "
               "suscribete oficial comunidad chat"),
            _t("Cryptocurrencies (es)", 0.30,
               "bitcoin cripto moneda invertir ganancias billetera "
               "mercado trading señales airdrop"),
        ],
    },
    "pt": {
        "whatsapp": [
            _t("Politics (pt)", 0.22,
               "politica governo presidente eleicao partido votar "
               "congresso esquerda direita brasil bolsonaro lula"),
            _t("Group advertisement (pt)", 0.40,
               "entre grupo link amigos novo zap bemvindo ativo "
               "membros compartilhe convite melhor"),
            _t("Earn money (pt)", 0.23,
               "dinheiro ganhar casa trabalho facil gratis renda "
               "pagamento rapido negocio oportunidade"),
            _t("COVID-19 (pt)", 0.15,
               "covid pandemia quarentena vacina virus contagio saude "
               "mascara hospital casos noticias"),
        ],
    },
}


def language_bank(platform: str, lang: str) -> List[TopicSpec]:
    """The topic bank for (platform, language); empty if none exists."""
    return LANGUAGE_TOPIC_BANKS.get(lang, {}).get(platform, [])


#: Low-rate filler vocabulary mixed into every English tweet so the LDA
#: input has realistic shared mass across topics.
COMMON_TERMS: Tuple[str, ...] = tuple(
    "check here everyone love great good really see know look thanks "
    "guys happy big still got way lets right first also".split()
)

#: Small per-language vocabularies for non-English tweet text.  The lang
#: analysis (Fig 4) uses the tweet's *lang tag*, so these only need to be
#: plausible, language-consistent filler.
LANGUAGE_VOCAB: Dict[str, Tuple[str, ...]] = {
    "es": tuple("unete grupo gratis dinero hola amigos enlace canal nuevo para".split()),
    "pt": tuple("entre grupo para dinheiro amigos novo aqui melhor canal brasil".split()),
    "ar": tuple("انضم مجموعة رابط قناة مجانا اصدقاء جديد اهلا تعال الان".split()),
    "tr": tuple("katıl grup ücretsiz para kanal arkadaşlar yeni link sohbet hemen".split()),
    "ja": tuple("参加 サーバー 無料 ゲーム 友達 新しい リンク 募集 配布 楽しい".split()),
    "fr": tuple("rejoins groupe gratuit argent amis lien nouveau canal salut vite".split()),
    "id": tuple("gabung grup gratis uang teman baru link kanal ayo sekarang".split()),
    "ru": tuple("группа бесплатно деньги друзья новый канал ссылка привет заходи чат".split()),
    "hi": tuple("समूह मुफ़्त पैसा दोस्त नया लिंक चैनल जुड़ें अभी चैट".split()),
    "de": tuple("gruppe kostenlos geld freunde neu link kanal beitreten jetzt chat".split()),
    "ko": tuple("그룹 무료 돈 친구 새로운 링크 채널 참여 지금 채팅".split()),
    "und": tuple("xx yy zz qq ww".split()),
}


def topic_shares(platform: str) -> Sequence[float]:
    """Return the normalised topic-share vector for ``platform``."""
    specs = PLATFORM_TOPICS[platform]
    total = sum(spec.share for spec in specs)
    return [spec.share / total for spec in specs]
