"""Naive language identification.

The paper reads the language field Twitter's API attaches to every
tweet; our simulated Twitter does the same, so the main pipeline never
needs to *detect* language.  This detector exists for the messages
collected inside groups (which carry no language tag) and for
validating that generated text is consistent with its declared tag.

It is a tiny stop-word / script classifier — enough to separate the
languages the paper reports (en, es, pt, ar, tr, ja, ...), not a
general-purpose detector.
"""

from __future__ import annotations

import re
from typing import Dict

__all__ = ["detect_language"]

_MARKERS: Dict[str, frozenset] = {
    "en": frozenset(
        "the and you for join free money this that with group make have".split()
    ),
    "es": frozenset(
        "que los las una del por para grupo gratis dinero este unete hola".split()
    ),
    "pt": frozenset(
        "que não uma com para grupo por mais você dinheiro entre aqui".split()
    ),
    "tr": frozenset(
        "bir ve bu için grup katıl ücretsiz para daha sohbet kanal".split()
    ),
    "fr": frozenset(
        "les des une pour dans groupe gratuit argent rejoindre vous avec".split()
    ),
    "id": frozenset(
        "yang dan untuk grup gratis uang gabung dengan dari ini kami".split()
    ),
}

_ARABIC_RE = re.compile(r"[؀-ۿ]")
_JAPANESE_RE = re.compile(r"[぀-ヿ一-鿿]")
_CYRILLIC_RE = re.compile(r"[Ѐ-ӿ]")


def detect_language(text: str) -> str:
    """Return a best-effort ISO 639-1 language code ('und' if unknown)."""
    if _ARABIC_RE.search(text):
        return "ar"
    if _JAPANESE_RE.search(text):
        return "ja"
    if _CYRILLIC_RE.search(text):
        return "ru"

    words = set(re.findall(r"[a-zà-ÿığşç]+", text.lower()))
    if not words:
        return "und"
    best_lang, best_score = "und", 0
    for lang, markers in _MARKERS.items():
        score = len(words & markers)
        if score > best_score:
            best_lang, best_score = lang, score
    return best_lang
