"""Declarative scenario packs: per-day-range persona mixes + overlays.

A :class:`ScenarioPack` describes one campaign weather as a sequence
of non-overlapping :class:`ScenarioPhase` windows.  Inside a phase,
newborn groups draw a persona from the phase's weighted mix and an
:class:`EventOverlay` multiplies platform-wide rates (an invite
storm, an outage, a purge).  Days outside every phase — and the whole
of the default ``paper-weather`` pack, which has no phases at all —
run the paper's calibrated weather untouched.

Packs are pure data, validated at parse time with
:class:`~repro.errors.ConfigError`; every coin flip happens in
:class:`~repro.scenarios.engine.ScenarioEngine` on the world's
per-day seeded stream, so the same pack + seed always produces the
same campaign.  The JSON encoding (:meth:`ScenarioPack.to_dict` /
:meth:`from_dict` / :func:`load_pack_file`) is what the checkpoint
manifest records and what ``--scenario-file`` parses.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.scenarios.personas import KNOBS, PERSONAS, get_persona

__all__ = [
    "DEFAULT_PACK_NAME",
    "EventOverlay",
    "SCENARIO_PACKS",
    "ScenarioPack",
    "ScenarioPhase",
    "load_pack_file",
    "pack_names",
]

#: The identity pack: the paper's weather, no phases, no extra draws.
DEFAULT_PACK_NAME = "paper-weather"


@dataclass(frozen=True)
class EventOverlay:
    """Platform-wide rate multipliers in force during one phase.

    The same knobs as a persona (see
    :data:`~repro.scenarios.personas.KNOBS`), applied on top of the
    drawn persona's shifts; ``platforms`` restricts the overlay to a
    subset of platforms (empty = all).  The persona *mix* of a phase
    always applies ecosystem-wide — only the overlay is targetable.
    """

    url_rate_mult: float = 1.0
    shares_mult: float = 1.0
    msg_rate_mult: float = 1.0
    active_frac_mult: float = 1.0
    churn_mult: float = 1.0
    size_mult: float = 1.0
    revoke_prob_mult: float = 1.0
    revoke_delay_mult: float = 1.0
    fresh_bias: float = 1.0
    platforms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for knob in KNOBS:
            value = getattr(self, knob)
            if not (isinstance(value, (int, float)) and value > 0.0):
                raise ConfigError(
                    f"overlay {knob} must be > 0, got {value!r}"
                )
        for platform in self.platforms:
            if platform not in ("whatsapp", "telegram", "discord"):
                raise ConfigError(
                    f"overlay names unknown platform {platform!r}"
                )

    def applies_to(self, platform: str) -> bool:
        """Whether this overlay is in force on ``platform``."""
        return not self.platforms or platform in self.platforms

    def knobs(self) -> Dict[str, float]:
        return {knob: float(getattr(self, knob)) for knob in KNOBS}

    @property
    def is_identity(self) -> bool:
        return all(getattr(self, knob) == 1.0 for knob in KNOBS)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = dict(self.knobs())
        payload["platforms"] = list(self.platforms)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EventOverlay":
        if not isinstance(payload, dict):
            raise ConfigError(f"overlay must be an object, got {payload!r}")
        unknown = set(payload) - set(KNOBS) - {"platforms"}
        if unknown:
            raise ConfigError(
                f"overlay has unknown keys {sorted(unknown)} "
                f"(known: {sorted(KNOBS)} + ['platforms'])"
            )
        kwargs: Dict[str, object] = {
            knob: payload[knob] for knob in KNOBS if knob in payload
        }
        kwargs["platforms"] = tuple(payload.get("platforms", ()))
        return cls(**kwargs)


_IDENTITY_OVERLAY = EventOverlay()


@dataclass(frozen=True)
class ScenarioPhase:
    """One day-range of a pack: a persona mix plus an event overlay.

    Attributes:
        start_day: First campaign day covered (inclusive, 0-based).
        end_day: First day *not* covered (exclusive); None = open-ended.
        mix: Weighted persona mix newborn groups draw from; names must
            exist in the persona registry, weights must be positive.
        overlay: Platform-wide multipliers in force during the phase.
        label: Human label for ``scenarios describe`` and reports.
    """

    start_day: int
    end_day: Optional[int]
    mix: Tuple[Tuple[str, float], ...]
    overlay: EventOverlay = field(default_factory=EventOverlay)
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.start_day, int) or self.start_day < 0:
            raise ConfigError(
                f"phase start_day must be an int >= 0, got {self.start_day!r}"
            )
        if self.end_day is not None and (
            not isinstance(self.end_day, int) or self.end_day <= self.start_day
        ):
            raise ConfigError(
                f"phase window is empty: [{self.start_day}, {self.end_day})"
            )
        if not self.mix:
            raise ConfigError("phase mix must name at least one persona")
        for name, weight in self.mix:
            get_persona(name)  # raises ConfigError on unknown names
            if not (isinstance(weight, (int, float)) and weight > 0.0):
                raise ConfigError(
                    f"mix weight for {name!r} must be > 0, got {weight!r}"
                )
        if len({name for name, _ in self.mix}) != len(self.mix):
            raise ConfigError("phase mix repeats a persona")
        # Canonical (name-sorted) mix order: phases that mean the same
        # thing compare equal and encode identically however they were
        # written down.
        object.__setattr__(
            self, "mix", tuple(sorted(self.mix))
        )

    def covers(self, day: int) -> bool:
        """Whether campaign day ``day`` falls inside the phase."""
        if day < self.start_day:
            return False
        return self.end_day is None or day < self.end_day

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "start_day": self.start_day,
            "end_day": self.end_day,
            "mix": {name: weight for name, weight in sorted(self.mix)},
            "overlay": self.overlay.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioPhase":
        if not isinstance(payload, dict):
            raise ConfigError(f"phase must be an object, got {payload!r}")
        known = {"label", "start_day", "end_day", "mix", "overlay"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"phase has unknown keys {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "start_day" not in payload or "mix" not in payload:
            raise ConfigError("phase requires 'start_day' and 'mix'")
        mix = payload["mix"]
        if not isinstance(mix, dict):
            raise ConfigError(
                f"phase mix must be an object of persona: weight, got {mix!r}"
            )
        return cls(
            start_day=payload["start_day"],
            end_day=payload.get("end_day"),
            mix=tuple(sorted(mix.items())),
            overlay=EventOverlay.from_dict(payload.get("overlay", {})),
            label=str(payload.get("label", "")),
        )


@dataclass(frozen=True)
class ScenarioPack:
    """A whole campaign weather: ordered, non-overlapping phases.

    An empty ``phases`` tuple is the identity pack: the engine takes
    the exact baseline code path with zero extra RNG draws, which is
    what keeps ``paper-weather`` exports byte-identical to the
    scenario-free pipeline.
    """

    name: str
    description: str = ""
    phases: Tuple[ScenarioPhase, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario pack name must be non-empty")
        previous: Optional[ScenarioPhase] = None
        for phase in self.phases:
            if previous is not None:
                if previous.end_day is None:
                    raise ConfigError(
                        f"pack {self.name!r}: open-ended phase "
                        f"[{previous.start_day}, ...) must come last"
                    )
                if phase.start_day < previous.end_day:
                    raise ConfigError(
                        f"pack {self.name!r}: phases overlap at day "
                        f"{phase.start_day}"
                    )
            previous = phase

    @property
    def is_identity(self) -> bool:
        """True if this pack never deviates from the paper's weather."""
        return not self.phases

    def phase_for(self, day: int) -> Optional[Tuple[int, ScenarioPhase]]:
        """The (index, phase) covering ``day``, or None (baseline day)."""
        for index, phase in enumerate(self.phases):
            if phase.covers(day):
                return index, phase
        return None

    def persona_mix(self) -> Dict[str, float]:
        """The pack's aggregate persona mix, normalised to sum 1.

        A structural summary (phase weights summed, not time-weighted
        — open-ended phases have no duration) for manifests, status
        and report headers.  The identity pack is all-baseline.
        """
        if not self.phases:
            return {"baseline": 1.0}
        totals: Dict[str, float] = {}
        for phase in self.phases:
            for name, weight in phase.mix:
                totals[name] = totals.get(name, 0.0) + weight
        grand = sum(totals.values())
        return {
            name: round(totals[name] / grand, 4) for name in sorted(totals)
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (checkpoint manifests, digests).

        Phases keep their (validated, ordered) sequence; mix and
        overlay keys are emitted sorted, so the encoding — and any
        digest over it — is independent of construction order.
        """
        return {
            "name": self.name,
            "description": self.description,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioPack":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"scenario pack must be an object, got {payload!r}"
            )
        known = {"name", "description", "phases"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"scenario pack has unknown keys {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "name" not in payload:
            raise ConfigError("scenario pack requires 'name'")
        phases = payload.get("phases", [])
        if not isinstance(phases, list):
            raise ConfigError(f"pack phases must be a list, got {phases!r}")
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            phases=tuple(
                ScenarioPhase.from_dict(phase) for phase in phases
            ),
        )

    @classmethod
    def named(cls, name: str) -> "ScenarioPack":
        """Return one of the built-in packs (see :data:`SCENARIO_PACKS`)."""
        try:
            builder = SCENARIO_PACKS[name]
        except KeyError:
            raise ConfigError(
                f"unknown scenario pack {name!r} "
                f"(known: {sorted(SCENARIO_PACKS)})"
            ) from None
        return builder()


def load_pack_file(path: Union[str, os.PathLike]) -> ScenarioPack:
    """Parse a JSON scenario-pack file (the ``--scenario-file`` path)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read scenario file {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(
            f"scenario file {path} is not valid JSON: {exc}"
        ) from exc
    return ScenarioPack.from_dict(payload)


# -- built-in packs ----------------------------------------------------------


def _pack_paper_weather() -> ScenarioPack:
    """The paper's 38-day weather, untouched (the default)."""
    return ScenarioPack(
        name=DEFAULT_PACK_NAME,
        description=(
            "the paper's calibrated weather, no persona shifts, no "
            "overlays — byte-identical to the scenario-free pipeline"
        ),
    )


def _pack_invite_storm() -> ScenarioPack:
    """A viral invite-creation spike, then a platform clean-up."""
    return ScenarioPack(
        name="invite-storm",
        description=(
            "days 2-4: a viral wave of new invite URLs dominated by "
            "posters and spammers; afterwards the platforms clean up "
            "(elevated revocation) while activity settles"
        ),
        phases=(
            ScenarioPhase(
                label="storm",
                start_day=2,
                end_day=5,
                mix=(("poster", 0.45), ("spammer", 0.35), ("baseline", 0.2)),
                overlay=EventOverlay(
                    url_rate_mult=5.0, shares_mult=2.0, churn_mult=1.5
                ),
            ),
            ScenarioPhase(
                label="cleanup",
                start_day=5,
                end_day=None,
                mix=(("baseline", 0.7), ("lurker", 0.3)),
                overlay=EventOverlay(
                    revoke_prob_mult=1.4, revoke_delay_mult=0.7
                ),
            ),
        ),
    )


def _pack_outage_day() -> ScenarioPack:
    """A platform-wide outage day followed by a catch-up burst."""
    return ScenarioPack(
        name="outage-day",
        description=(
            "day 3: an ecosystem-wide outage collapses invite "
            "creation and messaging; days 4-5 see the deferred "
            "activity return in a catch-up burst"
        ),
        phases=(
            ScenarioPhase(
                label="outage",
                start_day=3,
                end_day=4,
                mix=(("lurker", 0.8), ("baseline", 0.2)),
                overlay=EventOverlay(
                    url_rate_mult=0.05, msg_rate_mult=0.05, shares_mult=0.3
                ),
            ),
            ScenarioPhase(
                label="recovery",
                start_day=4,
                end_day=6,
                mix=(("poster", 0.5), ("baseline", 0.5)),
                overlay=EventOverlay(url_rate_mult=1.8, msg_rate_mult=1.4),
            ),
        ),
    )


def _pack_spam_wave() -> ScenarioPack:
    """A sustained coordinated link-farm campaign."""
    return ScenarioPack(
        name="spam-wave",
        description=(
            "from day 1: a coordinated link-farm wave — spammer-"
            "dominated group creation, blanket tweet sharing, and "
            "the platforms' takedowns racing behind"
        ),
        phases=(
            ScenarioPhase(
                label="wave",
                start_day=1,
                end_day=None,
                mix=(("spammer", 0.55), ("poster", 0.15), ("baseline", 0.3)),
                overlay=EventOverlay(
                    shares_mult=1.8,
                    revoke_prob_mult=1.5,
                    revoke_delay_mult=0.5,
                ),
            ),
        ),
    )


def _pack_mass_revocation() -> ScenarioPack:
    """A calm start, then a coordinated moderation purge."""
    return ScenarioPack(
        name="mass-revocation",
        description=(
            "days 0-2 run the paper's weather; from day 3 a "
            "coordinated purge — admin-led moderation, sharply "
            "elevated revocation, invites dying within hours"
        ),
        phases=(
            ScenarioPhase(
                label="calm",
                start_day=0,
                end_day=3,
                mix=(("baseline", 1.0),),
            ),
            ScenarioPhase(
                label="purge",
                start_day=3,
                end_day=None,
                mix=(("admin", 0.6), ("baseline", 0.4)),
                overlay=EventOverlay(
                    revoke_prob_mult=2.5,
                    revoke_delay_mult=0.2,
                    url_rate_mult=0.7,
                ),
            ),
        ),
    )


def _pack_election_surge() -> ScenarioPack:
    """An election-week surge on the phone-number platforms."""
    return ScenarioPack(
        name="election-surge",
        description=(
            "days 2-6: an election-week surge concentrated on "
            "WhatsApp and Telegram — poster-heavy group creation, "
            "multilingual message storms, churning memberships — "
            "then a lurker-heavy aftermath"
        ),
        phases=(
            ScenarioPhase(
                label="surge",
                start_day=2,
                end_day=7,
                mix=(("poster", 0.6), ("baseline", 0.25), ("spammer", 0.15)),
                overlay=EventOverlay(
                    url_rate_mult=3.0,
                    msg_rate_mult=2.5,
                    churn_mult=1.8,
                    shares_mult=1.5,
                    platforms=("whatsapp", "telegram"),
                ),
            ),
            ScenarioPhase(
                label="aftermath",
                start_day=7,
                end_day=None,
                mix=(("lurker", 0.5), ("baseline", 0.5)),
                overlay=EventOverlay(msg_rate_mult=0.7),
            ),
        ),
    )


#: Built-in pack name -> pack builder, in ``scenarios list`` order.
SCENARIO_PACKS = {
    DEFAULT_PACK_NAME: _pack_paper_weather,
    "invite-storm": _pack_invite_storm,
    "outage-day": _pack_outage_day,
    "spam-wave": _pack_spam_wave,
    "mass-revocation": _pack_mass_revocation,
    "election-surge": _pack_election_surge,
}


def pack_names() -> Tuple[str, ...]:
    """Built-in pack names, in listing order."""
    return tuple(SCENARIO_PACKS)
