"""The scenario engine: packs applied on the world's seeded stream.

:class:`ScenarioEngine` is the only piece of the scenario subsystem
that touches randomness, and even then only *borrowed* randomness:
:meth:`draw_persona` consumes exactly one uniform draw from the
per-day world stream the caller passes in, inside the spawn phase —
before any tweet-phase draw — so parent worlds and parallel worker
replicas (which advance through
:meth:`~repro.simulation.world.World.generate_day_groups`) make the
same draws in the same order.

The identity pack (``paper-weather``, or any pack on a day no phase
covers) is a strict no-op: :meth:`phase_for` returns None and the
world takes the exact pre-scenario code path with **zero** extra RNG
draws — which is what makes default exports byte-identical to the
scenario-free pipeline, not just statistically equivalent.

Everything else is deterministic arithmetic: per-phase cumulative
draw tables and per-(phase, platform, persona) effective calibrations
are computed once and cached.  Engines are cheap, picklable (they
ride inside world anchors and worker bootstraps) and rebuildable from
their pack alone.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.scenarios.packs import ScenarioPack, ScenarioPhase
from repro.scenarios.personas import (
    combine_knobs,
    get_persona,
    scale_calibration,
)
from repro.simulation.calibration import PlatformCalibration

__all__ = ["ScenarioEngine"]


class ScenarioEngine:
    """Deterministic pack interpreter for one world.

    ``pack`` may be None (identity — the paper's weather).
    """

    def __init__(self, pack: Optional[ScenarioPack]) -> None:
        self.pack = pack
        #: (phase_index) -> (persona names, cumulative draw thresholds).
        self._draw_tables: Dict[
            int, Tuple[Tuple[str, ...], Tuple[float, ...]]
        ] = {}
        #: (phase_index, platform, persona) -> effective calibration.
        self._calibrations: Dict[
            Tuple[int, str, str], PlatformCalibration
        ] = {}
        #: (phase_index, platform) -> spawn-rate multiplier.
        self._spawn_mults: Dict[Tuple[int, str], float] = {}

    @property
    def is_identity(self) -> bool:
        """True if no day can ever deviate from the baseline weather."""
        return self.pack is None or self.pack.is_identity

    @property
    def name(self) -> str:
        """The active pack name (the identity engine is paper-weather)."""
        from repro.scenarios.packs import DEFAULT_PACK_NAME

        return DEFAULT_PACK_NAME if self.pack is None else self.pack.name

    def phase_for(self, day: int) -> Optional[Tuple[int, ScenarioPhase]]:
        """The (index, phase) covering ``day``, or None (baseline day)."""
        if self.pack is None:
            return None
        return self.pack.phase_for(day)

    def _draw_table(
        self, index: int, phase: ScenarioPhase
    ) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
        """The phase's cumulative persona-draw thresholds.

        Draw weights are ``mix weight x persona url_rate_mult``: a
        persona's invite-creation propensity scales how many of the
        day's newborn groups it accounts for, exactly as the spawn
        rate itself scales by the mix-weighted mean (see
        :meth:`spawn_rate_mult`), so the two stay consistent.
        """
        table = self._draw_tables.get(index)
        if table is not None:
            return table
        names = tuple(name for name, _ in phase.mix)
        weights = [
            weight * get_persona(name).url_rate_mult
            for name, weight in phase.mix
        ]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        table = (names, tuple(cumulative))
        self._draw_tables[index] = table
        return table

    def draw_persona(
        self,
        index: int,
        phase: ScenarioPhase,
        rng: np.random.Generator,
    ) -> str:
        """Draw a newborn group's persona: one uniform from ``rng``."""
        names, cumulative = self._draw_table(index, phase)
        roll = float(rng.random())
        for name, threshold in zip(names, cumulative):
            if roll < threshold:
                return name
        return names[-1]

    def spawn_rate_mult(
        self, index: int, phase: ScenarioPhase, platform: str
    ) -> float:
        """Multiplier on the platform's baseline new-groups-per-day rate.

        The phase overlay's ``url_rate_mult`` (where it applies to the
        platform) times the mix-weighted mean of the personas' own
        ``url_rate_mult`` — so a spammer-heavy mix raises the URL
        birth rate even without an overlay.
        """
        key = (index, platform)
        cached = self._spawn_mults.get(key)
        if cached is not None:
            return cached
        total = sum(weight for _, weight in phase.mix)
        mix_mult = (
            sum(
                weight * get_persona(name).url_rate_mult
                for name, weight in phase.mix
            )
            / total
        )
        overlay_mult = (
            phase.overlay.url_rate_mult
            if phase.overlay.applies_to(platform)
            else 1.0
        )
        mult = mix_mult * overlay_mult
        self._spawn_mults[key] = mult
        return mult

    def calibration(
        self,
        index: int,
        phase: ScenarioPhase,
        platform: str,
        persona: str,
        cal: PlatformCalibration,
    ) -> PlatformCalibration:
        """The effective calibration for one newborn group.

        Persona knobs times the phase overlay's knobs (where the
        overlay applies to the platform), applied once and cached per
        (phase, platform, persona).  A baseline persona inside an
        identity overlay returns ``cal`` itself.
        """
        key = (index, platform, persona)
        cached = self._calibrations.get(key)
        if cached is not None:
            return cached
        knob_maps = [get_persona(persona).knobs()]
        if phase.overlay.applies_to(platform):
            knob_maps.append(phase.overlay.knobs())
        effective = scale_calibration(cal, combine_knobs(*knob_maps))
        self._calibrations[key] = effective
        return effective
