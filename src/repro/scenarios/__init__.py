"""Declarative scenario packs and persona workload mixes.

The campaign engine's "weather" layer: a persona registry
(:mod:`~repro.scenarios.personas`) of behavioural parameter bundles
over the seeded simulation distributions, composed into declarative
:class:`ScenarioPack` definitions (:mod:`~repro.scenarios.packs`) —
per-day-range weighted persona mixes plus event overlays — and
interpreted deterministically by the
:class:`~repro.scenarios.engine.ScenarioEngine` on the world's
per-day seeded stream.

The default ``paper-weather`` pack is the identity: zero extra RNG
draws, exports byte-identical to the scenario-free pipeline.  Packs
are part of a campaign's config identity (checkpoint manifests record
them; resume refuses a mismatched store) and swappable at
``Study.fork(scenario=...)`` exactly like fault plans.
"""

from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.packs import (
    DEFAULT_PACK_NAME,
    SCENARIO_PACKS,
    EventOverlay,
    ScenarioPack,
    ScenarioPhase,
    load_pack_file,
    pack_names,
)
from repro.scenarios.personas import (
    KNOBS,
    PERSONAS,
    Persona,
    get_persona,
    persona_names,
    scale_calibration,
)

__all__ = [
    "DEFAULT_PACK_NAME",
    "KNOBS",
    "PERSONAS",
    "SCENARIO_PACKS",
    "EventOverlay",
    "Persona",
    "ScenarioEngine",
    "ScenarioPack",
    "ScenarioPhase",
    "get_persona",
    "load_pack_file",
    "pack_names",
    "persona_names",
    "scale_calibration",
]
