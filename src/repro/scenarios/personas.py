"""Behaviour personas: parameter bundles over the seeded distributions.

A :class:`Persona` is a small set of multiplicative knobs applied to a
:class:`~repro.simulation.calibration.PlatformCalibration` — the same
calibrated distributions the paper's weather draws from, shifted
towards one behavioural archetype (a lurker's quiet group, a
spammer's throwaway invite churn, an admin's tightly-moderated room).
Personas are pure data: no coin flips happen here.  The scenario
engine draws which persona a newborn group belongs to from the
per-day seeded stream and spawns it from the persona's *effective*
calibration, so every persona-shifted draw stays inside the existing
seeded-RNG facade.

Grounded in the Telegram Group-verse / TeleScope observation that
group populations decompose into distinct behavioural classes; the
four non-baseline personas here are the minimal registry ROADMAP asks
for (lurker/poster/spammer/admin).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigError
from repro.simulation.calibration import PlatformCalibration

__all__ = [
    "KNOBS",
    "PERSONAS",
    "Persona",
    "combine_knobs",
    "get_persona",
    "persona_names",
    "scale_calibration",
]

#: Every multiplicative knob a persona (or event overlay) may turn.
#: All default to 1.0 (= the paper's calibrated behaviour).
KNOBS = (
    "url_rate_mult",       # invite-creation propensity (new groups/day)
    "shares_mult",         # link-sharing propensity on Twitter
    "msg_rate_mult",       # in-group messages/day
    "active_frac_mult",    # fraction of members who ever post
    "churn_mult",          # join/leave slope magnitude
    "size_mult",           # group size at first share
    "revoke_prob_mult",    # probability the invite URL ever dies
    "revoke_delay_mult",   # mean extra lifetime of later-revoked URLs
    "fresh_bias",          # P(created the same day it is shared)
)


@dataclass(frozen=True)
class Persona:
    """One behavioural archetype as a bundle of distribution shifts.

    Every knob is a multiplier on the corresponding calibrated
    parameter (see :func:`scale_calibration` for the exact mapping);
    1.0 everywhere reproduces the paper's behaviour exactly.
    """

    name: str
    description: str
    url_rate_mult: float = 1.0
    shares_mult: float = 1.0
    msg_rate_mult: float = 1.0
    active_frac_mult: float = 1.0
    churn_mult: float = 1.0
    size_mult: float = 1.0
    revoke_prob_mult: float = 1.0
    revoke_delay_mult: float = 1.0
    fresh_bias: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("persona name must be non-empty")
        for knob in KNOBS:
            value = getattr(self, knob)
            if not (isinstance(value, (int, float)) and value > 0.0):
                raise ConfigError(
                    f"persona {self.name!r}: {knob} must be > 0, got {value!r}"
                )

    def knobs(self) -> Dict[str, float]:
        """The knob values as a plain dict (engine composition input)."""
        return {knob: float(getattr(self, knob)) for knob in KNOBS}

    @property
    def is_identity(self) -> bool:
        """True if this persona changes nothing."""
        return all(getattr(self, knob) == 1.0 for knob in KNOBS)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (manifests, ``scenarios describe``)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
        }
        payload.update(self.knobs())
        return payload


def combine_knobs(*knob_maps: Mapping[str, float]) -> Dict[str, float]:
    """Multiply knob maps together (persona x event overlay)."""
    combined = {knob: 1.0 for knob in KNOBS}
    for knobs in knob_maps:
        for knob, value in knobs.items():
            combined[knob] *= value
    return combined


def scale_calibration(
    cal: PlatformCalibration, knobs: Mapping[str, float]
) -> PlatformCalibration:
    """Apply multiplicative knobs to a calibration.

    Rates and probabilities scale linearly (clipped to stay valid);
    lognormal medians shift by ``log(mult)`` on mu, which multiplies
    the median while keeping the distribution's shape — the same
    "shift the location, keep the tail" convention the calibration
    constants themselves use.  The identity knob map returns ``cal``
    unchanged (same object), so the baseline path allocates nothing.
    """
    changes: Dict[str, object] = {}
    if knobs.get("url_rate_mult", 1.0) != 1.0:
        changes["new_urls_per_day"] = (
            cal.new_urls_per_day * knobs["url_rate_mult"]
        )
    if knobs.get("shares_mult", 1.0) != 1.0:
        mult = knobs["shares_mult"]
        # More sharing = fewer single-share URLs and a heavier tail.
        changes["single_share_prob"] = min(
            0.98, max(0.02, cal.single_share_prob / mult)
        )
        changes["share_tail_scale"] = cal.share_tail_scale * mult
    if knobs.get("msg_rate_mult", 1.0) != 1.0:
        mu, sigma = cal.msg_rate_lognorm
        changes["msg_rate_lognorm"] = (
            mu + math.log(knobs["msg_rate_mult"]), sigma
        )
    if knobs.get("active_frac_mult", 1.0) != 1.0:
        a, b = cal.active_frac_beta
        changes["active_frac_beta"] = (a * knobs["active_frac_mult"], b)
    if knobs.get("churn_mult", 1.0) != 1.0:
        mu, sigma = cal.growth_rate_lognorm
        changes["growth_rate_lognorm"] = (
            mu + math.log(knobs["churn_mult"]), sigma
        )
    if knobs.get("size_mult", 1.0) != 1.0:
        mu, sigma = cal.size_lognorm
        changes["size_lognorm"] = (mu + math.log(knobs["size_mult"]), sigma)
    if knobs.get("revoke_prob_mult", 1.0) != 1.0:
        changes["revoked_prob"] = min(
            0.98, cal.revoked_prob * knobs["revoke_prob_mult"]
        )
    if knobs.get("revoke_delay_mult", 1.0) != 1.0:
        changes["revoked_later_mean_days"] = max(
            0.25, cal.revoked_later_mean_days * knobs["revoke_delay_mult"]
        )
    if knobs.get("fresh_bias", 1.0) != 1.0:
        # Never push the same-day mass into the over-a-year mass.
        changes["staleness_same_day_prob"] = min(
            cal.staleness_same_day_prob * knobs["fresh_bias"],
            max(0.0, 0.98 - cal.staleness_over_year_prob),
        )
    if not changes:
        return cal
    return replace(cal, **changes)


#: The built-in persona registry, in reporting order.  ``baseline``
#: is the identity persona: the paper's calibrated behaviour untouched.
PERSONAS: Dict[str, Persona] = {
    persona.name: persona
    for persona in (
        Persona(
            name="baseline",
            description="the paper's calibrated behaviour, unmodified",
        ),
        Persona(
            name="lurker",
            description=(
                "quiet consumers: few invites, little posting, "
                "slow-moving small groups"
            ),
            url_rate_mult=0.4,
            shares_mult=0.6,
            msg_rate_mult=0.2,
            active_frac_mult=0.5,
            churn_mult=0.5,
            size_mult=0.8,
        ),
        Persona(
            name="poster",
            description=(
                "high-output communities: heavy messaging, "
                "aggressive link sharing, fast membership churn"
            ),
            url_rate_mult=1.2,
            shares_mult=1.6,
            msg_rate_mult=3.0,
            active_frac_mult=1.4,
            churn_mult=1.3,
        ),
        Persona(
            name="spammer",
            description=(
                "link-farm operators: throwaway same-day groups, "
                "blanket tweet sharing, fast platform takedowns"
            ),
            url_rate_mult=2.5,
            shares_mult=4.0,
            msg_rate_mult=2.0,
            size_mult=0.6,
            revoke_prob_mult=1.8,
            revoke_delay_mult=0.4,
            fresh_bias=1.3,
        ),
        Persona(
            name="admin",
            description=(
                "tightly-moderated rooms: fewer invites, prompt "
                "revocation, stable membership"
            ),
            url_rate_mult=0.8,
            shares_mult=0.9,
            msg_rate_mult=0.8,
            active_frac_mult=0.8,
            churn_mult=0.7,
            revoke_prob_mult=1.5,
            revoke_delay_mult=0.3,
        ),
    )
}


def persona_names() -> Tuple[str, ...]:
    """Registry persona names, in reporting order."""
    return tuple(PERSONAS)


def get_persona(name: str) -> Persona:
    """Look up a registry persona, raising :class:`ConfigError`."""
    try:
        return PERSONAS[name]
    except KeyError:
        raise ConfigError(
            f"unknown persona {name!r} (known: {sorted(PERSONAS)})"
        ) from None
