"""Typed PII-exposure records.

Section 6 of the paper catalogues what each platform exposes: WhatsApp
leaks phone numbers of members *and* of group creators (even to
non-members), Telegram exposes phones only for the ~0.68 % of users who
opt in, and Discord exposes linked social-media accounts for ~30 % of
users.  These records are the normalised output of that observation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PIIKind", "ExposureSource", "LinkedAccount", "PIIExposure"]


class PIIKind(enum.Enum):
    """The category of personally identifiable information exposed."""

    PHONE_NUMBER = "phone_number"
    LINKED_ACCOUNT = "linked_account"


class ExposureSource(enum.Enum):
    """How the PII became visible to the measurement pipeline."""

    #: Visible on the group landing page without joining (WhatsApp
    #: exposes the creator's phone number this way).
    LANDING_PAGE = "landing_page"
    #: Visible to any member after joining the group.
    GROUP_MEMBERSHIP = "group_membership"
    #: Returned by the platform's API for a user profile.
    API_PROFILE = "api_profile"


#: External platforms a Discord profile can link to (Table 5).
LINKABLE_PLATFORMS = (
    "twitch",
    "steam",
    "twitter",
    "spotify",
    "youtube",
    "battlenet",
    "xbox",
    "reddit",
    "leagueoflegends",
    "skype",
    "facebook",
)


@dataclass(frozen=True)
class LinkedAccount:
    """A social-media account linked to a messaging-platform profile."""

    platform: str
    handle: str


@dataclass(frozen=True)
class PIIExposure:
    """One observed PII leak.

    Attributes:
        platform: Messaging platform the leak was observed on.
        user_id: Platform-local user id the PII belongs to.
        kind: Category of the leaked information.
        source: Observation channel through which it leaked.
        value: The stored (already-sanitised) value — a phone-hash digest
            for :attr:`PIIKind.PHONE_NUMBER`, a ``platform:handle`` string
            for :attr:`PIIKind.LINKED_ACCOUNT`.
        country: Country dialing-code-derived country (phones only).
    """

    platform: str
    user_id: str
    kind: PIIKind
    source: ExposureSource
    value: str
    country: str = ""
