"""One-way hashing of phone numbers (the paper's ethics protocol).

The authors "do not store users' phone numbers as such, but use one-way
hashes of such data" (Section 3.4).  The reproduction enforces the same
rule: the measurement pipeline never stores a raw number — every phone
that crosses the observation boundary is hashed through a
:class:`PhoneHasher` first.  The *country dialing code* is kept in the
clear (the paper stores it for the country analysis), everything after
it is hashed.
"""

from __future__ import annotations

import hashlib

from repro.privacy.phone import PhoneNumber

__all__ = ["PhoneHasher", "hash_phone"]


def hash_phone(phone: PhoneNumber, salt: str = "") -> str:
    """Return a salted SHA-256 hex digest of the phone's E.164 form."""
    payload = (salt + phone.e164).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class PhoneHasher:
    """Salted one-way hasher that preserves the country dialing code.

    Identical numbers map to identical hashes (so unique-user counting
    still works) while the raw subscriber number is unrecoverable.
    """

    def __init__(self, salt: str = "repro-imc20") -> None:
        if not salt:
            raise ValueError("a non-empty salt is required")
        self._salt = salt

    @property
    def salt(self) -> str:
        """The salt in force (needed to build an equivalent hasher)."""
        return self._salt

    def hash(self, phone: PhoneNumber) -> str:
        """Hash a phone number, returning the hex digest."""
        return hash_phone(phone, self._salt)

    def record(self, phone: PhoneNumber) -> "HashedPhone":
        """Produce the storable record: (country code in clear, hash)."""
        return HashedPhone(
            country=phone.country,
            dialing_code=phone.dialing_code,
            digest=self.hash(phone),
        )


class HashedPhone:
    """What the pipeline is allowed to keep about a phone number."""

    __slots__ = ("country", "dialing_code", "digest")

    def __init__(self, country: str, dialing_code: str, digest: str) -> None:
        self.country = country
        self.dialing_code = dialing_code
        self.digest = digest

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashedPhone) and self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __repr__(self) -> str:
        return f"HashedPhone(country={self.country!r}, digest={self.digest[:10]}…)"
