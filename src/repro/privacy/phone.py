"""E.164-style phone numbers with country dialing codes.

WhatsApp and Telegram accounts are registered with phone numbers, and
the paper derives the *country* of WhatsApp group creators from the
dialing code exposed on the group landing page (Section 5, "Group
Countries").  This module models phone numbers with enough structure to
reproduce that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "COUNTRY_DIALING_CODES",
    "PhoneNumber",
    "country_of_dialing_code",
    "random_phone",
]

#: ISO 3166-1 alpha-2 country code -> international dialing code.
#: Covers every country named in the paper plus a broad long tail so the
#: simulated population is not artificially concentrated.
COUNTRY_DIALING_CODES = {
    "BR": "55",   # Brazil       (top WhatsApp-creator country in the paper)
    "NG": "234",  # Nigeria
    "ID": "62",   # Indonesia
    "IN": "91",   # India
    "SA": "966",  # Saudi Arabia
    "MX": "52",   # Mexico
    "AR": "54",   # Argentina
    "US": "1",
    "GB": "44",
    "DE": "49",
    "FR": "33",
    "ES": "34",
    "PT": "351",
    "IT": "39",
    "TR": "90",
    "RU": "7",
    "EG": "20",
    "PK": "92",
    "BD": "880",
    "KE": "254",
    "ZA": "27",
    "GH": "233",
    "CO": "57",
    "PE": "51",
    "CL": "56",
    "VE": "58",
    "MA": "212",
    "DZ": "213",
    "IQ": "964",
    "IR": "98",
    "AE": "971",
    "KW": "965",
    "QA": "974",
    "JP": "81",
    "KR": "82",
    "CN": "86",
    "TH": "66",
    "VN": "84",
    "PH": "63",
    "MY": "60",
    "AU": "61",
    "CA": "1",
    "NL": "31",
    "BE": "32",
    "SE": "46",
    "PL": "48",
    "UA": "380",
    "RO": "40",
    "GR": "30",
    "IL": "972",
}

#: Reverse map; for shared codes (US/CA both use "1") the first country
#: registered above wins, matching the ambiguity of real dialing codes.
_CODE_TO_COUNTRY: dict = {}
for _cc, _code in COUNTRY_DIALING_CODES.items():
    _CODE_TO_COUNTRY.setdefault(_code, _cc)


def country_of_dialing_code(code: str) -> str:
    """Return the ISO country for a dialing code ('' if unknown)."""
    return _CODE_TO_COUNTRY.get(code, "")


@dataclass(frozen=True)
class PhoneNumber:
    """An international phone number.

    Attributes:
        country: ISO 3166-1 alpha-2 country code.
        dialing_code: International dialing prefix (without '+').
        subscriber: National subscriber number (digits).
    """

    country: str
    dialing_code: str
    subscriber: str

    @property
    def e164(self) -> str:
        """The number in E.164 form, e.g. ``+5531912345678``."""
        return f"+{self.dialing_code}{self.subscriber}"

    def __str__(self) -> str:
        return self.e164


def random_phone(rng: np.random.Generator, country: str) -> PhoneNumber:
    """Generate a random phone number registered in ``country``.

    Unknown countries fall back to a generic 9-digit subscriber number
    with dialing code ``000`` so simulation never fails on an exotic
    country draw.
    """
    code = COUNTRY_DIALING_CODES.get(country, "000")
    subscriber = "".join(str(d) for d in rng.integers(0, 10, size=9))
    # Avoid leading zero so the E.164 form is well-formed.
    if subscriber[0] == "0":
        subscriber = "9" + subscriber[1:]
    return PhoneNumber(country=country, dialing_code=code, subscriber=subscriber)
