"""Privacy substrate: phone numbers, one-way hashing, and PII records.

The paper's ethics protocol stores phone numbers only as one-way hashes
and never attempts de-anonymisation.  This package provides the same
machinery for the reproduction: an E.164-style phone-number model with
country dialing codes (WhatsApp leaks the creator's country code on the
group landing page), a salted one-way hasher, and typed PII exposure
records used by :mod:`repro.analysis.privacy`.
"""

from repro.privacy.hashing import PhoneHasher, hash_phone
from repro.privacy.phone import (
    COUNTRY_DIALING_CODES,
    PhoneNumber,
    country_of_dialing_code,
    random_phone,
)
from repro.privacy.pii import (
    ExposureSource,
    LinkedAccount,
    PIIExposure,
    PIIKind,
)

__all__ = [
    "COUNTRY_DIALING_CODES",
    "ExposureSource",
    "LinkedAccount",
    "PIIExposure",
    "PIIKind",
    "PhoneHasher",
    "PhoneNumber",
    "country_of_dialing_code",
    "hash_phone",
    "random_phone",
]
