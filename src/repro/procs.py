"""Subprocess plumbing shared by the chaos harness and the fleet.

Both subsystems run campaigns in real child processes — the chaos
harness so a campaign can ``SIGKILL`` itself mid-day, the fleet so a
sweep cell's death cannot take the supervisor with it.  The pieces
they share live here:

* :func:`child_environ` — an environment whose ``PYTHONPATH`` puts
  the parent's own ``repro`` package first, so the child imports the
  exact tree the parent runs (src checkout, site-packages, tox venv —
  wherever it lives).
* :func:`exit_sentinel` — an inheritable pipe whose read end becomes
  readable (EOF) the instant the child exits, however it died.
  ``multiprocessing.connection.wait`` multiplexes any number of these
  alongside ordinary pipes, which is how the fleet supervisor notices
  a crashed cell immediately instead of on a poll tick.
* :func:`terminate_escalate` — the polite-then-firm stop: SIGTERM,
  a bounded grace period, then SIGKILL.  Used on hung cells and on
  stragglers when a sweep unwinds.
"""

from __future__ import annotations

import os
import subprocess
from typing import Dict, Optional, Tuple

__all__ = ["child_environ", "exit_sentinel", "terminate_escalate"]


def child_environ(
    extra: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """A copy of ``os.environ`` that imports this process's ``repro``.

    The package root (the directory *containing* ``repro/``) is
    prepended to ``PYTHONPATH`` so a ``python -m repro...`` child
    resolves the same code as the parent regardless of how the parent
    was launched.  ``extra`` entries are laid on top.
    """
    import repro
    from pathlib import Path

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + (os.pathsep + existing if existing else "")
    )
    if extra:
        env.update(extra)
    return env


def exit_sentinel() -> Tuple[int, int]:
    """A ``(read_fd, write_fd)`` pair acting as a child-exit sentinel.

    Pass ``write_fd`` to the child via ``Popen(pass_fds=(write_fd,))``
    and close it in the parent; the kernel closes the child's copy on
    exit — clean, crashed, or SIGKILLed — which EOFs ``read_fd`` and
    wakes any ``multiprocessing.connection.wait`` on it.  The caller
    owns both fds: close ``write_fd`` right after spawning and
    ``read_fd`` after reaping.
    """
    read_fd, write_fd = os.pipe()
    os.set_inheritable(write_fd, True)
    return read_fd, write_fd


def terminate_escalate(
    proc: "subprocess.Popen", grace_s: float = 5.0
) -> int:
    """Stop ``proc``: SIGTERM, wait up to ``grace_s``, then SIGKILL.

    Returns the process's exit code.  Idempotent on an already-dead
    process (it is simply reaped).
    """
    if proc.poll() is None:
        proc.terminate()
        try:
            return proc.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            proc.kill()
    return proc.wait()
