"""Failure accounting for the collection pipeline.

:class:`CollectionHealth` is a per-platform, per-day ledger of what
the resilience layer saw and did: attempts, injected faults, transient
failures, retries, circuit-breaker trips and rejections, missed and
deferred observations, truncated result pages.  It rides on the
:class:`~repro.core.dataset.StudyDataset` so the campaign's health is
part of the exported artefact — but only when there is something to
report, keeping fault-free exports byte-identical to the fault-free
pipeline's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["CollectionHealth", "HEALTH_FIELDS"]

#: Ledger fields, in reporting order.
HEALTH_FIELDS = (
    "attempts",
    "faults",
    "failures",
    "retries",
    "backoff_hours",
    "trips",
    "rejected",
    "missed",
    "deferred",
    "join_skips",
    "truncated",
    "dropped_results",
)

#: Fields whose presence means the campaign was NOT fault-free.
#: ``attempts`` alone is normal operation.
_DIRTY_FIELDS = tuple(f for f in HEALTH_FIELDS if f != "attempts")


class CollectionHealth:
    """Per-(platform, day) counters of faults and resilience actions."""

    def __init__(self) -> None:
        #: platform -> day -> field -> value
        self._counters: Dict[str, Dict[int, Dict[str, float]]] = {}

    def bump(
        self, platform: str, day: int, field: str, n: float = 1
    ) -> None:
        """Add ``n`` to ``field`` for ``platform`` on ``day``."""
        if field not in HEALTH_FIELDS:
            raise KeyError(f"unknown health field: {field!r}")
        days = self._counters.setdefault(platform, {})
        fields = days.setdefault(int(day), {})
        fields[field] = fields.get(field, 0) + n

    def merge(self, other: "CollectionHealth") -> None:
        """Fold ``other``'s counters into this ledger.

        Counters are plain sums per (platform, day, field), so merging
        per-shard deltas in any order reproduces the ledger a single
        sequential pass would have written — the property the parallel
        engine's snapshot mode relies on.
        """
        for platform, days in other._counters.items():
            for day, fields in days.items():
                for field, value in fields.items():
                    self.bump(platform, day, field, value)

    # -- queries -----------------------------------------------------------

    def platforms(self) -> List[str]:
        """Platforms with at least one recorded counter, sorted."""
        return sorted(self._counters)

    def total(self, field: str, platform: str = "") -> float:
        """Sum of ``field`` across days (one platform, or all)."""
        scopes = [platform] if platform else self.platforms()
        return sum(
            fields.get(field, 0)
            for scope in scopes
            for fields in self._counters.get(scope, {}).values()
        )

    def by_day(self, field: str, platform: str = "") -> Dict[int, float]:
        """Day -> summed ``field`` (one platform, or all)."""
        scopes = [platform] if platform else self.platforms()
        out: Dict[int, float] = {}
        for scope in scopes:
            for day, fields in self._counters.get(scope, {}).items():
                value = fields.get(field, 0)
                if value:
                    out[day] = out.get(day, 0) + value
        return out

    def is_clean(self) -> bool:
        """True if the campaign saw no fault, retry, trip, or miss."""
        return all(self.total(field) == 0 for field in _DIRTY_FIELDS)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict with deterministically sorted keys."""
        return {
            platform: {
                str(day): {
                    field: days[day][field] for field in sorted(days[day])
                }
                for day in sorted(days)
            }
            for platform, days in sorted(self._counters.items())
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "CollectionHealth":
        """Inverse of :meth:`to_dict`."""
        health = cls()
        for platform, days in document.items():
            for day, fields in days.items():
                for field, value in fields.items():
                    health.bump(platform, int(day), field, value)
        return health

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CollectionHealth):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def summary_rows(self) -> List[Tuple[str, ...]]:
        """One row per platform, fields in :data:`HEALTH_FIELDS` order."""
        rows = []
        for platform in self.platforms():
            row: List[str] = [platform]
            for field in HEALTH_FIELDS:
                value = self.total(field, platform)
                if field == "backoff_hours":
                    row.append(f"{value:.2f}")
                else:
                    row.append(str(int(value)))
            rows.append(tuple(row))
        return rows
