"""The resilience executor: retry + breaker + accounting in one call.

``executor.call(platform, op, t, fn)`` is the single idiom the
pipeline uses to touch a flaky surface: it consults the
(platform, op) circuit breaker, retries transient failures with
seeded backoff, keeps the health ledger, and re-raises the final
:class:`~repro.errors.TransientError` for the caller to degrade
gracefully (a missed snapshot, a skipped poll, a deferred join).
Non-transient errors — revocations, unknown URLs, join limits — pass
straight through untouched: resilience must never mask a real signal.

With a telemetry handle attached, every attempt, retry, failure,
rejection, and backoff wait also lands in the metrics registry
(labelled by platform and op) and each attempt's wall-clock duration
feeds the ``resilience_call_seconds`` histogram — the operational
view the per-day health ledger alone cannot give.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TypeVar

from repro.errors import CircuitOpenError, TransientError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.health import CollectionHealth
from repro.resilience.retry import RetryPolicy, backoff_hours
from repro.telemetry import Telemetry

__all__ = ["ResilienceExecutor"]

T = TypeVar("T")


class ResilienceExecutor:
    """Shared retry/breaker harness for every pipeline component."""

    def __init__(
        self,
        seed: int = 0,
        policy: Optional[RetryPolicy] = None,
        health: Optional[CollectionHealth] = None,
        failure_threshold: int = 5,
        cooldown_hours: float = 6.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.seed = seed
        self.policy = policy or RetryPolicy()
        self.health = health if health is not None else CollectionHealth()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._failure_threshold = failure_threshold
        self._cooldown_hours = cooldown_hours
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._call_counts: Dict[Tuple[str, str], int] = {}

    def reseed(self, seed: int) -> None:
        """Change the backoff-jitter seed (checkpoint forks).

        Breaker and call-count state are kept: a fork continues the
        campaign's resilience history, only future jitter draws move
        to the new seed's stream.
        """
        self.seed = seed

    def breaker(self, platform: str, op: str) -> CircuitBreaker:
        """The breaker guarding (``platform``, ``op``), created lazily."""
        key = (platform, op)
        found = self._breakers.get(key)
        if found is None:
            found = CircuitBreaker(
                platform,
                failure_threshold=self._failure_threshold,
                cooldown_hours=self._cooldown_hours,
                health=self.health,
                telemetry=self.telemetry,
            )
            self._breakers[key] = found
        return found

    def note_external_calls(
        self, platform: str, op: str, count: int
    ) -> None:
        """Account for ``count`` successful (platform, op) calls that
        ran outside this executor.

        The parallel engine's snapshot mode executes probe calls in
        worker-side executors; this keeps the parent's retry-jitter
        call index — and the lazily created breaker — where a
        sequential execution would have left them, so a campaign
        forked onto a fault plan later draws identical jitter either
        way.  (The health ledger's ``attempts`` arrive separately, via
        the merged per-shard ledger deltas.)
        """
        if count <= 0:
            return
        self.breaker(platform, op)
        key = (platform, op)
        self._call_counts[key] = self._call_counts.get(key, 0) + int(count)

    def call(
        self, platform: str, op: str, t: float, fn: Callable[[], T]
    ) -> T:
        """Run ``fn`` under retry + circuit-breaker protection.

        Raises:
            CircuitOpenError: The breaker is open; the platform was
                not touched.
            TransientError: Every attempt failed transiently (the last
                failure is re-raised).
        """
        day = int(t)
        # One flag read up front keeps the disabled path to a single
        # boolean check per instrumentation point on this hot path.
        tel = self.telemetry if self.telemetry.enabled else None
        breaker = self.breaker(platform, op)
        if not breaker.allow(t):
            self.health.bump(platform, day, "rejected")
            if tel:
                tel.count(
                    "resilience_rejected_total", platform=platform, op=op
                )
            raise CircuitOpenError(
                f"{platform}/{op} circuit open at t={t:.3f}"
            )
        key = (platform, op)
        index = self._call_counts.get(key, 0)
        self._call_counts[key] = index + 1
        last: Optional[TransientError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.health.bump(platform, day, "attempts")
            if tel:
                tel.count(
                    "resilience_attempts_total", platform=platform, op=op
                )
                start = tel.clock()
            try:
                result = fn()
            except TransientError as exc:
                if tel:
                    tel.observe(
                        "resilience_call_seconds",
                        tel.clock() - start,
                        platform=platform,
                        op=op,
                    )
                    tel.count(
                        "resilience_failures_total",
                        platform=platform,
                        op=op,
                    )
                last = exc
                self.health.bump(platform, day, "failures")
                breaker.record_failure(t)
                if not breaker.allow(t):
                    break  # tripped mid-call: stop retrying immediately
                if attempt < self.policy.max_attempts:
                    wait_hours = backoff_hours(
                        self.policy,
                        attempt,
                        self.seed,
                        f"{platform}/{op}/{index}",
                    )
                    self.health.bump(platform, day, "retries")
                    self.health.bump(
                        platform, day, "backoff_hours", wait_hours
                    )
                    if tel:
                        tel.count(
                            "resilience_retries_total",
                            platform=platform,
                            op=op,
                        )
                        tel.count(
                            "resilience_backoff_hours_total",
                            wait_hours,
                            platform=platform,
                            op=op,
                        )
            else:
                if tel:
                    tel.observe(
                        "resilience_call_seconds",
                        tel.clock() - start,
                        platform=platform,
                        op=op,
                    )
                breaker.record_success(t)
                return result
        assert last is not None
        raise last
