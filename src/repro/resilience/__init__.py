"""Resilience layer: absorbing the failures real platforms produce.

Used by the discovery engine, the metadata monitor, and the group
joiner so a transient failure (injected by :mod:`repro.faults` or
raised by a rate-limited simulated API) degrades the campaign
gracefully instead of crashing it or — worse — masquerading as a
revocation:

* :class:`RetryPolicy` / seeded exponential backoff (simulated time),
* :class:`CircuitBreaker` per (platform, operation), half-opening on a
  later simulated hour,
* :class:`ResilienceExecutor` tying both together around every flaky
  call,
* :class:`CollectionHealth`, the per-platform/day failure ledger the
  study exports and the "collection health" report renders.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.executor import ResilienceExecutor
from repro.resilience.health import HEALTH_FIELDS, CollectionHealth
from repro.resilience.retry import RetryPolicy, backoff_hours, backoff_schedule

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CollectionHealth",
    "HEALTH_FIELDS",
    "ResilienceExecutor",
    "RetryPolicy",
    "backoff_hours",
    "backoff_schedule",
]
