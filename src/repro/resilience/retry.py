"""Retry policy with seeded exponential backoff.

Backoff delays are *simulated-time bookkeeping*: the campaign clock is
not advanced (observation semantics stay fixed), but every delay the
real collector would have slept is computed — exponential growth with
jitter drawn via :func:`repro.rng.stable_uniform` — and accounted in
the collection-health ledger.  No wall-clock reads, no stdlib RNG:
the schedule is a pure function of (seed, call key, attempt), which a
guard test enforces by grepping this package's sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.rng import stable_uniform

__all__ = ["RetryPolicy", "backoff_hours", "backoff_schedule"]


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    Attributes:
        max_attempts: Total tries per call (1 = no retries).
        base_delay_hours: Backoff before the first retry.
        multiplier: Exponential growth factor per retry.
        max_delay_hours: Backoff ceiling.
        jitter: Symmetric jitter fraction (0.25 -> +/-25 %).
    """

    max_attempts: int = 3
    base_delay_hours: float = 0.25
    multiplier: float = 2.0
    max_delay_hours: float = 4.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_hours <= 0 or self.max_delay_hours <= 0:
            raise ConfigError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")


def backoff_hours(
    policy: RetryPolicy, attempt: int, seed: int, key: str
) -> float:
    """Backoff (hours) before retry number ``attempt`` (1-based).

    Deterministic in (policy, attempt, seed, key): the jitter is a
    stable hash, not a stateful RNG draw, so concurrent or re-ordered
    call sites cannot perturb each other's schedules.
    """
    raw = min(
        policy.max_delay_hours,
        policy.base_delay_hours * policy.multiplier ** (attempt - 1),
    )
    u = stable_uniform(f"{key}/attempt{attempt}", salt=f"backoff-{seed}")
    return raw * (1.0 + policy.jitter * (2.0 * u - 1.0))


def backoff_schedule(policy: RetryPolicy, seed: int, key: str):
    """The full delay sequence one call would sleep through."""
    return [
        backoff_hours(policy, attempt, seed, key)
        for attempt in range(1, policy.max_attempts)
    ]
