"""Per-platform circuit breakers on simulated time.

A breaker trips OPEN after ``failure_threshold`` consecutive transient
failures; while open, calls are refused without touching the platform
(so a rate-limited API is not hammered further).  Once
``cooldown_hours`` of *simulated* time has passed it half-opens: the
next call goes through as a probe — success closes the circuit,
failure re-opens it for another cooldown.  All transitions are driven
by the campaign clock (the ``t`` each call carries), never the wall
clock.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.resilience.health import CollectionHealth
from repro.telemetry import Telemetry

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker for one (platform, operation) pair."""

    def __init__(
        self,
        platform: str,
        failure_threshold: int = 5,
        cooldown_hours: float = 6.0,
        health: Optional[CollectionHealth] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_hours <= 0:
            raise ValueError(
                f"cooldown_hours must be positive, got {cooldown_hours}"
            )
        self.platform = platform
        self.failure_threshold = failure_threshold
        self.cooldown_days = cooldown_hours / 24.0
        self._health = health
        self._telemetry = telemetry
        self._open = False
        self._opened_t = 0.0
        self._consecutive_failures = 0
        self.trips = 0

    def state_at(self, t: float) -> BreakerState:
        """The breaker's state at simulated time ``t``."""
        if not self._open:
            return BreakerState.CLOSED
        if t >= self._opened_t + self.cooldown_days:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def allow(self, t: float) -> bool:
        """Whether a call may proceed at ``t`` (half-open lets a probe
        through; the probe's outcome decides what happens next)."""
        return self.state_at(t) is not BreakerState.OPEN

    def record_success(self, t: float) -> None:
        """A call (or half-open probe) succeeded: close the circuit."""
        self._open = False
        self._consecutive_failures = 0

    def record_failure(self, t: float) -> None:
        """A call failed transiently; maybe trip (or re-trip) the breaker."""
        if self.state_at(t) is BreakerState.HALF_OPEN:
            self._trip(t)
            return
        self._consecutive_failures += 1
        if not self._open and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._trip(t)

    def _trip(self, t: float) -> None:
        self._open = True
        self._opened_t = t
        self._consecutive_failures = 0
        self.trips += 1
        if self._health is not None:
            self._health.bump(self.platform, int(t), "trips")
        if self._telemetry is not None:
            self._telemetry.count(
                "breaker_trips_total", platform=self.platform
            )
