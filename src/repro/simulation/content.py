"""Tweet text and entity generation.

English tweets advertising a group are composed from the group's topic
vocabulary (Table 3's generative specs, see
:mod:`repro.text.topicbank`), so the paper's LDA analysis can recover
the published topic structure.  Non-English tweets draw from small
per-language vocabularies; the Fig 4 analysis reads the *lang tag*, not
the body.  Hashtag/mention counts follow the two calibration points the
paper reports per platform (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.simulation.calibration import ControlCalibration, PlatformCalibration
from repro.simulation.distributions import sample_entity_count
from repro.rng import stable_uniform
from repro.text.topicbank import (
    COMMON_TERMS,
    LANGUAGE_VOCAB,
    PLATFORM_TOPICS,
    TopicSpec,
    language_bank,
)

__all__ = ["ComposedTweet", "TweetComposer", "compose_control_text"]


@dataclass(frozen=True)
class ComposedTweet:
    """The textual payload of a tweet before it gets an id/author/time."""

    text: str
    hashtags: Tuple[str, ...]
    mentions: Tuple[str, ...]


class TweetComposer:
    """Composes invite-sharing tweets for one platform."""

    def __init__(self, platform: str, cal: PlatformCalibration) -> None:
        self._platform = platform
        self._cal = cal
        self._topics = PLATFORM_TOPICS[platform]

    def topic(self, index: int) -> TopicSpec:
        """The generative topic spec at ``index``."""
        return self._topics[index]

    def compose(
        self,
        rng: np.random.Generator,
        topic_index: int,
        lang: str,
        url: str,
    ) -> ComposedTweet:
        """Compose one original (non-retweet) invite tweet."""
        cal = self._cal
        spec = self._topics[topic_index]
        lang_spec = self._language_topic(lang, url)
        body = self._body_words(rng, spec, lang, lang_spec)

        if lang_spec is not None:
            hashtag_source: Tuple[str, ...] = lang_spec.terms
        elif lang == "en":
            hashtag_source = spec.terms
        else:
            hashtag_source = LANGUAGE_VOCAB.get(lang, LANGUAGE_VOCAB["und"])
        n_hashtags = sample_entity_count(
            rng, cal.hashtag_prob, cal.multi_hashtag_prob
        )
        hashtags = self._pick_hashtags(rng, hashtag_source, n_hashtags)

        n_mentions = sample_entity_count(
            rng, cal.mention_prob, cal.multi_mention_prob
        )
        mentions = tuple(
            f"user{int(rng.integers(1, 10_000_000))}" for _ in range(n_mentions)
        )

        parts = [" ".join(body)]
        parts.extend("#" + tag for tag in hashtags)
        parts.extend("@" + name for name in mentions)
        parts.append(url)
        return ComposedTweet(
            text=" ".join(parts), hashtags=hashtags, mentions=mentions
        )

    def _language_topic(self, lang: str, url: str) -> Optional[TopicSpec]:
        """The (platform, language) bank topic for this group, if any.

        The paper's non-English analyses (Spanish, Portuguese) find
        topics that do not exist in English — COVID-19 and politics.
        The pick is a stable function of the URL so every share of the
        same group stays on one topic.
        """
        bank = language_bank(self._platform, lang)
        if not bank:
            return None
        total = sum(spec.share for spec in bank)
        target = stable_uniform(f"{self._platform}/{url}/langtopic") * total
        running = 0.0
        for spec in bank:
            running += spec.share
            if target < running:
                return spec
        return bank[-1]

    def _body_words(
        self,
        rng: np.random.Generator,
        spec: TopicSpec,
        lang: str,
        lang_spec: Optional[TopicSpec] = None,
    ) -> Tuple[str, ...]:
        if lang == "en":
            n_topic = int(rng.integers(5, 10))
            n_common = int(rng.integers(1, 4))
            topic_idx = rng.integers(0, len(spec.terms), size=n_topic)
            common_idx = rng.integers(0, len(COMMON_TERMS), size=n_common)
            words = [spec.terms[i] for i in topic_idx]
            words += [COMMON_TERMS[i] for i in common_idx]
            return tuple(words)
        vocab = LANGUAGE_VOCAB.get(lang, LANGUAGE_VOCAB["und"])
        if lang_spec is not None:
            n_topic = int(rng.integers(5, 9))
            n_filler = int(rng.integers(1, 4))
            topic_idx = rng.integers(0, len(lang_spec.terms), size=n_topic)
            filler_idx = rng.integers(0, len(vocab), size=n_filler)
            words = [lang_spec.terms[i] for i in topic_idx]
            words += [vocab[i] for i in filler_idx]
            return tuple(words)
        n_words = int(rng.integers(4, 9))
        idx = rng.integers(0, len(vocab), size=n_words)
        return tuple(vocab[i] for i in idx)

    def _pick_hashtags(
        self,
        rng: np.random.Generator,
        source: Tuple[str, ...],
        count: int,
    ) -> Tuple[str, ...]:
        if count <= 0:
            return ()
        idx = rng.integers(0, len(source), size=count)
        return tuple(source[i] for i in idx)


def compose_control_text(
    rng: np.random.Generator, cal: ControlCalibration, lang: str
) -> ComposedTweet:
    """Compose one background (control-dataset) tweet with entities."""
    vocab = (
        COMMON_TERMS if lang == "en"
        else LANGUAGE_VOCAB.get(lang, LANGUAGE_VOCAB["und"])
    )
    n_words = int(rng.integers(4, 12))
    words = [vocab[i] for i in rng.integers(0, len(vocab), size=n_words)]

    n_hashtags = sample_entity_count(rng, cal.hashtag_prob, cal.multi_hashtag_prob)
    hashtags = tuple(
        str(vocab[int(rng.integers(0, len(vocab)))]) for _ in range(n_hashtags)
    )
    n_mentions = sample_entity_count(rng, cal.mention_prob, cal.multi_mention_prob)
    mentions = tuple(
        f"user{int(rng.integers(1, 10_000_000))}" for _ in range(n_mentions)
    )
    parts = [" ".join(words)]
    parts.extend("#" + tag for tag in hashtags)
    parts.extend("@" + name for name in mentions)
    return ComposedTweet(
        text=" ".join(parts), hashtags=hashtags, mentions=mentions
    )
