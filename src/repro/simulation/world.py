"""The day-by-day world generator.

``World`` owns the three platform services and the Twitter service and
advances them through the 38-day study window one day at a time:

1. New groups are born on each platform (Poisson around the calibrated
   per-day URL discovery rates) with a full sampled *life plan* —
   creation date in the past (staleness), size trajectory, invite
   revocation time, and messaging behaviour.
2. Each group's invite URL is shared in one or more tweets, spread over
   the following days; later shares may be retweets of the first.
3. Background (non-group) tweets are generated for the control stream.

Everything derives from the study seed; generating the same day twice
is an error, but two worlds with the same config are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clock import STUDY_DAYS
from repro.errors import ConfigError
from repro.platforms.base import GroupKind, GroupPlan, PlatformService
from repro.platforms.discord import DiscordService
from repro.platforms.telegram import TelegramService
from repro.platforms.telegram.service import TELEGRAM_CHANNEL_MAX_MEMBERS
from repro.platforms.whatsapp import WhatsAppService
from repro.rng import derive_rng
from repro.scenarios import ScenarioEngine, ScenarioPack
from repro.simulation.calibration import (
    CALIBRATIONS,
    CONTROL,
    CROSS_AUTHOR_PROB,
    CROSS_SHARE_PROB,
    PlatformCalibration,
)
from repro.simulation.content import TweetComposer, compose_control_text
from repro.simulation.distributions import (
    MAX_SHARES_PER_URL,
    author_pool_size,
    sample_active_frac,
    sample_msg_rate,
    sample_online_frac,
    sample_revocation_time,
    sample_shares_per_url,
    sample_size,
    sample_slope,
    sample_staleness_days,
)
from repro.simulation.population import AuthorPool, CreatorAssigner, build_user_model
from repro.text.topicbank import topic_shares
from repro.twitter.model import Tweet
from repro.twitter.service import TwitterService

__all__ = ["World", "WorldConfig", "ShareEvent", "URLTruth"]

_GID_PREFIXES = {"whatsapp": "WA", "telegram": "TG", "discord": "DC"}
_SERVICE_CLASSES = {
    "whatsapp": WhatsAppService,
    "telegram": TelegramService,
    "discord": DiscordService,
}
_AUTHOR_POOL_BASES = {
    "whatsapp": 1_000_000_000,
    "telegram": 2_000_000_000,
    "discord": 3_000_000_000,
    "control": 4_000_000_000,
}


@dataclass(frozen=True)
class WorldConfig:
    """Configuration of the generative world.

    Attributes:
        seed: Root seed; everything derives from it.
        n_days: Length of the study window (the paper's was 38).
        scale: Linear scale on all tweet/URL volumes (1.0 = paper scale).
        control_sample_rate: The sample-stream rate the pipeline should
            use.  The real study sampled 1 % of the full firehose; we
            generate a 100x-smaller background firehose and sample it at
            a correspondingly higher rate, preserving the control
            dataset's size relative to ``scale`` (documented
            substitution).
        control_oversample: Background volume relative to the control
            target, i.e. 1 / control_sample_rate.
        scenario: The scenario pack shaping group births (see
            :mod:`repro.scenarios`); None — or the identity
            ``paper-weather`` pack — runs the paper's weather with
            zero extra RNG draws.
    """

    seed: int = 7
    n_days: int = STUDY_DAYS
    scale: float = 0.01
    control_sample_rate: float = 0.5
    scenario: Optional[ScenarioPack] = None

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {self.n_days}")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if not 0.0 < self.control_sample_rate <= 1.0:
            raise ConfigError(
                "control_sample_rate must be in (0, 1], got "
                f"{self.control_sample_rate}"
            )

    @property
    def control_oversample(self) -> float:
        return 1.0 / self.control_sample_rate


@dataclass(frozen=True)
class ShareEvent:
    """One scheduled tweet sharing a group URL."""

    platform: str
    gid: str
    url: str
    topic_index: int
    lang: str
    t: float
    is_first: bool


@dataclass
class URLTruth:
    """Ground truth about one shared URL (for validation only).

    The measurement pipeline must *not* read these — it observes the
    world through the APIs; tests compare its estimates against this.
    """

    platform: str
    gid: str
    url: str
    first_share_t: float
    n_shares_scheduled: int
    created_t: float
    revoke_t: Optional[float]


class World:
    """The simulated ecosystem, generated one day at a time."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.twitter = TwitterService()
        self.platforms: Dict[str, PlatformService] = {}
        self._composers: Dict[str, TweetComposer] = {}
        self._author_pools: Dict[str, AuthorPool] = {}
        self._creator_assigners: Dict[str, CreatorAssigner] = {}
        self._topic_probs: Dict[str, np.ndarray] = {}
        self._lang_choices: Dict[str, Tuple[Tuple[str, ...], np.ndarray]] = {}
        self._retweet_probs: Dict[str, float] = {}
        self._group_counters: Dict[str, int] = {}
        self._pending: Dict[int, List[ShareEvent]] = {}
        self._first_tweets: Dict[str, Tweet] = {}
        self._last_control_tweet_id: Optional[int] = None
        self._tweet_seq = 0
        self._generated_through = -1
        self.truths: Dict[str, URLTruth] = {}
        #: The pack interpreter (identity when no scenario is active).
        self._scenario = ScenarioEngine(config.scenario)
        #: invite URL -> persona name, recorded only for groups born
        #: inside a scenario phase (baseline days leave no entry, so
        #: the identity pack touches nothing).
        self.personas: Dict[str, str] = {}
        # Scale the mega-URL cap with volume (see sample_shares_per_url).
        self._share_cap = max(300, int(MAX_SHARES_PER_URL * config.scale))
        # Cross-platform machinery: a shared author pool (users who
        # tweet about several platforms) and per-platform buffers of
        # recently created URLs available for cross-posting.
        total_expected_tweets = sum(
            cal.new_urls_per_day * config.n_days * config.scale
            * cal.mean_tweets_per_url
            for cal in CALIBRATIONS.values()
        )
        self._shared_author_pool = AuthorPool(
            5_000_000_000,
            author_pool_size(
                max(total_expected_tweets * CROSS_AUTHOR_PROB, 10.0), 0.4
            ),
        )
        self._recent_urls: Dict[str, List[str]] = {
            name: [] for name in CALIBRATIONS
        }

        for name, cal in CALIBRATIONS.items():
            service_cls = _SERVICE_CLASSES[name]
            self.platforms[name] = service_cls(config.seed, build_user_model(cal))
            self._composers[name] = TweetComposer(name, cal)
            expected_tweets = (
                cal.new_urls_per_day * config.n_days * config.scale
                * cal.mean_tweets_per_url
            )
            self._author_pools[name] = AuthorPool(
                _AUTHOR_POOL_BASES[name],
                author_pool_size(max(expected_tweets, 10.0), cal.users_per_tweet),
            )
            self._creator_assigners[name] = CreatorAssigner(
                derive_rng(config.seed, f"world/creators/{name}"),
                cal.user_population,
                cal.single_creator_frac,
                self.platforms[name].format_user_id,
            )
            self._topic_probs[name] = np.asarray(topic_shares(name))
            langs = tuple(lang for lang, _ in cal.languages)
            probs = np.array([p for _, p in cal.languages], dtype=float)
            self._lang_choices[name] = (langs, probs / probs.sum())
            # Only non-first shares can be retweets; rescale so the
            # overall retweet fraction hits the Fig 3c target.
            nonfirst_frac = 1.0 - 1.0 / cal.mean_tweets_per_url
            self._retweet_probs[name] = min(
                cal.retweet_frac / max(nonfirst_frac, 1e-9), 0.98
            )
            self._group_counters[name] = 0

        ctrl_langs = tuple(lang for lang, _ in CONTROL.languages)
        ctrl_probs = np.array([p for _, p in CONTROL.languages], dtype=float)
        self._control_langs = (ctrl_langs, ctrl_probs / ctrl_probs.sum())
        self._control_pool = AuthorPool(
            _AUTHOR_POOL_BASES["control"],
            author_pool_size(
                CONTROL.tweets_per_day * config.n_days * config.scale
                * config.control_oversample,
                0.6,
            ),
        )

    # -- public API -------------------------------------------------------

    def platform(self, name: str) -> PlatformService:
        """The ground-truth service for a platform name."""
        return self.platforms[name]

    def _day_rng(self, day: int) -> np.random.Generator:
        """The per-day derived stream, enforcing in-order generation."""
        if day != self._generated_through + 1:
            raise ConfigError(
                f"days must be generated in order: expected "
                f"{self._generated_through + 1}, got {day}"
            )
        return derive_rng(self.config.seed, f"world/day/{day}")

    def _spawn_day_groups(
        self, day: int, rng: np.random.Generator
    ) -> None:
        """The spawn phase of day ``day``: birth the day's new groups.

        All spawn-phase draws come first on the day stream, strictly
        before any tweet-phase draw, and no tweet-phase state
        feeds back into spawning — which is what lets a worker replica
        advance group state alone via :meth:`generate_day_groups`.

        On a day no scenario phase covers — every day of the identity
        ``paper-weather`` pack — this is the exact baseline code path
        with zero extra RNG draws, so default exports stay
        byte-identical to the scenario-free pipeline.  Inside a phase,
        each newborn group draws a persona (one uniform per group, on
        this same stream) and spawns from the persona's effective
        calibration; the draws happen identically in parent worlds
        and worker replicas.
        """
        phase = self._scenario.phase_for(day)
        for name, cal in CALIBRATIONS.items():
            if phase is None:
                n_new = int(
                    rng.poisson(cal.new_urls_per_day * self.config.scale)
                )
                for _ in range(n_new):
                    self._spawn_group(day, name, cal, rng)
                continue
            index, spec = phase
            rate = (
                cal.new_urls_per_day
                * self._scenario.spawn_rate_mult(index, spec, name)
            )
            n_new = int(rng.poisson(rate * self.config.scale))
            for _ in range(n_new):
                persona = self._scenario.draw_persona(index, spec, rng)
                effective = self._scenario.calibration(
                    index, spec, name, persona, cal
                )
                self._spawn_group(
                    day, name, effective, rng, persona=persona
                )

    def generate_day(self, day: int) -> None:
        """Generate all of day ``day``'s groups and tweets (in order)."""
        rng = self._day_rng(day)
        self._spawn_day_groups(day, rng)

        entries: List[Tuple[float, str, object]] = [
            (event.t, "share", event) for event in self._pending.pop(day, [])
        ]
        n_control = int(
            rng.poisson(
                CONTROL.tweets_per_day * self.config.scale
                * self.config.control_oversample
            )
        )
        entries.extend(
            (day + float(rng.random()), "control", None) for _ in range(n_control)
        )
        entries.sort(key=lambda item: item[0])

        tweets: List[Tweet] = []
        for t, kind, payload in entries:
            if kind == "share":
                tweets.append(self._compose_share_tweet(payload, rng))
            else:
                tweets.append(self._compose_control_tweet(t, rng))
        self.twitter.post_many(tweets)
        self._generated_through = day

    def generate_day_groups(self, day: int) -> None:
        """Advance *group* state through day ``day`` without any tweets.

        The parallel engine's worker replicas call this instead of
        :meth:`generate_day`: it runs exactly the spawn phase — the
        same draws, in the same order, on the same per-day derived
        stream — so every platform service registers the same groups
        with the same plans as the parent world, while the Twitter
        side (tweet composition, share scheduling consumers, control
        stream) is skipped entirely.  Spawn draws precede every
        tweet-phase draw on the day stream and tweet-phase state never
        feeds back into spawning, so the two paths produce identical
        group state.  Share events scheduled for the day and ground
        truths are dropped: a replica only ever serves metadata
        probes.
        """
        rng = self._day_rng(day)
        self._spawn_day_groups(day, rng)
        self._pending.pop(day, None)
        self.truths.clear()
        self._generated_through = day

    def generate_all(self) -> None:
        """Generate the whole study window."""
        for day in range(self._generated_through + 1, self.config.n_days):
            self.generate_day(day)

    def reseed(self, seed: int) -> None:
        """Reseed the *future* of this world (checkpoint forks).

        Days generated from here on derive their RNG streams from the
        new seed; everything already generated — and every lazily
        materialised per-group stream whose RNG was already keyed off
        the old seed — is untouched, so a fork branches the world's
        randomness at the fork day without rewriting its past.
        """
        self.config = replace(self.config, seed=seed)

    def set_scenario(self, pack: Optional[ScenarioPack]) -> None:
        """Swap the scenario pack for this world's *future* days (forks).

        Group spawning is a pure per-day function of the pack, so —
        exactly like :meth:`reseed` — the swap branches the world at
        the current day: everything already generated keeps the old
        weather, every day from here on spawns under ``pack``.
        """
        self.config = replace(self.config, scenario=pack)
        self._scenario = ScenarioEngine(pack)

    def ground_truth(self) -> Dict[str, URLTruth]:
        """Per-URL ground truth (validation only; not pipeline input)."""
        return self.truths

    # -- group spawning -----------------------------------------------------

    def _spawn_group(
        self,
        day: int,
        name: str,
        cal: PlatformCalibration,
        rng: np.random.Generator,
        persona: Optional[str] = None,
    ) -> None:
        service = self.platforms[name]
        counter = self._group_counters[name]
        self._group_counters[name] = counter + 1
        gid = f"{_GID_PREFIXES[name]}{counter:07d}"

        first_t = day + float(rng.random())
        kind = GroupKind.SERVER if name == "discord" else GroupKind.GROUP
        member_cap = cal.member_cap
        if name == "telegram":
            if rng.random() < cal.channel_prob:
                kind = GroupKind.CHANNEL
                member_cap = TELEGRAM_CHANNEL_MAX_MEMBERS

        topic_index = int(rng.choice(len(self._topic_probs[name]),
                                     p=self._topic_probs[name]))
        spec = self._composers[name].topic(topic_index)
        langs, lang_probs = self._lang_choices[name]
        lang = langs[int(rng.choice(len(langs), p=lang_probs))]

        size0 = sample_size(rng, cal, member_cap)
        plan = GroupPlan(
            gid=gid,
            kind=kind,
            title=f"{spec.label} {counter}",
            topic_label=spec.label,
            lang=lang,
            creator_id=self._creator_assigners[name].assign(),
            created_t=first_t - sample_staleness_days(rng, cal),
            anchor_t=first_t,
            size0=size0,
            slope=sample_slope(rng, cal, size0),
            revoke_t=sample_revocation_time(rng, cal, first_t),
            msg_rate=sample_msg_rate(rng, cal),
            online_frac=sample_online_frac(rng, cal),
            active_frac=sample_active_frac(rng, cal),
            sender_zipf=cal.sender_zipf,
            member_cap=member_cap,
        )
        record = service.register_group(plan)
        url = service.invite_url(gid)
        if persona is not None:
            self.personas[url] = persona
        recent = self._recent_urls[name]
        recent.append(url)
        if len(recent) > 200:
            del recent[0]

        n_shares = sample_shares_per_url(
            rng, cal, self._share_cap, topic_label=spec.label
        )
        self.truths[url] = URLTruth(
            platform=name,
            gid=gid,
            url=url,
            first_share_t=first_t,
            n_shares_scheduled=n_shares,
            created_t=plan.created_t,
            revoke_t=plan.revoke_t,
        )
        self._schedule_shares(
            name, gid, url, topic_index, lang, first_t, n_shares, cal, rng
        )

    def _schedule_shares(
        self,
        name: str,
        gid: str,
        url: str,
        topic_index: int,
        lang: str,
        first_t: float,
        n_shares: int,
        cal: PlatformCalibration,
        rng: np.random.Generator,
    ) -> None:
        first_day = int(first_t)
        self._pending.setdefault(first_day, []).append(
            ShareEvent(name, gid, url, topic_index, lang, first_t, True)
        )
        if n_shares <= 1:
            return
        offsets = rng.geometric(cal.share_day_geom_p, size=n_shares - 1) - 1
        hours = rng.random(n_shares - 1)
        for offset, hour in zip(offsets, hours):
            share_day = first_day + int(offset)
            if share_day >= self.config.n_days:
                continue
            if share_day == first_day:
                # Keep same-day extra shares after the first share so
                # retweets always follow their original.
                t = first_t + (first_day + 1 - first_t) * float(hour)
            else:
                t = share_day + float(hour)
            self._pending.setdefault(share_day, []).append(
                ShareEvent(name, gid, url, topic_index, lang, t, False)
            )

    # -- tweet composition -----------------------------------------------

    def _next_tweet_id(self) -> int:
        self._tweet_seq += 1
        return self._tweet_seq

    def _cross_post_url(
        self, platform: str, rng: np.random.Generator
    ) -> Optional[str]:
        """A recently shared URL from a *different* platform, or None."""
        others = [
            name for name in self._recent_urls
            if name != platform and self._recent_urls[name]
        ]
        if not others:
            return None
        source = others[int(rng.integers(0, len(others)))]
        urls = self._recent_urls[source]
        return urls[int(rng.integers(0, len(urls)))]

    def _compose_share_tweet(
        self, event: ShareEvent, rng: np.random.Generator
    ) -> Tweet:
        if rng.random() < CROSS_AUTHOR_PROB:
            author = self._shared_author_pool.draw(rng)
        else:
            author = self._author_pools[event.platform].draw(rng)
        original = self._first_tweets.get(event.url)
        if (
            not event.is_first
            and original is not None
            and rng.random() < self._retweet_probs[event.platform]
        ):
            tweet = Tweet(
                tweet_id=self._next_tweet_id(),
                author_id=author,
                t=event.t,
                text=f"RT: {original.text}",
                lang=original.lang,
                hashtags=original.hashtags,
                mentions=original.mentions,
                urls=original.urls,
                retweet_of=original.tweet_id,
            )
            return tweet

        composed = self._composers[event.platform].compose(
            rng, event.topic_index, event.lang, event.url
        )
        urls = (event.url,)
        text = composed.text
        if rng.random() < CROSS_SHARE_PROB:
            extra = self._cross_post_url(event.platform, rng)
            if extra is not None:
                urls = (event.url, extra)
                text = f"{text} {extra}"
        tweet = Tweet(
            tweet_id=self._next_tweet_id(),
            author_id=author,
            t=event.t,
            text=text,
            lang=event.lang,
            hashtags=composed.hashtags,
            mentions=composed.mentions,
            urls=urls,
        )
        if event.is_first:
            self._first_tweets[event.url] = tweet
        return tweet

    def _compose_control_tweet(self, t: float, rng: np.random.Generator) -> Tweet:
        author = self._control_pool.draw(rng)
        langs, probs = self._control_langs
        lang = langs[int(rng.choice(len(langs), p=probs))]
        retweet_of = None
        if (
            self._last_control_tweet_id is not None
            and rng.random() < CONTROL.retweet_frac
        ):
            retweet_of = self._last_control_tweet_id
        composed = compose_control_text(rng, CONTROL, lang)
        tweet = Tweet(
            tweet_id=self._next_tweet_id(),
            author_id=author,
            t=t,
            text=("RT: " + composed.text) if retweet_of else composed.text,
            lang=lang,
            hashtags=composed.hashtags,
            mentions=composed.mentions,
            urls=(),
            retweet_of=retweet_of,
        )
        self._last_control_tweet_id = tweet.tweet_id
        return tweet
