"""Calibration constants: every generative parameter, tied to the paper.

Each :class:`PlatformCalibration` field cites the paper statistic it is
derived from.  Full-scale volumes reproduce Table 2; the study scale
factor (see :class:`repro.core.study.StudyConfig`) multiplies the
volume-like fields linearly while leaving all proportions untouched, so
analyses recover the paper's *shapes* at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["PlatformCalibration", "ControlCalibration", "CALIBRATIONS", "CONTROL"]


@dataclass(frozen=True)
class PlatformCalibration:
    """All generative parameters for one messaging platform.

    Volume fields are **full scale** (scale = 1.0 reproduces the
    paper's absolute counts); everything else is a proportion or a
    distribution parameter.
    """

    name: str

    # ---- Twitter-side volumes (Table 2) --------------------------------
    #: New group URLs first shared per day (total URLs / 38 days).
    new_urls_per_day: float
    #: Mean number of tweets sharing each URL (Table 2 tweets / URLs).
    mean_tweets_per_url: float
    #: Probability a URL is shared exactly once (Fig 2: ~0.5/0.5/0.62).
    single_share_prob: float
    #: Lomax (Pareto-II) shape for the multi-share tail (Fig 2 CDF).
    share_tail_shape: float
    #: Lomax scale, tuned so the conditional mean matches Table 2.
    share_tail_scale: float
    #: Geometric "extra share day offset" success prob (Fig 1: Telegram
    #: URLs recur across several days; WhatsApp/Discord mostly same-day).
    share_day_geom_p: float
    #: Ratio of distinct tweet authors to tweets (Table 2 users/tweets).
    users_per_tweet: float

    # ---- tweet entity prevalence (Fig 3) --------------------------------
    hashtag_prob: float          # P(>=1 hashtag)
    multi_hashtag_prob: float    # P(>=2 hashtags)
    mention_prob: float          # P(>=1 mention)
    multi_mention_prob: float    # P(>=2 mentions)
    retweet_frac: float          # fraction of tweets that are retweets

    # ---- languages (Fig 4) ----------------------------------------------
    languages: Tuple[Tuple[str, float], ...]

    # ---- group life cycle -------------------------------------------------
    #: P(group created the same day it is first shared) (Fig 5).
    staleness_same_day_prob: float
    #: P(group older than one year when shared) (Fig 5).
    staleness_over_year_prob: float
    #: Lognormal (mu, sigma) of the in-between staleness, days.
    staleness_lognorm: Tuple[float, float]
    #: P(a group's URL ever dies).  Slightly higher than the paper's
    #: *observed* revoked fraction (Fig 6): URLs whose sampled death
    #: falls past the window's end — or past the last daily check —
    #: are never observed as revoked, exactly as in the real study.
    revoked_prob: float
    #: P(revocation happens before the first daily observation | revoked)
    #: (Fig 6a: 6.4/16.3/67.4 % of *all* groups).
    revoked_before_first_obs_frac: float
    #: Mean extra lifetime (days) for URLs that die later (Fig 6a).
    revoked_later_mean_days: float

    # ---- membership (Fig 7) -----------------------------------------------
    member_cap: int
    #: Lognormal (mu, sigma) of group size at first share.
    size_lognorm: Tuple[float, float]
    #: Point mass of groups sitting exactly at the member cap (WhatsApp:
    #: "only 5 % of groups reach the limit").
    at_cap_prob: float
    #: P(growing), P(flat), P(shrinking) between first and last
    #: observation (Fig 7c: 51/53/54 % grow; 38/24/19 % shrink).
    trend_probs: Tuple[float, float, float]
    #: Lognormal (mu, sigma) of |relative size change per day|.
    growth_rate_lognorm: Tuple[float, float]
    #: Beta (a, b) of the online-member fraction (Fig 7b; 0 disables —
    #: WhatsApp exposes no online counts).
    online_beta: Tuple[float, float]

    # ---- messaging (Figs 8, 9) ---------------------------------------------
    #: Lognormal (mu, sigma) of the group's messages/day rate (Fig 9a).
    msg_rate_lognorm: Tuple[float, float]
    #: Fraction of members who ever post (59.4/14.6/65.8 %).
    active_frac_beta: Tuple[float, float]
    #: Zipf exponent of per-member posting frequency (Fig 9b; top-1 % of
    #: users post 31/60/63 % of messages).
    sender_zipf: float

    # ---- structure -------------------------------------------------------
    #: P(a chat room is a broadcast channel) (Telegram only).
    channel_prob: float
    #: Fraction of creators who create exactly one group (Section 5:
    #: 92.7 % on WhatsApp, 95.9 % on Discord; all 100 observed Telegram
    #: creators were single-group).
    single_creator_frac: float

    # ---- user model -------------------------------------------------------
    user_population: int
    countries: Tuple[Tuple[str, float], ...]
    has_phone: bool
    phone_visible_prob: float
    linked_account_prob: float
    linked_platform_weights: Tuple[Tuple[str, float], ...] = ()

    # ---- joining (Section 3.3) ---------------------------------------------
    #: Number of groups the paper joined on this platform.
    paper_join_count: int = 0


#: Probability that an original invite tweet also advertises a group
#: from a *second* platform (cross-posting).  Together with the shared
#: author pool this reproduces Table 2's total-row deduplication: the
#: paper's 2,234,128 total tweets are below the per-platform sum
#: because multi-platform tweets count once in the total.
CROSS_SHARE_PROB = 0.02

#: Probability a share tweet's author comes from the shared
#: cross-platform author pool rather than the platform's own pool
#: (the paper's 806,372 total users are ~2.6 % below the sum).
CROSS_AUTHOR_PROB = 0.05


@dataclass(frozen=True)
class ControlCalibration:
    """The control dataset (1 % sample stream) generative parameters."""

    #: Control tweets per day at full scale (1,797,914 / 38).
    tweets_per_day: float = 1_797_914 / 38
    hashtag_prob: float = 0.13
    multi_hashtag_prob: float = 0.05
    mention_prob: float = 0.76
    multi_mention_prob: float = 0.12
    #: Not reported numerically in the paper (Fig 3c bar only); set to a
    #: typical Twitter-wide retweet share. Recorded in EXPERIMENTS.md.
    retweet_frac: float = 0.45
    languages: Tuple[Tuple[str, float], ...] = (
        ("en", 0.33), ("ja", 0.12), ("es", 0.10), ("pt", 0.07),
        ("ar", 0.06), ("tr", 0.04), ("id", 0.05), ("hi", 0.04),
        ("fr", 0.04), ("ru", 0.03), ("de", 0.03), ("und", 0.09),
    )


_TABLE5_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    # Table 5: percentage of Discord users exposing each linked platform.
    ("twitch", 20.4),
    ("steam", 12.2),
    ("twitter", 8.9),
    ("spotify", 8.0),
    ("youtube", 6.6),
    ("battlenet", 5.2),
    ("xbox", 3.7),
    ("reddit", 3.0),
    ("leagueoflegends", 2.4),
    ("skype", 0.6),
    ("facebook", 0.5),
)

_WHATSAPP = PlatformCalibration(
    name="whatsapp",
    # Table 2: 45,718 URLs, 239,807 tweets, 88,119 users over 38 days.
    new_urls_per_day=45_718 / 38,
    mean_tweets_per_url=239_807 / 45_718,
    single_share_prob=0.50,
    share_tail_shape=1.6,
    share_tail_scale=4.4,
    share_day_geom_p=0.60,
    users_per_tweet=88_119 / 239_807,
    hashtag_prob=0.13,
    multi_hashtag_prob=0.04,
    mention_prob=0.73,
    multi_mention_prob=0.20,
    retweet_frac=0.33,
    languages=(
        ("en", 0.26), ("es", 0.16), ("pt", 0.14), ("id", 0.08),
        ("ar", 0.06), ("hi", 0.06), ("tr", 0.04), ("fr", 0.04),
        ("ru", 0.02), ("de", 0.02), ("ja", 0.01), ("und", 0.11),
    ),
    staleness_same_day_prob=0.76,
    staleness_over_year_prob=0.10,
    staleness_lognorm=(3.4, 1.5),
    revoked_prob=0.32,
    revoked_before_first_obs_frac=0.20,
    revoked_later_mean_days=6.0,
    member_cap=257,
    size_lognorm=(3.7, 1.1),
    at_cap_prob=0.05,
    trend_probs=(0.51, 0.11, 0.38),
    growth_rate_lognorm=(-4.4, 1.2),
    online_beta=(0.0, 0.0),
    # Median ~15 msgs/day, mean ~41 (476 K messages / 416 groups / ~28
    # observed days), ~60 % of groups above 10/day (Fig 9a).
    msg_rate_lognorm=(2.7, 1.4),
    active_frac_beta=(8.0, 3.0),
    sender_zipf=0.9,
    channel_prob=0.0,
    single_creator_frac=0.927,
    user_population=2_000_000,
    countries=(
        # Section 5 "Group Countries": BR 7718, NG 4719, ID 3430,
        # IN 2731, SA 2574, MX 2081, AR 1366 of 34,078 creators.
        ("BR", 0.2265), ("NG", 0.1385), ("ID", 0.1007), ("IN", 0.0801),
        ("SA", 0.0755), ("MX", 0.0611), ("AR", 0.0401), ("US", 0.0400),
        ("EG", 0.0300), ("PK", 0.0300), ("CO", 0.0250), ("ZA", 0.0200),
        ("GH", 0.0200), ("TR", 0.0200), ("KE", 0.0150), ("MA", 0.0150),
        ("PE", 0.0150), ("IQ", 0.0150), ("AE", 0.0100), ("DZ", 0.0100),
        ("ES", 0.0100), ("VE", 0.0100), ("KW", 0.0050), ("PT", 0.0050),
        ("GB", 0.0050), ("CL", 0.0475),
    ),
    has_phone=True,
    phone_visible_prob=1.0,
    linked_account_prob=0.0,
    paper_join_count=416,
)

_TELEGRAM = PlatformCalibration(
    name="telegram",
    # Table 2: 78,105 URLs, 1,224,540 tweets, 398,816 users.
    new_urls_per_day=78_105 / 38,
    mean_tweets_per_url=1_224_540 / 78_105,
    single_share_prob=0.50,
    share_tail_shape=1.35,
    share_tail_scale=13.0,
    share_day_geom_p=0.35,
    users_per_tweet=398_816 / 1_224_540,
    hashtag_prob=0.24,
    multi_hashtag_prob=0.10,
    mention_prob=0.84,
    multi_mention_prob=0.14,
    retweet_frac=0.76,
    languages=(
        ("en", 0.35), ("ar", 0.15), ("tr", 0.08), ("ru", 0.08),
        ("es", 0.06), ("pt", 0.04), ("id", 0.05), ("hi", 0.04),
        ("ja", 0.02), ("fr", 0.03), ("de", 0.02), ("und", 0.08),
    ),
    staleness_same_day_prob=0.28,
    staleness_over_year_prob=0.29,
    staleness_lognorm=(4.2, 1.4),
    revoked_prob=0.22,
    revoked_before_first_obs_frac=0.78,
    revoked_later_mean_days=7.0,
    member_cap=200_000,
    size_lognorm=(4.94, 2.0),
    at_cap_prob=0.0,
    trend_probs=(0.53, 0.23, 0.24),
    growth_rate_lognorm=(-4.6, 1.4),
    online_beta=(1.2, 12.0),
    # Median ~3 msgs/day (only ~25 % of groups above 10/day, Fig 9a)
    # with a heavy tail towards the paper's 31 K messages/group mean.
    msg_rate_lognorm=(1.1, 1.7),
    active_frac_beta=(3.0, 6.0),
    sender_zipf=0.9,
    channel_prob=0.30,
    single_creator_frac=0.995,
    user_population=10_000_000,
    countries=(
        ("RU", 0.14), ("IR", 0.12), ("TR", 0.10), ("IN", 0.08),
        ("US", 0.07), ("SA", 0.06), ("EG", 0.06), ("ID", 0.05),
        ("BR", 0.05), ("UA", 0.04), ("IQ", 0.04), ("AE", 0.03),
        ("DE", 0.03), ("ES", 0.02), ("GB", 0.02), ("PK", 0.03),
        ("NG", 0.02), ("MX", 0.02), ("AR", 0.02), ("FR", 0.02),
        ("IT", 0.02), ("KW", 0.02), ("QA", 0.01), ("MA", 0.03),
    ),
    has_phone=True,
    # "A phone number is only shown within the platform if the user
    # explicitly opts-in" — observed for 0.68 % of users.
    phone_visible_prob=0.0068,
    linked_account_prob=0.0,
    paper_join_count=100,
)

_DISCORD = PlatformCalibration(
    name="discord",
    # Table 2: 227,712 URLs, 779,685 tweets, 340,702 users.
    new_urls_per_day=227_712 / 38,
    mean_tweets_per_url=779_685 / 227_712,
    single_share_prob=0.62,
    share_tail_shape=1.8,
    share_tail_scale=4.2,
    share_day_geom_p=0.70,
    users_per_tweet=340_702 / 779_685,
    hashtag_prob=0.14,
    multi_hashtag_prob=0.07,
    mention_prob=0.68,
    multi_mention_prob=0.15,
    retweet_frac=0.50,
    languages=(
        ("en", 0.47), ("ja", 0.27), ("es", 0.05), ("pt", 0.04),
        ("fr", 0.04), ("de", 0.03), ("ru", 0.02), ("tr", 0.01),
        ("id", 0.02), ("ar", 0.01), ("und", 0.04),
    ),
    staleness_same_day_prob=0.30,
    staleness_over_year_prob=0.256,
    staleness_lognorm=(4.0, 1.4),
    # Fig 6: 68.4 % revoked, 67.4 % already dead at first observation —
    # the 1-day default invite expiry at work.
    revoked_prob=0.72,
    revoked_before_first_obs_frac=0.985,
    revoked_later_mean_days=5.0,
    member_cap=250_000,
    size_lognorm=(4.09, 1.9),
    at_cap_prob=0.0,
    trend_probs=(0.54, 0.27, 0.19),
    growth_rate_lognorm=(-4.6, 1.3),
    online_beta=(2.0, 4.0),
    # Median ~15 msgs/day, heavy tail (mean ~53/day, towards the 46 K
    # messages/server of Table 2; "some groups with >2,000 msgs/day").
    msg_rate_lognorm=(2.7, 1.6),
    active_frac_beta=(6.5, 3.5),
    sender_zipf=0.95,
    channel_prob=0.0,
    single_creator_frac=0.959,
    user_population=2_000_000,
    countries=(
        ("US", 0.35), ("JP", 0.20), ("GB", 0.07), ("DE", 0.06),
        ("FR", 0.05), ("BR", 0.05), ("CA", 0.04), ("RU", 0.03),
        ("AU", 0.03), ("ES", 0.02), ("MX", 0.02), ("SE", 0.02),
        ("PL", 0.02), ("NL", 0.02), ("KR", 0.02),
    ),
    has_phone=False,
    phone_visible_prob=0.0,
    # Section 6: 30 % of observed Discord users expose >=1 linked account.
    linked_account_prob=0.30,
    linked_platform_weights=_TABLE5_WEIGHTS,
    paper_join_count=100,
)

#: Calibrations keyed by platform name.
CALIBRATIONS: Dict[str, PlatformCalibration] = {
    "whatsapp": _WHATSAPP,
    "telegram": _TELEGRAM,
    "discord": _DISCORD,
}

#: Control-dataset calibration.
CONTROL = ControlCalibration()
