"""Populations: Twitter author pools, group creators, platform users.

Three separate populations interact in the study:

* **Twitter authors** — the accounts sharing invite URLs.  Table 2's
  users/tweets ratios are reproduced by drawing authors uniformly from
  a pool whose size is solved analytically
  (:func:`repro.simulation.distributions.author_pool_size`).
* **Group creators** — assigned by a Yule (rich-get-richer) process so
  most creators own a single group while a few own dozens, matching
  Section 5's "Group Creators" (92.7 % single-group on WhatsApp, one
  user with 61 Discord groups).
* **Platform users** — group members; materialised lazily by the
  platform services from the :class:`~repro.platforms.base.PlatformUserModel`
  built here.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.platforms.base import PlatformUserModel
from repro.simulation.calibration import PlatformCalibration

__all__ = ["AuthorPool", "CreatorAssigner", "build_user_model"]


def build_user_model(cal: PlatformCalibration) -> PlatformUserModel:
    """Translate a platform calibration into a user-profile model."""
    countries = tuple(c for c, _ in cal.countries)
    weights = np.array([w for _, w in cal.countries], dtype=float)
    probs = tuple(float(p) for p in weights / weights.sum())
    return PlatformUserModel(
        population=cal.user_population,
        countries=countries,
        country_probs=probs,
        has_phone=cal.has_phone,
        phone_visible_prob=cal.phone_visible_prob,
        linked_account_prob=cal.linked_account_prob,
        linked_platform_weights=cal.linked_platform_weights,
    )


class AuthorPool:
    """A contiguous range of Twitter account ids for one tweet source.

    Authors are drawn uniformly; the pool size is chosen so the expected
    number of distinct authors over the expected tweet volume matches
    the paper's per-platform user counts.
    """

    def __init__(self, base_id: int, size: int) -> None:
        if size < 1:
            raise ValueError("author pool must have at least one account")
        self.base_id = base_id
        self.size = size

    def draw(self, rng: np.random.Generator) -> int:
        """Draw one author id."""
        return self.base_id + int(rng.integers(0, self.size))


#: Largest number of extra groups a serial creator can own (the paper's
#: most prolific creator owned 61 Discord servers).
MAX_EXTRA_GROUPS = 60


class CreatorAssigner:
    """Creator assignment matching Section 5's "Group Creators".

    Each brand-new creator immediately samples their *total* group
    count: 1 with probability ``single_creator_frac`` (92.7 % on
    WhatsApp, 95.9 % on Discord), otherwise 2 plus a Pareto-tailed
    extra (the paper's most prolific creators owned 28 and 61 groups).
    The extra groups enter a backlog that is interleaved with new
    creators over time, so a serial creator's groups spread across the
    study window.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        population: int,
        single_creator_frac: float,
        format_user_id: Callable[[int], str],
    ) -> None:
        if not 0.0 < single_creator_frac <= 1.0:
            raise ValueError("single_creator_frac must be in (0, 1]")
        self._rng = rng
        self._population = population
        self._single_frac = single_creator_frac
        self._format = format_user_id
        self._backlog: List[str] = []  # owed groups of serial creators
        self._seen: set = set()
        self._n_assigned = 0

    def _fresh_creator(self) -> str:
        """Draw an id not used before (re-draw on birthday collisions)."""
        while True:
            creator = self._format(int(self._rng.integers(0, self._population)))
            if creator not in self._seen:
                self._seen.add(creator)
                return creator

    def assign(self) -> str:
        """Return the creator user id for the next new group."""
        self._n_assigned += 1
        if self._backlog and self._rng.random() < 0.5:
            idx = int(self._rng.integers(0, len(self._backlog)))
            self._backlog[idx], self._backlog[-1] = (
                self._backlog[-1],
                self._backlog[idx],
            )
            return self._backlog.pop()
        creator = self._fresh_creator()
        if self._rng.random() >= self._single_frac:
            extra = 1 + int(min(self._rng.pareto(1.6) * 2.2, MAX_EXTRA_GROUPS))
            self._backlog.extend([creator] * extra)
        return creator

    @property
    def n_groups_assigned(self) -> int:
        """Total groups assigned so far."""
        return self._n_assigned
