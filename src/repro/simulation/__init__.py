"""The generative world model behind the simulated ecosystem.

This package is the substitution for the live 2020 internet: a seeded,
day-by-day generative model of group creation, invite-URL sharing on
Twitter, group growth/decay, invite revocation, and in-group messaging,
calibrated to every marginal the paper reports (see
:mod:`repro.simulation.calibration` for the full list with paper
references).  The measurement pipeline in :mod:`repro.core` observes
this world only through the platform and Twitter APIs.
"""

from repro.simulation.calibration import (
    CALIBRATIONS,
    ControlCalibration,
    PlatformCalibration,
)
from repro.simulation.world import World, WorldConfig

__all__ = [
    "CALIBRATIONS",
    "ControlCalibration",
    "PlatformCalibration",
    "World",
    "WorldConfig",
]
