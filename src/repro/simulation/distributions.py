"""Samplers translating calibration constants into concrete draws.

Each function here implements one marginal of the generative model; the
calibration rationale (which paper statistic a parameter reproduces)
lives with the constants in :mod:`repro.simulation.calibration`.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.simulation.calibration import PlatformCalibration

__all__ = [
    "author_pool_size",
    "sample_active_frac",
    "sample_entity_count",
    "sample_msg_rate",
    "sample_online_frac",
    "sample_revocation_time",
    "sample_shares_per_url",
    "sample_size",
    "sample_slope",
    "sample_staleness_days",
]

#: Hard cap on tweets sharing a single URL (the paper's most-shared
#: Telegram URLs exceeded 10 K tweets at full scale).
MAX_SHARES_PER_URL = 30_000


#: Telegram topics whose URLs dominate the most-shared tail: the paper
#: examined the 14 Telegram URLs with >10 K tweets and found 11 about
#: pornography, 2 about cryptocurrencies, and 1 general discussion.
VIRAL_TELEGRAM_TOPICS = frozenset({"Sex", "Cryptocurrencies"})


def sample_shares_per_url(
    rng: np.random.Generator,
    cal: PlatformCalibration,
    max_shares: Optional[int] = None,
    topic_label: str = "",
) -> int:
    """How many tweets will share this URL (Fig 2's distribution).

    A point mass at one share plus a Lomax (Pareto-II) tail starting at
    two, whose scale is tuned so the overall mean matches Table 2.
    ``max_shares`` caps the tail; scaled-down studies pass a
    proportionally smaller cap so one mega-URL cannot dominate a small
    study more than the paper's 10 K-tweet URLs dominated the real one.

    On Telegram, sex and cryptocurrency groups get a *heavier* tail with
    the same mean (smaller shape, smaller scale), reproducing the
    paper's finding that the most-shared URLs are almost all porn or
    crypto, without shifting Table 3's per-tweet topic shares.
    """
    cap = MAX_SHARES_PER_URL if max_shares is None else max_shares
    if rng.random() < cal.single_share_prob:
        return 1
    shape, scale = cal.share_tail_shape, cal.share_tail_scale
    if cal.name == "telegram" and topic_label in VIRAL_TELEGRAM_TOPICS:
        mean_tail = scale / (shape - 1.0)
        shape = 1.13
        scale = mean_tail * (shape - 1.0)  # mean preserved
        # The viral tail is allowed to run further before the scaled
        # cap clamps it (the paper's >10 K-tweet URLs are these).
        cap = min(cap * 3, MAX_SHARES_PER_URL)
    tail = rng.pareto(shape) * scale
    return int(min(2 + tail, cap))


def sample_staleness_days(
    rng: np.random.Generator, cal: PlatformCalibration
) -> float:
    """Days between group creation and its first share on Twitter (Fig 5)."""
    u = rng.random()
    if u < cal.staleness_same_day_prob:
        return float(rng.random())  # created earlier the same day
    if u < cal.staleness_same_day_prob + cal.staleness_over_year_prob:
        return 365.0 + float(rng.exponential(400.0))
    mu, sigma = cal.staleness_lognorm
    middle = float(rng.lognormal(mu, sigma))
    return float(np.clip(middle, 1.0, 365.0))


def sample_revocation_time(
    rng: np.random.Generator,
    cal: PlatformCalibration,
    share_t: float,
) -> Optional[float]:
    """When (if ever) the invite URL dies (Fig 6).

    Returns an absolute simulation time, or None for URLs that survive.
    "Instant" deaths land within the share day — before the monitor's
    end-of-day first observation — reproducing the
    revoked-before-first-observation mass (67.4 % of all Discord URLs).
    """
    if rng.random() >= cal.revoked_prob:
        return None
    if rng.random() < cal.revoked_before_first_obs_frac:
        return share_t + float(rng.uniform(0.01, 0.1))
    # Dies later: at least one daily observation succeeds first.
    return share_t + 1.0 + float(rng.exponential(cal.revoked_later_mean_days))


def sample_size(rng: np.random.Generator, cal: PlatformCalibration,
                member_cap: Optional[int] = None) -> int:
    """Group size at the time of first share (Fig 7a)."""
    cap = member_cap if member_cap is not None else cal.member_cap
    if cal.at_cap_prob and rng.random() < cal.at_cap_prob:
        return cap
    mu, sigma = cal.size_lognorm
    return int(np.clip(round(rng.lognormal(mu, sigma)), 2, cap))


def sample_slope(
    rng: np.random.Generator, cal: PlatformCalibration, size: int
) -> float:
    """Net members/day during the observation window (Fig 7c).

    Trend (grow/flat/shrink) is categorical; the magnitude is a
    lognormal *relative* daily rate so large groups can move by the
    tens of thousands the paper observed on Telegram and Discord.
    """
    p_grow, p_flat, _ = cal.trend_probs
    u = rng.random()
    if p_grow <= u < p_grow + p_flat:
        return 0.0
    mu, sigma = cal.growth_rate_lognorm
    rate = float(rng.lognormal(mu, sigma))
    slope = size * rate
    return slope if u < p_grow else -slope


def sample_msg_rate(rng: np.random.Generator, cal: PlatformCalibration) -> float:
    """Mean messages/day for a group (Fig 9a).

    Capped at 3,000/day — the paper observes "some groups with more
    than 2,000 messages per day" but nothing unbounded.
    """
    mu, sigma = cal.msg_rate_lognorm
    return float(min(rng.lognormal(mu, sigma), 3000.0))


def sample_online_frac(
    rng: np.random.Generator, cal: PlatformCalibration
) -> float:
    """Mean fraction of members online (Fig 7b); 0 if not exposed."""
    a, b = cal.online_beta
    if a <= 0.0:
        return 0.0
    return float(rng.beta(a, b))


def sample_active_frac(
    rng: np.random.Generator, cal: PlatformCalibration
) -> float:
    """Fraction of members who ever post (Section 5, "active members")."""
    a, b = cal.active_frac_beta
    return float(rng.beta(a, b))


def sample_entity_count(
    rng: np.random.Generator, p_ge1: float, p_ge2: float
) -> int:
    """Number of hashtags or mentions on a tweet (Fig 3).

    Calibrated on the two reported points: P(count >= 1) and
    P(count >= 2); counts beyond two follow a small Poisson tail.
    """
    u = rng.random()
    if u >= p_ge1:
        return 0
    if u >= p_ge2:
        return 1
    return 2 + int(rng.poisson(0.7))


def author_pool_size(expected_tweets: float, users_per_tweet: float) -> int:
    """Size of the author pool reproducing Table 2's users/tweets ratio.

    Authors are drawn uniformly from a pool of size U; the expected
    number of *distinct* authors among T tweets is U(1 - e^(-T/U)).
    Solving (1 - e^(-x))/x = users_per_tweet for x = T/U gives the pool
    size that makes the distinct-author count match the paper.
    """
    if not 0.0 < users_per_tweet < 1.0:
        return max(int(expected_tweets), 1)

    def ratio(x: float) -> float:
        return (1.0 - math.exp(-x)) / x

    lo, hi = 1e-9, 60.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if ratio(mid) > users_per_tweet:
            lo = mid  # ratio decreases in x; need larger x
        else:
            hi = mid
    x = (lo + hi) / 2.0
    return max(int(round(expected_tweets / x)), 1)
