"""The merged cross-campaign fleet report: sensitivity bands.

One sweep, one report: for every Table 2 / Fig 6 aggregate metric, on
every platform, the band of values observed across the sweep's
completed cells — min / median / max — plus a classification of each
(platform, metric) finding as **robust** (the band is tight relative
to its median: the paper's number would survive this weather) or
**weather-dependent** (the band is wide: the number is an artefact of
one seed/fault/scenario draw).

The report is honest about coverage: a line names every failed cell
and its reason, and bands are computed over completed cells only —
a sweep with failures reports what it measured, never extrapolates
what it didn't.

Everything here is a pure function of the
:class:`~repro.fleet.runner.FleetResult` (and, transitively, of the
ledger's cell summaries), so the rendered report is byte-identical
across reruns and across kill-and-resume of the same sweep.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List

from repro.fleet.summary import PLATFORMS, SUMMARY_METRICS
from repro.reporting.tables import format_table

__all__ = ["fleet_report_dict", "render_fleet_report", "sensitivity_bands"]

#: A finding is robust when its band spread — (max - min) / median —
#: stays within this fraction.
ROBUST_SPREAD = 0.10

#: Fractional metrics get an absolute-width test instead (a revoked
#: fraction of 0.02 vs 0.05 is a tight band around a tiny median).
_FRAC_METRICS = frozenset({"revoked_frac", "dead_on_arrival_frac"})
ROBUST_FRAC_WIDTH = 0.05


def _fmt(metric: str, value: float) -> str:
    if metric in _FRAC_METRICS:
        return f"{value:.4f}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"


def sensitivity_bands(result) -> List[Dict[str, Any]]:
    """Per (platform, metric) bands over the sweep's completed cells.

    Each entry: platform, metric, n (cells), min, median, max,
    spread, and verdict (``robust`` / ``weather-dependent``).  Empty
    when no cell completed.
    """
    bands: List[Dict[str, Any]] = []
    summaries = [o.summary for o in result.completed if o.summary]
    if not summaries:
        return bands
    for platform in PLATFORMS:
        for metric in SUMMARY_METRICS:
            values = sorted(
                float(s["platforms"][platform][metric]) for s in summaries
            )
            lo, hi = values[0], values[-1]
            med = statistics.median(values)
            if metric in _FRAC_METRICS:
                spread = hi - lo
                robust = spread <= ROBUST_FRAC_WIDTH
            elif med > 0:
                spread = (hi - lo) / med
                robust = spread <= ROBUST_SPREAD
            else:
                spread = 0.0 if hi == lo else float("inf")
                robust = hi == lo
            bands.append({
                "platform": platform,
                "metric": metric,
                "n": len(values),
                "min": lo,
                "median": med,
                "max": hi,
                "spread": round(spread, 6) if spread != float("inf") else None,
                "verdict": "robust" if robust else "weather-dependent",
            })
    return bands


def _coverage_line(result) -> str:
    total = len(result.matrix)
    done = len(result.completed)
    line = f"coverage: {done}/{total} cells completed"
    failed = result.failed
    if failed:
        parts = ", ".join(
            f"{o.cell.cell_id} ({o.reason})" for o in failed
        )
        line += f"; failed: {parts}"
    return line


def render_fleet_report(result) -> str:
    """The merged sweep report as aligned plain text."""
    matrix = result.matrix
    lines: List[str] = []
    lines.append(
        "Fleet sweep report — "
        f"{len(matrix.seeds)} seeds x {len(matrix.faults)} fault "
        f"profiles x {len(matrix.scenarios)} scenarios = "
        f"{len(matrix)} cells"
    )
    lines.append(f"matrix digest: {matrix.digest}")
    base = matrix.base
    join_day = base["join_day"]
    if join_day is None:
        join_day = min(10, base["n_days"] - 1)
    lines.append(
        f"base campaign: {base['n_days']} days, scale {base['scale']}, "
        f"message scale {base['message_scale']}, join day {join_day}"
    )
    if matrix.fork:
        lines.append(
            f"forked from {matrix.fork['store']} at day "
            f"{matrix.fork['day']}"
        )
    lines.append(_coverage_line(result))
    lines.append("")

    rows = []
    for outcome in result.outcomes:
        cell = outcome.cell
        detail = (
            f"{cell.base['n_days']} days" if outcome.ok else outcome.reason
        )
        rows.append((
            cell.cell_id, cell.seed, cell.faults, cell.scenario,
            outcome.status, detail,
        ))
    lines.append(format_table(
        ("cell", "seed", "faults", "scenario", "status", "detail"),
        rows,
        title="Cells",
    ))
    lines.append("")

    bands = sensitivity_bands(result)
    if not bands:
        lines.append(
            "No completed cells: sensitivity bands unavailable."
        )
        return "\n".join(lines) + "\n"
    rows = [
        (
            b["platform"],
            SUMMARY_METRICS[b["metric"]],
            b["n"],
            _fmt(b["metric"], b["min"]),
            _fmt(b["metric"], b["median"]),
            _fmt(b["metric"], b["max"]),
            "inf" if b["spread"] is None else f"{b['spread']:.3f}",
            b["verdict"],
        )
        for b in bands
    ]
    lines.append(format_table(
        (
            "platform", "metric", "n", "min", "median", "max",
            "spread", "verdict",
        ),
        rows,
        title="Sensitivity bands (Table 2 / Fig 6 aggregates, "
              "completed cells)",
    ))
    robust = sum(1 for b in bands if b["verdict"] == "robust")
    lines.append("")
    lines.append(
        f"verdict: {robust}/{len(bands)} findings robust across this "
        "sweep's weather; the rest are weather-dependent"
    )
    return "\n".join(lines) + "\n"


def fleet_report_dict(result) -> Dict[str, Any]:
    """The machine-readable report: result + bands + coverage.

    Deterministic (no timestamps, no paths beyond what the matrix
    itself carries), so two runs of the same sweep serialise to
    identical bytes.
    """
    return {
        "result": result.to_dict(),
        "bands": sensitivity_bands(result),
        "coverage": {
            "total": len(result.matrix),
            "completed": len(result.completed),
            "failed": [
                {"cell": o.cell.cell_id, "reason": o.reason}
                for o in result.failed
            ],
        },
    }
