"""Collection-health report.

Renders the campaign's failure ledger — what the fault injector threw
at the pipeline and what the resilience layer did about it — as the
same plain-text table style the paper tables use.  A clean campaign
renders a one-line all-clear, so the report is safe to print
unconditionally.
"""

from __future__ import annotations

from repro.core.dataset import StudyDataset
from repro.reporting.tables import format_table
from repro.resilience.health import HEALTH_FIELDS

__all__ = ["render_health"]

_HEADERS = ("platform",) + HEALTH_FIELDS


def render_health(dataset: StudyDataset, fsck=None) -> str:
    """Render the collection-health report for one campaign.

    ``fsck`` is an optional :class:`~repro.integrity.FsckReport` for
    the campaign's run store; when given, a store-integrity line is
    appended (the CLI passes one whenever ``--checkpoint-dir`` named
    a store).
    """
    health = dataset.health
    title = "Collection health (faults injected vs absorbed)"
    # Scenario campaigns carry the pack identity in the header; the
    # default paper-weather keeps the exact baseline output (CI diffs
    # scenario-free runs byte-for-byte against goldens).
    if getattr(dataset, "scenario", "paper-weather") != "paper-weather":
        from repro.reporting.scenarios import scenario_header

        title = f"{scenario_header(dataset)}\n{title}"
    if health is None or health.is_clean():
        lines = [
            f"{title}\nclean campaign: no faults, retries, trips, or misses"
        ]
    else:
        lines = [
            format_table(_HEADERS, health.summary_rows(), title=title),
            "",
            _survival_summary(dataset),
        ]
        worst = _worst_days(health)
        if worst:
            lines.append(worst)
    if fsck is not None:
        from repro.reporting.integrity import render_fsck_summary

        lines.append(render_fsck_summary(fsck))
    return "\n".join(lines)


def _survival_summary(dataset: StudyDataset) -> str:
    """One line proving graceful degradation: observed vs missed."""
    n_snapshots = sum(len(s) for s in dataset.snapshots.values())
    n_missed = sum(
        1 for snaps in dataset.snapshots.values() for s in snaps if s.missed
    )
    observed = n_snapshots - n_missed
    pct = 100.0 * observed / n_snapshots if n_snapshots else 100.0
    return (
        f"snapshots: {observed}/{n_snapshots} observed ({pct:.1f} %), "
        f"{n_missed} missed and re-probed next day"
    )


def _worst_days(health, top: int = 3) -> str:
    """The days with the most faults, for incident spotting."""
    per_day = health.by_day("faults")
    if not per_day:
        return ""
    worst = sorted(per_day.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    days = ", ".join(f"day {day}: {int(n)} faults" for day, n in worst)
    return f"worst days: {days}"
