"""Collection-health report.

Renders the campaign's failure ledger — what the fault injector threw
at the pipeline and what the resilience layer did about it — as the
same plain-text table style the paper tables use.  A clean campaign
renders a one-line all-clear, so the report is safe to print
unconditionally.

:func:`health_from_results` is the formatter: it takes the ledger and
the snapshot counts directly, so both the batch path (via
:func:`render_health` over a dataset) and the streaming layer (via
counters folded from day slices) render byte-identical reports.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, Optional

from repro.core.dataset import StudyDataset
from repro.reporting.tables import format_table
from repro.resilience.health import HEALTH_FIELDS

__all__ = ["health_from_results", "render_health"]

_HEADERS = ("platform",) + HEALTH_FIELDS


def health_from_results(
    health,
    n_snapshots: int,
    n_missed: int,
    scenario: str = "paper-weather",
    personas: Optional[Dict[str, Any]] = None,
    fsck=None,
) -> str:
    """Format the collection-health report from computed inputs.

    ``health`` is the campaign's
    :class:`~repro.resilience.health.CollectionHealth` ledger (or
    ``None``), ``n_snapshots``/``n_missed`` the monitor's total and
    missed snapshot counts, and ``scenario``/``personas`` the
    campaign's scenario identity.  ``fsck`` is an optional
    :class:`~repro.integrity.FsckReport` for the campaign's run
    store; when given, a store-integrity line is appended.
    """
    title = "Collection health (faults injected vs absorbed)"
    # Scenario campaigns carry the pack identity in the header; the
    # default paper-weather keeps the exact baseline output (CI diffs
    # scenario-free runs byte-for-byte against goldens).
    if scenario != "paper-weather":
        from repro.reporting.scenarios import scenario_header

        shim = SimpleNamespace(scenario=scenario, personas=personas or {})
        title = f"{scenario_header(shim)}\n{title}"
    if health is None or health.is_clean():
        lines = [
            f"{title}\nclean campaign: no faults, retries, trips, or misses"
        ]
    else:
        lines = [
            format_table(_HEADERS, health.summary_rows(), title=title),
            "",
            _survival_summary(n_snapshots, n_missed),
        ]
        worst = _worst_days(health)
        if worst:
            lines.append(worst)
    if fsck is not None:
        from repro.reporting.integrity import render_fsck_summary

        lines.append(render_fsck_summary(fsck))
    return "\n".join(lines)


def render_health(dataset: StudyDataset, fsck=None) -> str:
    """Render the collection-health report for one campaign.

    ``fsck`` is an optional :class:`~repro.integrity.FsckReport` for
    the campaign's run store; when given, a store-integrity line is
    appended (the CLI passes one whenever ``--checkpoint-dir`` named
    a store).
    """
    n_snapshots = sum(len(s) for s in dataset.snapshots.values())
    n_missed = sum(
        1 for snaps in dataset.snapshots.values() for s in snaps if s.missed
    )
    return health_from_results(
        dataset.health,
        n_snapshots,
        n_missed,
        scenario=getattr(dataset, "scenario", "paper-weather"),
        personas=getattr(dataset, "personas", {}),
        fsck=fsck,
    )


def _survival_summary(n_snapshots: int, n_missed: int) -> str:
    """One line proving graceful degradation: observed vs missed."""
    observed = n_snapshots - n_missed
    pct = 100.0 * observed / n_snapshots if n_snapshots else 100.0
    return (
        f"snapshots: {observed}/{n_snapshots} observed ({pct:.1f} %), "
        f"{n_missed} missed and re-probed next day"
    )


def _worst_days(health, top: int = 3) -> str:
    """The days with the most faults, for incident spotting."""
    per_day = health.by_day("faults")
    if not per_day:
        return ""
    worst = sorted(per_day.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    days = ", ".join(f"day {day}: {int(n)} faults" for day, n in worst)
    return f"worst days: {days}"
