"""Figure renderers (Figs 1-9): the same series the paper plots.

Each renderer returns a text block with the figure's key statistics,
its measured series (quantiles of the CDFs the paper plots), and the
paper's published reference values for direct comparison.

Every ``render_*`` function is a thin wrapper: it runs the batch
analyses over a :class:`~repro.core.dataset.StudyDataset` and hands
the result objects to a ``*_from_results`` formatter.  The streaming
layer (:mod:`repro.analysis.streaming`) produces the same result
dataclasses from folded day slices and calls the same formatters, so
a streaming report is byte-identical to a batch report whenever the
underlying results agree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.content import (
    EntityPrevalence, control_prevalence, entity_prevalence,
)
from repro.analysis.interplay import InterplayResult
from repro.analysis.language import (
    LanguageShares, control_language_shares, language_shares,
)
from repro.analysis.membership import MembershipResult, membership
from repro.analysis.messages import (
    GroupActivity, MessageTypeMix, UserActivity,
    group_activity, message_types, user_activity,
)
from repro.analysis.revocation import RevocationResult, revocation
from repro.analysis.sharing import (
    DailyDiscovery, ShareDistribution, daily_discovery, tweets_per_url,
)
from repro.analysis.staleness import StalenessResult, staleness
from repro.analysis.stats import ECDF
from repro.core.dataset import StudyDataset
from repro.platforms.whatsapp import WHATSAPP_MAX_MEMBERS
from repro.reporting import paper_values as paper
from repro.reporting.tables import format_table

__all__ = [
    "render_fig1", "render_fig2", "render_fig3", "render_fig4",
    "render_fig5", "render_fig6", "render_fig7", "render_fig8",
    "render_fig9", "render_interplay",
    "fig1_from_results", "fig2_from_results", "fig3_from_results",
    "fig4_from_results", "fig5_from_results", "fig6_from_results",
    "fig7_from_results", "fig8_from_results", "fig9_from_results",
    "interplay_from_results",
]

PLATFORMS = ("whatsapp", "telegram", "discord")


def _cdf_points(cdf: ECDF, quantiles: Sequence[float]) -> str:
    return "  ".join(f"p{int(q * 100)}={cdf.quantile(q):,.4g}" for q in quantiles)


def interplay_from_results(result: InterplayResult) -> str:
    """Format RQ1 from a computed :class:`InterplayResult`."""
    lines = [
        "Cross-platform interplay (RQ1)",
        f"  tweets:  {result.n_tweets_total:,} distinct vs "
        f"{result.n_tweets_sum:,} per-platform sum "
        f"(dedup {result.tweet_dedup_frac:.1%})",
        f"  authors: {result.n_authors_total:,} distinct vs "
        f"{result.n_authors_sum:,} per-platform sum "
        f"(dedup {result.author_dedup_frac:.1%}; paper ~2.6%)",
        f"  multi-platform tweets: {result.multi_platform_tweets:,}",
        f"  cross-platform sharers: {result.cross_platform_authors:,}",
    ]
    for (a, b), count in sorted(result.platform_pair_tweets.items()):
        lines.append(f"    {a} + {b}: {count:,} tweets")
    return "\n".join(lines)


def render_interplay(dataset: StudyDataset) -> str:
    """RQ1: cross-platform tweets and authors (Table 2's total row)."""
    from repro.analysis.interplay import interplay

    return interplay_from_results(interplay(dataset))


def fig1_from_results(
    results: Dict[str, DailyDiscovery], scale: float
) -> str:
    """Format Fig 1 from per-platform discovery series."""
    rows = []
    for platform in PLATFORMS:
        series = results[platform]
        rows.append(
            [
                platform,
                f"{series.median_all:,.0f}",
                f"{series.median_unique:,.0f}",
                f"{series.median_new:,.0f}",
                f"{paper.FIG1_MEDIAN_NEW[platform] * scale:,.0f}",
            ]
        )
    return format_table(
        ["platform", "median all/day", "median unique/day",
         "median new/day", "paper new/day (scaled)"],
        rows,
        title="Fig 1: URLs discovered per day",
    )


def render_fig1(dataset: StudyDataset) -> str:
    """Fig 1: group URLs discovered per day (all / unique / new)."""
    results = {p: daily_discovery(dataset, p) for p in PLATFORMS}
    return fig1_from_results(results, dataset.scale)


def fig2_from_results(results: Dict[str, ShareDistribution]) -> str:
    """Format Fig 2 from per-platform share distributions."""
    rows = []
    for platform in PLATFORMS:
        dist = results[platform]
        rows.append(
            [
                platform,
                f"{dist.single_share_frac:.0%}",
                f"{paper.FIG2_SINGLE_SHARE[platform]:.0%}",
                f"{dist.mean_shares:.1f}",
                f"{dist.max_shares:,}",
                _cdf_points(dist.cdf, (0.5, 0.9, 0.99)),
            ]
        )
    return format_table(
        ["platform", "shared once", "paper", "mean", "max", "CDF points"],
        rows,
        title="Fig 2: tweets per group URL",
    )


def render_fig2(dataset: StudyDataset) -> str:
    """Fig 2: CDF of tweets per group URL."""
    return fig2_from_results({p: tweets_per_url(dataset, p) for p in PLATFORMS})


def fig3_from_results(results: Sequence[EntityPrevalence]) -> str:
    """Format Fig 3 from prevalence results (platforms + control)."""
    rows = []
    for res in results:
        p_hash, p_mention, p_rt = paper.FIG3[res.source]
        rows.append(
            [
                res.source,
                f"{res.hashtag_frac:.0%} (paper {p_hash:.0%})",
                f"{res.mention_frac:.0%} (paper {p_mention:.0%})",
                f"{res.retweet_frac:.0%}"
                + (f" (paper {p_rt:.0%})" if p_rt is not None else " (paper n/a)"),
                f"{res.multi_hashtag_frac:.0%}",
                f"{res.multi_mention_frac:.0%}",
            ]
        )
    return format_table(
        ["source", ">=1 hashtag", ">=1 mention", "retweets",
         ">=2 hashtags", ">=2 mentions"],
        rows,
        title="Fig 3: tweet-mechanism prevalence",
    )


def render_fig3(dataset: StudyDataset) -> str:
    """Fig 3: hashtag / mention / retweet prevalence vs control."""
    results = [entity_prevalence(dataset, p) for p in PLATFORMS]
    results.append(control_prevalence(dataset))
    return fig3_from_results(results)


def fig4_from_results(
    results: Dict[str, LanguageShares], control: LanguageShares
) -> str:
    """Format Fig 4 from per-platform + control language shares."""
    lines: List[str] = ["Fig 4: tweet languages (top 5 per source)"]
    for platform in PLATFORMS:
        shares = results[platform]
        top = ", ".join(f"{lang} {frac:.0%}" for lang, frac in shares.shares[:5])
        ref = ", ".join(
            f"{lang} {frac:.0%}" for lang, frac in paper.FIG4_TOP_LANGS[platform]
        )
        lines.append(f"  {platform:<9} measured: {top}")
        lines.append(f"  {'':<9} paper:    {ref}")
    top = ", ".join(f"{lang} {frac:.0%}" for lang, frac in control.shares[:5])
    lines.append(f"  {'control':<9} measured: {top}")
    return "\n".join(lines)


def render_fig4(dataset: StudyDataset) -> str:
    """Fig 4: tweet language shares."""
    return fig4_from_results(
        {p: language_shares(dataset, p) for p in PLATFORMS},
        control_language_shares(dataset),
    )


def fig5_from_results(results: Dict[str, StalenessResult]) -> str:
    """Format Fig 5 from per-platform staleness results."""
    rows = []
    for platform in PLATFORMS:
        res = results[platform]
        p_same, p_year = paper.FIG5[platform]
        rows.append(
            [
                platform,
                f"{res.n_groups:,}",
                f"{res.same_day_frac:.0%} (paper {p_same:.0%})",
                f"{res.over_year_frac:.0%} (paper {p_year:.0%})",
                f"{res.max_staleness_days:,.0f}d",
                _cdf_points(res.cdf, (0.5, 0.9)),
            ]
        )
    return format_table(
        ["platform", "n", "same-day", ">1 year", "oldest", "CDF points"],
        rows,
        title="Fig 5: staleness of shared groups",
    )


def render_fig5(dataset: StudyDataset) -> str:
    """Fig 5: staleness (group age at first share)."""
    return fig5_from_results({p: staleness(dataset, p) for p in PLATFORMS})


def fig6_from_results(results: Dict[str, RevocationResult]) -> str:
    """Format Fig 6 from per-platform revocation results."""
    rows = []
    for platform in PLATFORMS:
        res = results[platform]
        p_rev, p_before = paper.FIG6[platform]
        lifetime = (
            _cdf_points(res.lifetime_cdf, (0.5, 0.9))
            if res.lifetime_cdf.n
            else "-"
        )
        rows.append(
            [
                platform,
                f"{res.n_urls:,}",
                f"{res.revoked_frac:.1%} (paper {p_rev:.1%})",
                f"{res.before_first_obs_frac:.1%} (paper {p_before:.1%})",
                lifetime,
            ]
        )
    return format_table(
        ["platform", "monitored", "revoked", "dead at 1st obs",
         "lifetime days (revoked)"],
        rows,
        title="Fig 6: group-URL accessibility",
    )


def render_fig6(dataset: StudyDataset) -> str:
    """Fig 6: URL lifetime and revocation."""
    return fig6_from_results({p: revocation(dataset, p) for p in PLATFORMS})


def fig7_from_results(results: Dict[str, MembershipResult]) -> str:
    """Format Fig 7 from per-platform membership results."""
    rows = []
    for platform in PLATFORMS:
        res = results[platform]
        p_grow, p_shrink = paper.FIG7_TRENDS[platform]
        online = (
            _cdf_points(res.online_frac_cdf, (0.5, 0.9))
            if res.online_frac_cdf is not None
            else "n/a"
        )
        # No twice-observed group means no trend signal at all — the
        # fractions are None, not a fabricated 100% flat.
        if res.growing_frac is None or res.shrinking_frac is None:
            trend = f"n/a (paper {p_grow:.0%}/{p_shrink:.0%})"
        else:
            trend = (
                f"{res.growing_frac:.0%}/{res.shrinking_frac:.0%} "
                f"(paper {p_grow:.0%}/{p_shrink:.0%})"
            )
        max_growth = (
            f"{res.max_growth:,.0f}" if res.max_growth is not None else "n/a"
        )
        rows.append(
            [
                platform,
                _cdf_points(res.size_cdf, (0.5, 0.9, 0.99)),
                online,
                trend,
                max_growth,
            ]
        )
    return format_table(
        ["platform", "size CDF", "online-frac CDF",
         "growing/shrinking", "max |change|"],
        rows,
        title="Fig 7: membership and growth",
    )


def render_fig7(dataset: StudyDataset) -> str:
    """Fig 7: members, online fraction, and growth."""
    results = {}
    for platform in PLATFORMS:
        cap = WHATSAPP_MAX_MEMBERS if platform == "whatsapp" else None
        results[platform] = membership(dataset, platform, member_cap=cap)
    return fig7_from_results(results)


def fig8_from_results(results: Dict[str, MessageTypeMix]) -> str:
    """Format Fig 8 from per-platform message-type mixes."""
    rows = []
    for platform in PLATFORMS:
        mix = results[platform]
        top = "  ".join(
            f"{mtype.value}={frac:.1%}" for mtype, frac in mix.fractions[:5]
        )
        rows.append(
            [
                platform,
                f"{mix.n_messages:,}",
                f"{mix.fractions[0][1]:.0%} "
                f"(paper {paper.FIG8_TEXT_FRAC[platform]:.0%})",
                top,
            ]
        )
    return format_table(
        ["platform", "#messages", "text share", "type mix"],
        rows,
        title="Fig 8: message types in joined groups",
    )


def render_fig8(dataset: StudyDataset) -> str:
    """Fig 8: message-type mix."""
    return fig8_from_results({p: message_types(dataset, p) for p in PLATFORMS})


def fig9_from_results(
    groups: Dict[str, GroupActivity], users: Dict[str, UserActivity]
) -> str:
    """Format Fig 9 from per-platform group/user activity results."""
    rows = []
    for platform in PLATFORMS:
        grp = groups[platform]
        usr = users[platform]
        p_top1, p_le10, p_poster = paper.FIG9[platform]
        poster = (
            f"{usr.poster_frac:.0%} (paper {p_poster:.0%})"
            if usr.poster_frac is not None
            else "n/a"
        )
        rows.append(
            [
                platform,
                f"{grp.over_10_frac:.0%}",
                f"{grp.max_rate:,.0f}",
                f"{usr.top1pct_share:.0%} (paper {p_top1:.0%})",
                f"{usr.le_10_frac:.0%} (paper {p_le10:.0%})",
                poster,
            ]
        )
    return format_table(
        ["platform", "groups >10 msg/day", "max msg/day",
         "top-1% share", "<=10 msgs users", "posters/members"],
        rows,
        title="Fig 9: message volume per group and user",
    )


def render_fig9(dataset: StudyDataset) -> str:
    """Fig 9: message volumes per group and per user."""
    return fig9_from_results(
        {p: group_activity(dataset, p) for p in PLATFORMS},
        {p: user_activity(dataset, p) for p in PLATFORMS},
    )
