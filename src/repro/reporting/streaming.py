"""Streaming campaign report: Sections 4-6 rendered from day slices.

Renders the same tables and figures the batch CLI prints, but from a
:class:`~repro.analysis.streaming.StreamingAnalyzer` — i.e. from the
per-day analysis slices of a slice-enabled run store, never from an
in-memory :class:`~repro.core.dataset.StudyDataset`.  Every section
goes through the exact ``*_from_results`` formatter the batch
renderers use, so a section body is byte-identical to its batch
counterpart whenever the underlying streaming results are exact
(always, below the reservoir threshold).

Sections that need data the fold does not have yet — the
joined-group analyses before the end-of-campaign rollup lands, or a
platform with no observations — render a one-line placeholder
instead of raising, so the report is printable mid-campaign (the
serve daemon's ``/v1/report?source=streaming`` view).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.streaming import StreamingAnalyzer
from repro.errors import CheckpointError
from repro.platforms.whatsapp import WHATSAPP_MAX_MEMBERS
from repro.reporting.figures import (
    fig1_from_results,
    fig2_from_results,
    fig3_from_results,
    fig4_from_results,
    fig5_from_results,
    fig6_from_results,
    fig7_from_results,
    fig8_from_results,
    fig9_from_results,
    interplay_from_results,
)
from repro.reporting.health import health_from_results
from repro.reporting.tables import (
    format_table,
    render_table1,
    table2_from_results,
)

__all__ = [
    "STREAMING_SECTIONS",
    "render_epoch_rollups",
    "render_streaming_report",
    "streaming_sections",
]

_PLATFORMS = ("whatsapp", "telegram", "discord")

#: Renderable section names, in report order (``--only`` vocabulary).
STREAMING_SECTIONS = (
    "epochs",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "health", "interplay", "table2",
)


def render_epoch_rollups(analyzer: StreamingAnalyzer) -> str:
    """The per-epoch activity series (streaming-only section).

    One row per epoch (default: 38-day windows, the paper's own
    campaign length): tweets collected, group-URL shares, first-time
    URLs, and the monitor's observed/missed snapshot split.
    """
    rows = []
    for epoch in analyzer.epoch_rollups():
        rows.append(
            [
                epoch["epoch"],
                f"{epoch['day_lo']}-{epoch['day_hi']}",
                f"{epoch['tweets']:,}",
                f"{epoch['shares']:,}",
                f"{epoch['new_urls']:,}",
                f"{epoch['snapshots']:,}",
                f"{epoch['missed']:,}",
            ]
        )
    return format_table(
        ["epoch", "days", "tweets", "shares", "new URLs",
         "snapshots", "missed"],
        rows,
        title=(
            f"Epoch rollups ({analyzer.epoch_days}-day windows, "
            f"{analyzer.days_folded} day slices folded)"
        ),
    )


def _joined_counts(analyzer: StreamingAnalyzer, platform: str) -> Dict:
    if not analyzer.has_rollup:
        return {"n_joined": 0, "n_messages": 0, "n_users": 0}
    block = analyzer.rollup().get("joined", {}).get(platform, {})
    return {
        "n_joined": block.get("n_joined", 0),
        "n_messages": block.get("n_messages", 0),
        "n_users": block.get("n_users", 0),
    }


def _table2(analyzer: StreamingAnalyzer, scale: float) -> str:
    counts: Dict[str, Dict[str, int]] = {}
    for platform in _PLATFORMS:
        entry = dict(analyzer.table2_counts(platform))
        entry.update(_joined_counts(analyzer, platform))
        counts[platform] = entry
    # Canonical URLs are platform-qualified, so per-platform sums are
    # the campaign totals (matching len(dataset.records) etc.).
    totals = {
        key: sum(counts[p][key] for p in _PLATFORMS)
        for key in ("n_records", "n_joined", "n_messages", "n_users")
    }
    return table2_from_results(
        counts, analyzer.interplay(), totals, scale
    )


def _health(analyzer: StreamingAnalyzer, fsck=None) -> str:
    scenario = "paper-weather"
    personas: Dict = {}
    if analyzer.has_rollup:
        rollup = analyzer.rollup()
        scenario = rollup.get("scenario") or "paper-weather"
        personas = rollup.get("personas") or {}
    return health_from_results(
        analyzer.health(),
        analyzer.n_snapshots,
        analyzer.n_missed,
        scenario=scenario,
        personas=personas,
        fsck=fsck,
    )


def streaming_sections(
    analyzer: StreamingAnalyzer, scale: float, fsck=None
) -> Dict[str, Callable[[], str]]:
    """Section name -> zero-argument builder, in report order."""
    def fig7() -> str:
        results = {}
        for platform in _PLATFORMS:
            cap = WHATSAPP_MAX_MEMBERS if platform == "whatsapp" else None
            results[platform] = analyzer.membership(
                platform, member_cap=cap
            )
        return fig7_from_results(results)

    return {
        "epochs": lambda: render_epoch_rollups(analyzer),
        "fig1": lambda: fig1_from_results(
            {p: analyzer.daily_discovery(p) for p in _PLATFORMS}, scale
        ),
        "fig2": lambda: fig2_from_results(
            {p: analyzer.tweets_per_url(p) for p in _PLATFORMS}
        ),
        "fig3": lambda: fig3_from_results(
            [analyzer.entity_prevalence(p) for p in _PLATFORMS]
            + [analyzer.control_prevalence()]
        ),
        "fig4": lambda: fig4_from_results(
            {p: analyzer.language_shares(p) for p in _PLATFORMS},
            analyzer.control_language_shares(),
        ),
        "fig5": lambda: fig5_from_results(
            {p: analyzer.staleness(p) for p in _PLATFORMS}
        ),
        "fig6": lambda: fig6_from_results(
            {p: analyzer.revocation(p) for p in _PLATFORMS}
        ),
        "fig7": fig7,
        "fig8": lambda: fig8_from_results(
            {p: analyzer.message_types(p) for p in _PLATFORMS}
        ),
        "fig9": lambda: fig9_from_results(
            {p: analyzer.group_activity(p) for p in _PLATFORMS},
            {p: analyzer.user_activity(p) for p in _PLATFORMS},
        ),
        "health": lambda: _health(analyzer, fsck=fsck),
        "interplay": lambda: interplay_from_results(analyzer.interplay()),
        "table2": lambda: _table2(analyzer, scale),
    }


def render_streaming_report(
    analyzer: StreamingAnalyzer,
    scale: float,
    only: Optional[Iterable[str]] = None,
    fsck=None,
) -> str:
    """The full streaming campaign report.

    ``only`` restricts to a subset of :data:`STREAMING_SECTIONS`
    (unknown names raise ``ValueError``).  Sections whose inputs are
    not foldable yet — joined-group figures before the rollup, or a
    platform with no data — degrade to a one-line placeholder.
    """
    sections = streaming_sections(analyzer, scale, fsck=fsck)
    if only is None:
        names = list(STREAMING_SECTIONS)
    else:
        names = list(only)
        unknown = sorted(set(names) - set(STREAMING_SECTIONS))
        if unknown:
            raise ValueError(
                f"unknown streaming report sections: {unknown} "
                f"(choose from {list(STREAMING_SECTIONS)})"
            )
    rollup_note = (
        "campaign rollup folded"
        if analyzer.has_rollup
        else "no campaign rollup yet (mid-campaign view)"
    )
    blocks: List[str] = [
        f"Streaming report: {analyzer.days_folded}/{analyzer.n_days} "
        f"day slices folded, {rollup_note}",
        render_table1(),
    ]
    for name in names:
        try:
            blocks.append(sections[name]())
        except (ValueError, CheckpointError) as exc:
            blocks.append(f"{name}: unavailable in streaming view ({exc})")
    return "\n\n".join(blocks)
