"""The paper's published numbers, for paper-vs-measured comparisons.

Single source of truth for every figure/table reference value the
benches and EXPERIMENTS.md quote.  Keys are platform names.
"""

from __future__ import annotations

__all__ = [
    "TABLE2",
    "FIG1_MEDIAN_NEW",
    "FIG2_SINGLE_SHARE",
    "FIG3",
    "FIG4_TOP_LANGS",
    "FIG5",
    "FIG6",
    "FIG7_TRENDS",
    "FIG8_TEXT_FRAC",
    "FIG9",
    "TABLE4",
    "TABLE5",
    "CREATORS",
    "WHATSAPP_COUNTRIES",
]

#: Table 2 — (tweets, twitter users, group URLs, joined, messages, users).
TABLE2 = {
    "whatsapp": (239_807, 88_119, 45_718, 416, 476_059, 20_906),
    "telegram": (1_224_540, 398_816, 78_105, 100, 3_148_826, 688_343),
    "discord": (779_685, 340_702, 227_712, 100, 4_630_184, 52_463),
}

#: Fig 1c — median newly discovered group URLs per day.
FIG1_MEDIAN_NEW = {"whatsapp": 1111, "telegram": 1817, "discord": 5664}

#: Fig 2 — fraction of URLs shared exactly once.
FIG2_SINGLE_SHARE = {"whatsapp": 0.50, "telegram": 0.50, "discord": 0.62}

#: Fig 3 — (hashtag %, mention %, retweet %) of tweets; control has no
#: published retweet number (None).
FIG3 = {
    "whatsapp": (0.13, 0.73, 0.33),
    "telegram": (0.24, 0.84, 0.76),
    "discord": (0.14, 0.68, 0.50),
    "control": (0.13, 0.76, None),
}

#: Fig 4 — the languages the paper calls out, with shares.
FIG4_TOP_LANGS = {
    "whatsapp": (("en", 0.26), ("es", 0.16), ("pt", 0.14)),
    "telegram": (("en", 0.35), ("ar", 0.15), ("tr", 0.08)),
    "discord": (("en", 0.47), ("ja", 0.27)),
}

#: Fig 5 — (same-day share %, older-than-one-year %).
FIG5 = {
    "whatsapp": (0.76, 0.10),
    "telegram": (0.28, 0.29),   # "less than 30 %" same day
    "discord": (0.30, 0.256),
}

#: Fig 6 — (revoked %, revoked before first observation %).
FIG6 = {
    "whatsapp": (0.273, 0.064),
    "telegram": (0.204, 0.163),
    "discord": (0.684, 0.674),
}

#: Fig 7c — (growing %, shrinking %).
FIG7_TRENDS = {
    "whatsapp": (0.51, 0.38),
    "telegram": (0.53, 0.24),
    "discord": (0.54, 0.19),
}

#: Fig 8 — share of text messages.
FIG8_TEXT_FRAC = {"whatsapp": 0.78, "telegram": 0.85, "discord": 0.96}

#: Fig 9 — (top-1 % poster share of messages, posters with <= 10 msgs,
#: posters / members).
FIG9 = {
    "whatsapp": (0.31, 0.658, 0.594),
    "telegram": (0.60, 0.829, 0.146),
    "discord": (0.63, 0.701, 0.658),
}

#: Table 4 — (users observed, phones exposed, phone %, linked %).
TABLE4 = {
    "whatsapp": (54_984, 54_984, 1.0, 0.0),
    "telegram": (74_479, 509, 0.0068, 0.0),
    "discord": (25_701, 0, 0.0, 0.30),
}

#: Table 5 — Discord linked-platform exposure fractions.
TABLE5 = {
    "twitch": 0.204,
    "steam": 0.122,
    "twitter": 0.089,
    "spotify": 0.080,
    "youtube": 0.066,
    "battlenet": 0.052,
    "xbox": 0.037,
    "reddit": 0.030,
    "leagueoflegends": 0.024,
    "skype": 0.006,
    "facebook": 0.005,
}

#: Section 5 — (creators, single-group creator %, max groups/creator).
CREATORS = {
    "whatsapp": (34_078, 0.927, 28),
    "telegram": (100, 1.00, 1),
    "discord": (49_753, 0.959, 61),
}

#: Section 5 — WhatsApp groups per creator country (top 7).
WHATSAPP_COUNTRIES = (
    ("BR", 7_718), ("NG", 4_719), ("ID", 3_430), ("IN", 2_731),
    ("SA", 2_574), ("MX", 2_081), ("AR", 1_366),
)
