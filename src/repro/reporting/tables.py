"""Table renderers (Tables 1-5).

Plain-text, monospaced tables with measured values next to the paper's
published numbers.  Absolute counts are expected to differ by the
study's scale factor; the renderers also show the paper value scaled
down for an apples-to-apples comparison where that is meaningful.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.privacy import (
    LinkedAccountBreakdown,
    PlatformPIISummary,
    discord_linked_accounts,
    pii_summary,
)
from repro.analysis.topics import TopicModelResult
from repro.core.dataset import StudyDataset
from repro.platforms.discord import DISCORD_CAPABILITIES
from repro.platforms.telegram import TELEGRAM_CAPABILITIES
from repro.platforms.whatsapp import WHATSAPP_CAPABILITIES
from repro.reporting import paper_values as paper

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "table2_from_results",
]

PLATFORMS = ("whatsapp", "telegram", "discord")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: static platform characteristics."""
    caps = (WHATSAPP_CAPABILITIES, TELEGRAM_CAPABILITIES, DISCORD_CAPABILITIES)
    rows = [
        ["Initial release date"] + [c.initial_release for c in caps],
        ["User base"] + [c.user_base for c in caps],
        ["Registration method"] + [c.registration for c in caps],
        ["Options for public chats"] + [c.public_chat_options for c in caps],
        ["Max #members"] + [f"{c.max_members:,}" for c in caps],
        ["API for data collection?"]
        + ["Yes" if c.has_data_api else "No (only Business API)" for c in caps],
        ["Message forwarding"] + [c.message_forwarding for c in caps],
        ["End-to-end encryption"] + [c.end_to_end_encryption for c in caps],
    ]
    return format_table(
        ["Characteristic"] + [c.name for c in caps],
        rows,
        title="Table 1: Platform characteristics",
    )


def table2_from_results(
    counts: Dict[str, Dict[str, int]],
    totals,
    total_counts: Dict[str, int],
    scale: float,
) -> str:
    """Format Table 2 from already-computed counting results.

    ``counts`` maps each platform to its counting inputs —
    ``n_tweets``, ``n_authors``, ``n_records``, ``n_joined``,
    ``n_messages``, ``n_users`` — and ``total_counts`` carries the
    whole-campaign ``n_records``/``n_joined``/``n_messages``/
    ``n_users``.  ``totals`` is the campaign's
    :class:`~repro.analysis.interplay.InterplayResult` (the total
    row's dedup statistics).  The batch wrapper
    :func:`render_table2` derives everything from the dataset; the
    streaming layer supplies the same numbers from folded day slices,
    so both paths render byte-identical tables.
    """
    rows = []
    for platform in PLATFORMS:
        c = counts[platform]
        p_tweets, p_users, p_urls, p_joined, p_msgs, p_gusers = paper.TABLE2[
            platform
        ]
        rows.append(
            [
                platform,
                f"{c['n_tweets']:,} (paper*s {p_tweets * scale:,.0f})",
                f"{c['n_authors']:,} (paper*s {p_users * scale:,.0f})",
                f"{c['n_records']:,} (paper*s {p_urls * scale:,.0f})",
                f"{c['n_joined']:,} (paper {p_joined})",
                f"{c['n_messages']:,}",
                f"{c['n_users']:,}",
            ]
        )
    rows.append(
        [
            "total",
            f"{totals.n_tweets_total:,} (dedup -{totals.tweet_dedup_frac:.1%})",
            f"{totals.n_authors_total:,} "
            f"(dedup -{totals.author_dedup_frac:.1%})",
            f"{total_counts['n_records']:,}",
            f"{total_counts['n_joined']:,}",
            f"{total_counts['n_messages']:,}",
            f"{total_counts['n_users']:,}",
        ]
    )
    return format_table(
        ["platform", "#tweets", "#twitter-users", "#group-URLs",
         "#joined", "#messages", "#users"],
        rows,
        title=f"Table 2: Dataset overview (scale={scale}, paper values "
        "scaled by s where volume-like)",
    )


def render_table2(dataset: StudyDataset) -> str:
    """Table 2: dataset overview, measured vs paper (scaled)."""
    counts: Dict[str, Dict[str, int]] = {}
    for platform in PLATFORMS:
        tweets = dataset.tweets_for(platform)
        joined = dataset.joined_for(platform)
        counts[platform] = {
            "n_tweets": len(tweets),
            "n_authors": len({t.author_id for t in tweets}),
            "n_records": len(dataset.records_for(platform)),
            "n_joined": len(joined),
            "n_messages": sum(j.n_messages for j in joined),
            "n_users": len(dataset.users_for(platform)),
        }
    from repro.analysis.interplay import interplay  # local: avoid cycle

    return table2_from_results(
        counts,
        interplay(dataset),
        {
            "n_records": len(dataset.records),
            "n_joined": len(dataset.joined),
            "n_messages": sum(j.n_messages for j in dataset.joined),
            "n_users": len(dataset.users),
        },
        dataset.scale,
    )


def render_table3(results: Dict[str, TopicModelResult]) -> str:
    """Table 3: extracted LDA topics per platform."""
    sections: List[str] = []
    for platform, result in results.items():
        rows = [
            [
                topic.index,
                topic.label,
                f"{topic.share:.0%}",
                " ".join(topic.top_terms[:8]),
            ]
            for topic in result.topics
        ]
        sections.append(
            format_table(
                ["#", "label", "share", "top terms"],
                rows,
                title=(
                    f"Table 3 [{platform}]: LDA topics from "
                    f"{result.n_documents:,} English tweets"
                ),
            )
        )
    return "\n\n".join(sections)


def render_table4(dataset: StudyDataset) -> str:
    """Table 4: PII exposure summary, measured vs paper."""
    rows = []
    for platform in PLATFORMS:
        summary = pii_summary(dataset, platform)
        _, p_phones, p_phone_frac, p_linked_frac = paper.TABLE4[platform]
        phones = (
            f"{summary.phones_exposed:,} ({summary.phone_frac:.1%}; "
            f"paper {p_phone_frac:.1%})"
            if summary.phones_exposed
            else "-"
        )
        linked = (
            f"{summary.linked_exposed:,} ({summary.linked_frac:.0%}; "
            f"paper {p_linked_frac:.0%})"
            if summary.linked_exposed
            else "-"
        )
        observed = f"{summary.members_observed:,} members"
        if summary.creators_observed:
            observed += f" + {summary.creators_observed:,} creators"
        rows.append([platform, observed, phones, linked])
    return format_table(
        ["platform", "users observed", "phone numbers", "linked accounts"],
        rows,
        title="Table 4: Exposed PII per platform",
    )


def render_table5(dataset: StudyDataset) -> str:
    """Table 5: Discord linked-account breakdown, measured vs paper."""
    breakdown = discord_linked_accounts(dataset)
    rows = []
    for platform, count, frac in breakdown.rows:
        p_frac = paper.TABLE5.get(platform)
        rows.append(
            [
                platform,
                f"{count:,}",
                f"{frac:.1%}",
                f"{p_frac:.1%}" if p_frac is not None else "?",
            ]
        )
    return format_table(
        ["linked platform", "#users", "measured %", "paper %"],
        rows,
        title=f"Table 5: Exposed external accounts of "
        f"{breakdown.n_users:,} Discord users",
    )
