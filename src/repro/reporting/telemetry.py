"""Campaign telemetry report.

Renders one campaign's telemetry — the per-stage wall-clock budget
the profiler rolls up, the busiest resilience endpoints, and the
checkpoint I/O bill — in the same plain-text table style as the
paper tables and the health report.  A campaign run without
telemetry renders a one-line pointer instead, so the report is safe
to print unconditionally.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.reporting.tables import format_table
from repro.telemetry import Telemetry

__all__ = ["render_telemetry"]


def render_telemetry(telemetry: Telemetry) -> str:
    """Render the campaign-telemetry report for one campaign."""
    title = "Campaign telemetry (per-stage time budget)"
    if len(telemetry.tracer) == 0 and len(telemetry.metrics) == 0:
        return (
            f"{title}\n"
            "telemetry off: enable with --telemetry-dir (CLI) or "
            "Telemetry(enabled=True)"
        )
    profiler = telemetry.profiler()
    rows = [
        (
            budget.stage,
            str(budget.spans),
            f"{budget.wall_s:.3f}",
            f"{1000.0 * budget.mean_s:.2f}",
            f"{budget.share:.1%}",
        )
        for budget in profiler.stage_budget()
    ]
    lines = [
        format_table(
            ("stage", "spans", "wall_s", "mean_ms", "share"),
            rows,
            title=title,
        ),
        "",
        (
            f"total instrumented wall time: {profiler.total_wall_s():.3f}s "
            f"across {telemetry.process_lives} process "
            f"life{'s' if telemetry.process_lives != 1 else ''}, "
            f"{len(telemetry.tracer)} spans, "
            f"{len(telemetry.metrics)} metric series"
        ),
    ]
    endpoints = _busiest_endpoints(telemetry)
    if endpoints:
        lines.append("")
        lines.append(
            format_table(
                ("endpoint", "calls", "wall_s", "mean_ms"),
                endpoints,
                title="Busiest resilience endpoints",
            )
        )
    checkpoint = _checkpoint_line(telemetry)
    if checkpoint:
        lines.append("")
        lines.append(checkpoint)
    return "\n".join(lines)


def _busiest_endpoints(
    telemetry: Telemetry, top: int = 5
) -> List[Tuple[str, ...]]:
    """Top resilience (platform, op) endpoints by total wall time."""
    series = [
        (dict(labels), hist)
        for kind, name, labels, hist in telemetry.metrics.series()
        if kind == "histogram" and name == "resilience_call_seconds"
    ]
    series.sort(
        key=lambda item: (-item[1].total, item[0].get("platform", ""),
                          item[0].get("op", ""))
    )
    return [
        (
            f"{labels.get('platform', '?')}/{labels.get('op', '?')}",
            str(hist.count),
            f"{hist.total:.3f}",
            f"{1000.0 * hist.mean:.2f}",
        )
        for labels, hist in series[:top]
    ]


def _checkpoint_line(telemetry: Telemetry) -> str:
    """One line on the checkpoint bill (empty without checkpointing)."""
    metrics = telemetry.metrics
    anchors = metrics.counter("checkpoint_records_total", kind="anchor")
    markers = metrics.counter("checkpoint_records_total", kind="replay")
    if anchors == 0 and markers == 0:
        return ""
    payload = metrics.counter_total("checkpoint_payload_bytes_total")
    restores = metrics.counter_total("checkpoint_restores_total")
    parts = [
        f"checkpoints: {int(anchors)} anchor(s) + {int(markers)} replay "
        f"marker(s), {int(payload):,} payload bytes"
    ]
    if restores:
        restore_s = telemetry.profiler().stage_wall_s("restore")
        parts.append(
            f"{int(restores)} restore(s) in {restore_s:.3f}s"
        )
    return "; ".join(parts)
