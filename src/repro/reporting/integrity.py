"""Integrity and chaos reports, in the house table style.

Renders :class:`~repro.integrity.FsckReport`,
:class:`~repro.integrity.RepairReport`, and
:class:`~repro.chaos.ChaosReport` results as the same aligned
plain-text tables the paper tables use, for the ``repro fsck`` and
``repro chaos`` subcommands and the health report's integrity section.
"""

from __future__ import annotations

from repro.reporting.tables import format_table

__all__ = [
    "render_chaos_report",
    "render_fsck_report",
    "render_fsck_summary",
    "render_repair_report",
]


def render_fsck_report(report) -> str:
    """Render one :class:`~repro.integrity.FsckReport` in full."""
    title = (
        f"Integrity check: {report.target} ({report.target_kind}) — "
        f"{report.days_checked} days, {report.objects_checked} objects, "
        f"{report.files_checked} files"
    )
    if report.ok:
        return f"{title}\nclean: every digest verified, no damage found"
    rows = [
        (f.kind, "-" if f.day is None else f.day, f.detail)
        for f in report.findings
    ]
    return format_table(("damage", "day", "detail"), rows, title=title)


def render_fsck_summary(report) -> str:
    """One compact line per damage kind (health-report section)."""
    if report.ok:
        return (
            f"store integrity: clean ({report.days_checked} days, "
            f"{report.objects_checked} objects verified)"
        )
    by_kind = ", ".join(
        f"{kind} x{count}" for kind, count in sorted(report.by_kind().items())
    )
    return (
        f"store integrity: {len(report.findings)} finding(s) — {by_kind} "
        f"(run `repro fsck` for detail)"
    )


def render_repair_report(report) -> str:
    """Render one :class:`~repro.integrity.RepairReport`."""
    lines = [f"Repair: {report.target}"]
    if not report.actions:
        lines.append("nothing to repair")
    else:
        rows = []
        for action in report.actions:
            identical = (
                "-" if action.byte_identical is None
                else "yes" if action.byte_identical else "no"
            )
            rows.append((
                action.action,
                "-" if action.day is None else action.day,
                identical,
                action.detail,
            ))
        lines.append(format_table(
            ("action", "day", "byte-identical", "detail"), rows
        ))
    if report.ok:
        lines.append("store verified clean after repair")
    else:
        lines.append(
            f"UNREPAIRED: {len(report.remaining)} finding(s) survived — "
            + ", ".join(
                f"{f.kind}" + ("" if f.day is None else f"@day{f.day}")
                for f in report.remaining
            )
        )
    return "\n".join(lines)


def render_chaos_report(report) -> str:
    """Render one :class:`~repro.chaos.ChaosReport`."""
    seed = report.schedule.seed
    title = (
        f"Chaos harness: {len(report.cycles)} kill-resume cycles "
        f"(schedule seed {'-' if seed is None else seed}, "
        f"golden export {report.golden_export[:12]}...)"
    )
    rows = []
    for cycle in report.cycles:
        rows.append((
            cycle.point.label,
            "resumed" if cycle.resumed else "rerun",
            "OK" if cycle.ok else "FAILED",
            "-" if cycle.ok else ", ".join(cycle.failed),
        ))
    table = format_table(
        ("abort point", "recovery", "verdict", "failed invariants"),
        rows,
        title=title,
    )
    parts = [table]
    worker_cycles = getattr(report, "worker_cycles", ())
    if worker_cycles:
        wk_rows = [
            (
                cycle.point.label,
                "supervised",
                "OK" if cycle.ok else "FAILED",
                "-" if cycle.ok else ", ".join(cycle.failed),
            )
            for cycle in worker_cycles
        ]
        parts.append("")
        parts.append(format_table(
            ("worker kill", "recovery", "verdict", "failed invariants"),
            wk_rows,
            title=(
                f"Supervision: {len(worker_cycles)} worker-kill cycles "
                "(campaign must survive without resume)"
            ),
        ))
    verdict = (
        "every cycle recovered byte-identical to the uninterrupted run"
        if report.ok
        else "CHAOS FAILURE: at least one cycle broke an invariant"
    )
    parts.append(verdict)
    return "\n".join(parts)
