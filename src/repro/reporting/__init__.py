"""Reporting: renders the paper's tables and figures as text.

Each ``render_*`` function takes analysis results (or the dataset) and
returns a formatted string showing the measured values side by side
with the paper's published numbers (from
:mod:`repro.reporting.paper_values`), so every bench prints a direct
paper-vs-measured comparison.
"""

from repro.reporting.figures import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_interplay,
)
from repro.reporting.fleet import (
    fleet_report_dict,
    render_fleet_report,
    sensitivity_bands,
)
from repro.reporting.health import health_from_results, render_health
from repro.reporting.scenarios import render_scenario_report, scenario_header
from repro.reporting.streaming import (
    STREAMING_SECTIONS,
    render_epoch_rollups,
    render_streaming_report,
    streaming_sections,
)
from repro.reporting.integrity import (
    render_chaos_report,
    render_fsck_report,
    render_fsck_summary,
    render_repair_report,
)
from repro.reporting.telemetry import render_telemetry
from repro.reporting.tables import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    table2_from_results,
)

__all__ = [
    "STREAMING_SECTIONS",
    "fleet_report_dict",
    "format_table",
    "health_from_results",
    "render_chaos_report",
    "render_epoch_rollups",
    "render_fleet_report",
    "sensitivity_bands",
    "render_fsck_report",
    "render_fsck_summary",
    "render_health",
    "render_repair_report",
    "render_scenario_report",
    "render_streaming_report",
    "scenario_header",
    "streaming_sections",
    "table2_from_results",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_interplay",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_telemetry",
]
