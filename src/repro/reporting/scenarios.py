"""Scenario outcome report: per-pack / per-persona deltas vs baseline.

Renders what a scenario pack did to the campaign, against the paper
baseline every other table compares to: the Table 2 aggregates
(URLs/tweets per platform, measured vs the paper's numbers scaled to
the study), the revocation curve (measured revoked fraction vs the
paper's Fig 6), a per-persona breakdown (group counts, share volume,
revocation, net membership drift) and the health-ledger summary —
compact enough to print after every scenario campaign.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.dataset import StudyDataset
from repro.reporting import paper_values as paper
from repro.reporting.tables import format_table

__all__ = ["render_scenario_report", "scenario_header"]

_PLATFORMS = ("whatsapp", "telegram", "discord")


def scenario_header(dataset: StudyDataset) -> str:
    """One line naming the active pack and its persona mix."""
    name = getattr(dataset, "scenario", "paper-weather")
    personas = getattr(dataset, "personas", {})
    if not personas:
        return f"scenario: {name} (personas: baseline)"
    counts: Dict[str, int] = {}
    for persona in personas.values():
        counts[persona] = counts.get(persona, 0) + 1
    total = sum(counts.values())
    mix = ", ".join(
        f"{persona} {100.0 * counts[persona] / total:.0f}%"
        for persona in sorted(counts, key=lambda p: -counts[p])
    )
    return f"scenario: {name} (personas: {mix})"


def _revoked_frac(dataset: StudyDataset, canonicals: List[str]) -> Optional[float]:
    """Observed revoked fraction over a set of monitored URLs."""
    n_urls = 0
    n_revoked = 0
    for canonical in canonicals:
        snaps = dataset.snapshots.get(canonical)
        if not snaps:
            continue
        n_urls += 1
        last = snaps[-1]
        if not last.alive and last.death_reason == "revoked":
            n_revoked += 1
    if n_urls == 0:
        return None
    return n_revoked / n_urls


def _net_membership(dataset: StudyDataset, canonicals: List[str]) -> float:
    """Mean (last - first) observed member count over a URL set."""
    deltas: List[float] = []
    for canonical in canonicals:
        sizes = [
            snap.size
            for snap in dataset.snapshots.get(canonical, [])
            if snap.alive and snap.size is not None
        ]
        if len(sizes) >= 2:
            deltas.append(float(sizes[-1] - sizes[0]))
    if not deltas:
        return 0.0
    return sum(deltas) / len(deltas)


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{100.0 * value:.1f}%"


def _delta(measured: float, baseline: float) -> str:
    if baseline <= 0:
        return "-"
    return f"{100.0 * (measured - baseline) / baseline:+.0f}%"


def render_scenario_report(dataset: StudyDataset) -> str:
    """The per-scenario / per-persona outcome report."""
    lines = [
        f"Scenario report — {scenario_header(dataset)}",
        "",
    ]

    # -- platform aggregates vs the paper baseline (Table 2 + Fig 6) ----
    scale = dataset.scale
    rows = []
    for platform in _PLATFORMS:
        records = dataset.records_for(platform)
        tweets = sum(record.n_shares for record in records)
        paper_tweets, _users, paper_urls, *_ = paper.TABLE2[platform]
        paper_revoked, _ = paper.FIG6[platform]
        revoked = _revoked_frac(
            dataset, [record.canonical for record in records]
        )
        rows.append(
            [
                platform,
                f"{len(records):,}",
                f"{paper_urls * scale:,.0f}",
                _delta(len(records), paper_urls * scale),
                f"{tweets:,}",
                f"{paper_tweets * scale:,.0f}",
                _delta(tweets, paper_tweets * scale),
                _pct(revoked),
                _pct(paper_revoked),
            ]
        )
    lines.append(
        format_table(
            (
                "platform", "urls", "paper*scale", "Δurls",
                "tweets", "paper*scale", "Δtweets",
                "revoked", "paper",
            ),
            rows,
            title="Platform aggregates vs paper baseline (Table 2, Fig 6)",
        )
    )
    lines.append("")

    # -- per-persona breakdown ------------------------------------------
    personas = getattr(dataset, "personas", {})
    by_persona: Dict[str, List[str]] = {}
    shares_by_persona: Dict[str, int] = {}
    for record in dataset.records.values():
        persona = personas.get(record.url, "baseline")
        by_persona.setdefault(persona, []).append(record.canonical)
        shares_by_persona[persona] = (
            shares_by_persona.get(persona, 0) + record.n_shares
        )
    total_groups = sum(len(v) for v in by_persona.values())
    persona_rows = []
    for persona in sorted(by_persona, key=lambda p: -len(by_persona[p])):
        canonicals = by_persona[persona]
        persona_rows.append(
            [
                persona,
                f"{len(canonicals):,}",
                f"{100.0 * len(canonicals) / total_groups:.1f}%",
                f"{shares_by_persona[persona]:,}",
                _pct(_revoked_frac(dataset, canonicals)),
                f"{_net_membership(dataset, canonicals):+.1f}",
            ]
        )
    lines.append(
        format_table(
            ("persona", "groups", "share", "tweets", "revoked", "Δmembers"),
            persona_rows,
            title=(
                "Per-persona outcomes (baseline = groups born on "
                "phase-free days)"
            ),
        )
    )
    lines.append("")

    # -- health one-liner ------------------------------------------------
    health = dataset.health
    if health is None or health.is_clean():
        lines.append(
            "health: clean campaign — no faults, retries, trips, or misses"
        )
    else:
        totals = {
            field: int(health.total(field))
            for field in ("faults", "retries", "trips", "missed")
            if health.total(field)
        }
        summary = ", ".join(f"{k} {v}" for k, v in totals.items())
        lines.append(f"health: {summary} (full table: health report)")
    return "\n".join(lines)
