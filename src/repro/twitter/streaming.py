"""Twitter Streaming API simulator.

Two streams, as in the paper:

* the **filtered stream** — real-time delivery of tweets matching the
  URL patterns, with its own (stable, deterministic) delivery gaps,
  independent of the Search index's gaps, so the merged Search+Stream
  dataset is strictly larger than either source alone;
* the **1 % sample stream** — an unfiltered uniform sample of all
  tweets, the paper's control dataset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.rng import stable_uniform
from repro.telemetry import Telemetry
from repro.twitter.model import Tweet
from repro.twitter.service import TwitterService, tweet_matches

__all__ = ["StreamingAPI", "DEFAULT_STREAM_RECALL", "SAMPLE_RATE"]

#: Fraction of matching tweets the filtered stream actually delivers.
DEFAULT_STREAM_RECALL = 0.90

#: The public sample stream carries 1 % of all tweets.
SAMPLE_RATE = 0.01


class StreamingAPI:
    """Real-time (window-at-a-time) interface over the tweet firehose."""

    def __init__(
        self,
        service: TwitterService,
        recall: float = DEFAULT_STREAM_RECALL,
        salt: str = "stream-delivery",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not 0.0 < recall <= 1.0:
            raise ValueError(f"recall must be in (0, 1], got {recall}")
        self._service = service
        self._recall = recall
        self._salt = salt
        self._telemetry = telemetry if telemetry is not None else Telemetry()

    def delivered(self, tweet: Tweet) -> bool:
        """Whether the filtered stream delivers this tweet (stable)."""
        return stable_uniform(str(tweet.tweet_id), self._salt) < self._recall

    def filtered(
        self, patterns: Sequence[str], t0: float, t1: float
    ) -> List[Tweet]:
        """Tweets matching ``patterns`` delivered during [t0, t1)."""
        delivered = [
            tweet
            for tweet in self._service.tweets_between(t0, t1)
            if tweet_matches(tweet, patterns) and self.delivered(tweet)
        ]
        self._telemetry.count("twitter_api_calls_total", api="stream")
        self._telemetry.count(
            "twitter_api_results_total", len(delivered), api="stream"
        )
        return delivered

    def sample(
        self, t0: float, t1: float, rate: float = SAMPLE_RATE
    ) -> List[Tweet]:
        """A ``rate`` uniform sample of *all* tweets in [t0, t1).

        This is the control dataset: no pattern filtering.
        """
        sampled = [
            tweet
            for tweet in self._service.tweets_between(t0, t1)
            if stable_uniform(str(tweet.tweet_id), "sample-stream") < rate
        ]
        self._telemetry.count("twitter_api_calls_total", api="sample")
        self._telemetry.count(
            "twitter_api_results_total", len(sampled), api="sample"
        )
        return sampled
