"""The simulated Twitter backend: a time-ordered tweet store.

The store is append-mostly (the world generates tweets day by day) and
supports efficient time-range queries via binary search, which is what
both the Search and Streaming APIs are built on.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence

from repro.twitter.model import Tweet

__all__ = ["TwitterService", "tweet_matches"]


def tweet_matches(tweet: Tweet, patterns: Sequence[str]) -> bool:
    """True if any of the tweet's URLs contains any search pattern.

    Patterns are plain URL prefixes/hosts (``chat.whatsapp.com/``,
    ``t.me/``, ...), matching how the paper queried the Twitter APIs.
    """
    for url in tweet.urls:
        for pattern in patterns:
            if pattern in url:
                return True
    return False


class TwitterService:
    """Time-ordered store of all tweets in the simulated world."""

    def __init__(self) -> None:
        self._tweets: List[Tweet] = []
        self._times: List[float] = []

    def __len__(self) -> int:
        return len(self._tweets)

    def post(self, tweet: Tweet) -> None:
        """Add one tweet; out-of-order inserts are supported but slow."""
        if not self._times or tweet.t >= self._times[-1]:
            self._tweets.append(tweet)
            self._times.append(tweet.t)
        else:
            idx = bisect.bisect_right(self._times, tweet.t)
            self._tweets.insert(idx, tweet)
            self._times.insert(idx, tweet.t)

    def post_many(self, tweets: Iterable[Tweet]) -> None:
        """Bulk-add tweets (sorted internally for efficiency)."""
        batch = sorted(tweets, key=lambda tw: tw.t)
        if batch and self._times and batch[0].t < self._times[-1]:
            # Rare slow path: merge.
            for tweet in batch:
                self.post(tweet)
            return
        self._tweets.extend(batch)
        self._times.extend(tw.t for tw in batch)

    def tweets_between(self, t0: float, t1: float) -> Sequence[Tweet]:
        """All tweets with ``t0 <= t < t1`` (chronological)."""
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        return self._tweets[lo:hi]

    def all_tweets(self) -> Sequence[Tweet]:
        """The full store (ground truth; tests and world only)."""
        return self._tweets
