"""Twitter Search API simulator.

The real Search API returns matching tweets from (roughly) the past
seven days, but its index is *incomplete*: the paper observed
discrepancies between Search and Streaming results and merged both.
We model incompleteness as a stable per-tweet coin flip — a tweet is
either in the search index or it is not, consistently across repeated
polls — with recall :data:`DEFAULT_SEARCH_RECALL`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.clock import SEARCH_WINDOW_DAYS
from repro.rng import stable_uniform
from repro.telemetry import Telemetry
from repro.twitter.model import Tweet
from repro.twitter.service import TwitterService, tweet_matches

__all__ = ["SearchAPI", "DEFAULT_SEARCH_RECALL"]

#: Fraction of tweets the search index covers.
DEFAULT_SEARCH_RECALL = 0.93


class SearchAPI:
    """Polling interface over the simulated search index."""

    def __init__(
        self,
        service: TwitterService,
        recall: float = DEFAULT_SEARCH_RECALL,
        salt: str = "search-index",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not 0.0 < recall <= 1.0:
            raise ValueError(f"recall must be in (0, 1], got {recall}")
        self._service = service
        self._recall = recall
        self._salt = salt
        self._telemetry = telemetry if telemetry is not None else Telemetry()

    def indexed(self, tweet: Tweet) -> bool:
        """Whether this tweet is present in the search index (stable)."""
        return stable_uniform(str(tweet.tweet_id), self._salt) < self._recall

    def search(
        self,
        patterns: Sequence[str],
        now: float,
        since: Optional[float] = None,
    ) -> List[Tweet]:
        """Return indexed tweets matching ``patterns``.

        Args:
            patterns: URL substrings to match (the paper's six).
            now: Query time; results are limited to the API's 7-day
                lookback window ending at ``now``.
            since: Optional lower bound (like ``since_id``) so hourly
                pollers do not re-fetch the whole window each time.
        """
        t0 = now - SEARCH_WINDOW_DAYS
        if since is not None:
            t0 = max(t0, since)
        results = [
            tweet
            for tweet in self._service.tweets_between(t0, now)
            if tweet_matches(tweet, patterns) and self.indexed(tweet)
        ]
        self._telemetry.count("twitter_api_calls_total", api="search")
        self._telemetry.count(
            "twitter_api_results_total", len(results), api="search"
        )
        return results
