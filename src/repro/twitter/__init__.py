"""Simulated Twitter: the discovery lens of the whole study.

The paper discovers messaging-platform groups by searching Twitter for
invite-URL patterns with two APIs — the Search API (polled hourly, 7-day
lookback) and the Streaming API (real time) — and merges the results
because the two APIs return *different* subsets of matching tweets.
This package reproduces that surface: a tweet store, both APIs with
independent (deterministic) coverage gaps, and the 1 % sample stream
used to build the control dataset.
"""

from repro.twitter.model import Tweet, TwitterUser
from repro.twitter.search import SearchAPI
from repro.twitter.service import TwitterService
from repro.twitter.streaming import StreamingAPI

__all__ = ["SearchAPI", "StreamingAPI", "Tweet", "TwitterService", "TwitterUser"]
