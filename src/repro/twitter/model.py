"""Tweet and Twitter-user data model.

Only the fields the paper's analyses consume are modelled: text,
language (as tagged by Twitter itself — the paper reads the API's
``lang`` field), entities (hashtags, mentions, URLs) and retweet
linkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["Tweet", "TwitterUser"]


@dataclass(frozen=True)
class TwitterUser:
    """A Twitter account.

    Attributes:
        user_id: Numeric account id.
        screen_name: The @-handle.
    """

    user_id: int
    screen_name: str


@dataclass(frozen=True)
class Tweet:
    """A single tweet.

    Attributes:
        tweet_id: Unique id (monotone in posting time).
        author_id: The posting account's id.
        t: Posting time, in days since study start.
        text: Tweet body (entities are also inlined in the text).
        lang: Language tag as assigned by Twitter's detector.
        hashtags: Hashtag strings, without '#'.
        mentions: Mentioned screen names, without '@'.
        urls: Expanded URLs contained in the tweet.
        retweet_of: Original tweet id if this is a retweet, else None.
    """

    tweet_id: int
    author_id: int
    t: float
    text: str
    lang: str
    hashtags: Tuple[str, ...] = ()
    mentions: Tuple[str, ...] = ()
    urls: Tuple[str, ...] = ()
    retweet_of: Optional[int] = None

    @property
    def is_retweet(self) -> bool:
        """True if this tweet is a retweet of another tweet."""
        return self.retweet_of is not None
