"""Focused topical collection (paper Section 8, future work).

The paper plans "a focused data collection within groups by selecting
groups related to specific interesting topics".  This module implements
that on top of the public pipeline output: a :class:`TopicFilter`
classifies each discovered URL from the text of the tweets that shared
it, and a :class:`FocusedCollector` assembles the per-topic catalogue
with its monitoring series, ready for downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.dataset import Snapshot, StudyDataset
from repro.core.discovery import URLRecord
from repro.text.tokenize import tokenize_for_lda

__all__ = ["TopicFilter", "FocusedGroup", "FocusedCollector", "BUILTIN_TOPICS"]

#: Ready-made keyword filters for the topics the paper calls out.
BUILTIN_TOPICS: Dict[str, FrozenSet[str]] = {
    "cryptocurrency": frozenset(
        "bitcoin btc ethereum eth crypto cryptocurrency usdt trx trc"
        " airdrop token tokens sats defi blockchain coin".split()
    ),
    "gaming": frozenset(
        "gaming game games nintendo fortnite tournament clan squad"
        " pokemon raid battle gamedev indiegames".split()
    ),
    "adult": frozenset(
        "sex porn nude hentai nsfw onlyfans cam girls boobs pussy".split()
    ),
    "moneymaking": frozenset(
        "earn money cash income forex profit trading payout rich"
        " hustle legit".split()
    ),
}


@dataclass(frozen=True)
class TopicFilter:
    """Classifies discovered URLs by the vocabulary of their tweets.

    Attributes:
        name: Topic label.
        keywords: Lowercase keyword set; a tweet matches if its token
            stream intersects it.
        min_share_frac: Minimum fraction of a URL's tweets that must
            match for the URL to be classified under the topic.
    """

    name: str
    keywords: FrozenSet[str]
    min_share_frac: float = 0.25

    def tweet_matches(self, text: str) -> bool:
        """True if the tweet's tokens intersect the keyword set."""
        return bool(self.keywords & set(tokenize_for_lda(text)))

    def record_matches(self, dataset: StudyDataset, record: URLRecord) -> bool:
        """True if enough of the URL's sharing tweets match the topic."""
        if not record.shares:
            return False
        hits = sum(
            1
            for tweet_id, _ in record.shares
            if self.tweet_matches(dataset.tweets[tweet_id].text)
        )
        return hits >= max(1, int(record.n_shares * self.min_share_frac))

    @classmethod
    def builtin(cls, name: str, min_share_frac: float = 0.25) -> "TopicFilter":
        """A filter from :data:`BUILTIN_TOPICS` by name."""
        if name not in BUILTIN_TOPICS:
            raise KeyError(
                f"unknown builtin topic {name!r}; "
                f"available: {sorted(BUILTIN_TOPICS)}"
            )
        return cls(
            name=name, keywords=BUILTIN_TOPICS[name],
            min_share_frac=min_share_frac,
        )


@dataclass
class FocusedGroup:
    """One group selected by a topic filter, with its observations."""

    record: URLRecord
    snapshots: List[Snapshot] = field(default_factory=list)

    @property
    def platform(self) -> str:
        return self.record.platform

    @property
    def alive_sizes(self) -> List[int]:
        """Member counts across the alive daily observations."""
        return [s.size for s in self.snapshots if s.alive and s.size is not None]

    @property
    def growth(self) -> Optional[int]:
        """Member change between first and last alive observation."""
        sizes = self.alive_sizes
        if len(sizes) < 2:
            return None
        return sizes[-1] - sizes[0]


class FocusedCollector:
    """Selects and packages the groups matching a topic filter."""

    def __init__(self, topic: TopicFilter) -> None:
        self.topic = topic

    def collect(
        self,
        dataset: StudyDataset,
        platforms: Sequence[str] = ("whatsapp", "telegram", "discord"),
        english_only: bool = True,
    ) -> Dict[str, List[FocusedGroup]]:
        """Return the per-platform catalogue of matching groups."""
        catalogue: Dict[str, List[FocusedGroup]] = {p: [] for p in platforms}
        for platform in platforms:
            for record in dataset.records_for(platform):
                if english_only and not any(
                    dataset.tweets[tid].lang == "en" for tid, _ in record.shares
                ):
                    continue
                if not self.topic.record_matches(dataset, record):
                    continue
                catalogue[platform].append(
                    FocusedGroup(
                        record=record,
                        snapshots=list(
                            dataset.snapshots.get(record.canonical, [])
                        ),
                    )
                )
        return catalogue

    def prevalence(
        self, dataset: StudyDataset, platform: str, english_only: bool = True
    ) -> float:
        """Fraction of the platform's (English) URLs matching the topic."""
        records = dataset.records_for(platform)
        if english_only:
            records = [
                r
                for r in records
                if any(dataset.tweets[tid].lang == "en" for tid, _ in r.shares)
            ]
        if not records:
            return 0.0
        matching = sum(
            1 for r in records if self.topic.record_matches(dataset, r)
        )
        return matching / len(records)
