"""Real-time collection (paper Section 8 conclusion).

"This phenomenon prompts the need to design and develop robust,
scalable, and real-time data collection solutions" — because two-thirds
of Discord invite URLs are already dead at the paper's *daily* first
observation.  This extension implements that solution: a collector that
polls the Twitter APIs every hour and visits each newly discovered URL
**immediately**, archiving the group metadata before the invite can
expire.

``compare_with_daily`` quantifies the gain: the fraction of URLs whose
first observation succeeds, real-time vs the paper's end-of-day
monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.dataset import Snapshot, StudyDataset
from repro.core.discovery import POLLS_PER_DAY
from repro.core.patterns import DEFAULT_PATTERNS, extract_group_urls
from repro.errors import RevokedURLError, UnknownURLError
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.simulation.world import World
from repro.twitter.search import SearchAPI
from repro.twitter.streaming import StreamingAPI

__all__ = ["FirstObservation", "RealTimeCollector", "compare_with_daily"]


@dataclass(frozen=True)
class FirstObservation:
    """The immediate first visit of a newly discovered URL.

    Attributes:
        canonical: URL deduplication key.
        platform: Messaging platform.
        discovered_t: When the first tweet reached the collector.
        observed_t: When the URL was visited (same poll cycle).
        alive: Whether the landing page / API responded.
        size: Member count if alive.
        title: Group title if alive.
    """

    canonical: str
    platform: str
    discovered_t: float
    observed_t: float
    alive: bool
    size: Optional[int] = None
    title: str = ""


class RealTimeCollector:
    """Hourly discovery with immediate metadata capture.

    Unlike the batch pipeline (discover all day, observe in the
    evening), every poll cycle visits the URLs it just discovered, so
    the discovery-to-observation lag is bounded by the poll interval
    (one hour) instead of up to a full day.
    """

    def __init__(
        self,
        world: World,
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        polls_per_day: int = POLLS_PER_DAY,
    ) -> None:
        if polls_per_day < 1:
            raise ValueError("polls_per_day must be >= 1")
        self._world = world
        self._patterns = tuple(patterns)
        self._polls_per_day = polls_per_day
        self._search = SearchAPI(world.twitter)
        self._stream = StreamingAPI(world.twitter)
        self._whatsapp = WhatsAppWebClient(world.platform("whatsapp"))
        self._telegram = TelegramWebClient(world.platform("telegram"))
        self._discord = DiscordAPI(world.platform("discord"), "rt-collector")
        self._hasher = PhoneHasher("realtime")
        self._last_poll_t: Optional[float] = None
        #: canonical -> first observation (the archive).
        self.observations: Dict[str, FirstObservation] = {}

    def run_day(self, day: int) -> None:
        """Run one day of hourly poll-and-visit cycles."""
        step = 1.0 / self._polls_per_day
        for poll in range(1, self._polls_per_day + 1):
            now = day + poll * step
            window_start = self._last_poll_t if self._last_poll_t else now - step
            tweets = self._search.search(
                self._patterns, now, since=self._last_poll_t
            )
            tweets = tweets + self._stream.filtered(
                self._patterns, window_start, now
            )
            self._last_poll_t = now
            for tweet in tweets:
                for group_url in extract_group_urls(tweet.urls):
                    if group_url.canonical in self.observations:
                        continue
                    self.observations[group_url.canonical] = self._visit(
                        group_url.canonical,
                        group_url.platform,
                        group_url.url,
                        discovered_t=tweet.t,
                        now=now,
                    )

    def run(self, n_days: int) -> Dict[str, FirstObservation]:
        """Run the collector over ``n_days`` and return the archive."""
        for day in range(n_days):
            self.run_day(day)
        return self.observations

    def _visit(
        self,
        canonical: str,
        platform: str,
        url: str,
        discovered_t: float,
        now: float,
    ) -> FirstObservation:
        try:
            if platform == "whatsapp":
                preview = self._whatsapp.preview(url, now)
                return FirstObservation(
                    canonical, platform, discovered_t, now, True,
                    size=preview.size, title=preview.title,
                )
            if platform == "telegram":
                preview = self._telegram.preview(url, now)
                return FirstObservation(
                    canonical, platform, discovered_t, now, True,
                    size=preview.size, title=preview.title,
                )
            info = self._discord.get_invite(url, now)
            return FirstObservation(
                canonical, platform, discovered_t, now, True,
                size=info.size, title=info.title,
            )
        except (RevokedURLError, UnknownURLError):
            return FirstObservation(
                canonical, platform, discovered_t, now, False
            )

    def success_rate(self, platform: Optional[str] = None) -> float:
        """Fraction of first observations that found the URL alive."""
        observations = [
            obs
            for obs in self.observations.values()
            if platform is None or obs.platform == platform
        ]
        if not observations:
            raise ValueError(f"no observations for {platform!r}")
        return sum(1 for obs in observations if obs.alive) / len(observations)


def compare_with_daily(
    collector: RealTimeCollector, dataset: StudyDataset
) -> Dict[str, Dict[str, float]]:
    """First-observation success: real-time vs the daily monitor.

    Returns ``{platform: {"realtime": frac, "daily": frac}}`` where each
    value is the fraction of URLs found alive at their first visit.
    """
    result: Dict[str, Dict[str, float]] = {}
    for platform in ("whatsapp", "telegram", "discord"):
        daily_alive = daily_total = 0
        for record in dataset.records_for(platform):
            snaps = dataset.snapshots.get(record.canonical)
            if not snaps:
                continue
            daily_total += 1
            daily_alive += snaps[0].alive
        result[platform] = {
            "realtime": collector.success_rate(platform),
            "daily": daily_alive / daily_total if daily_total else 0.0,
        }
    return result
