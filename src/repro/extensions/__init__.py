"""Extensions implementing the paper's Section 8 future-work agenda.

* :mod:`~repro.extensions.focused` — focused collection of groups on a
  specific topic (the paper: "selecting groups related to specific
  interesting topics like politics and COVID-19").
* :mod:`~repro.extensions.toxicity` — a lexicon-based toxicity scorer
  standing in for Google's Perspective API (the paper: "assess the
  prevalence of toxic content ... by leveraging Google's Perspective
  API"), plus the per-platform toxicity analysis built on it.
* :mod:`~repro.extensions.realtime` — the "robust, scalable, real-time
  data collection solution" the paper's conclusion calls for: hourly
  discovery with immediate metadata capture, beating the daily monitor
  on ephemeral (especially Discord) invites.
"""

from repro.extensions.focused import FocusedCollector, TopicFilter
from repro.extensions.realtime import RealTimeCollector, compare_with_daily
from repro.extensions.toxicity import ToxicityScorer, platform_toxicity

__all__ = [
    "FocusedCollector",
    "RealTimeCollector",
    "TopicFilter",
    "ToxicityScorer",
    "compare_with_daily",
    "platform_toxicity",
]
