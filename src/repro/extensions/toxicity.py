"""Toxicity scoring (paper Section 8, future work).

The paper plans to "assess the prevalence of toxic content shared
within such groups (i.e., by leveraging Google's Perspective API)".
The Perspective API is a closed service, so this extension substitutes
a transparent lexicon scorer with the same interface shape: text in,
score in [0, 1] out.  It is calibrated on the generative vocabularies —
the adult-content topics that the paper found on Telegram (and hentai
on Discord) carry the toxic lexicon, so the per-platform shape (toxic
prevalence: Telegram > Discord > WhatsApp) follows the paper's topic
findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.core.dataset import StudyDataset
from repro.text.tokenize import tokenize

__all__ = ["ToxicityScorer", "PlatformToxicity", "platform_toxicity"]

#: Strongly toxic/explicit terms (score weight 1.0).
_TOXIC_TERMS: FrozenSet[str] = frozenset(
    "fuck pussy cum nude boobs porn sex nsfw lewd hentai".split()
)

#: Milder suggestive terms (score weight 0.4).
_SUGGESTIVE_TERMS: FrozenSet[str] = frozenset(
    "girls hot leaked premium butt waifu cam onlyfans xxx snap".split()
)


@dataclass(frozen=True)
class PlatformToxicity:
    """Toxicity summary for one platform's group-sharing tweets.

    Attributes:
        platform: Messaging platform.
        n_scored: Tweets scored.
        mean_score: Mean toxicity score.
        toxic_frac: Fraction of tweets above the toxic threshold.
    """

    platform: str
    n_scored: int
    mean_score: float
    toxic_frac: float


class ToxicityScorer:
    """Perspective-API-shaped lexicon scorer.

    ``score`` maps a text to [0, 1]; the score saturates with the
    number of toxic hits, mirroring how a probability-of-toxicity API
    behaves on increasingly explicit text.
    """

    def __init__(
        self,
        toxic_terms: FrozenSet[str] = _TOXIC_TERMS,
        suggestive_terms: FrozenSet[str] = _SUGGESTIVE_TERMS,
        threshold: float = 0.5,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self._toxic = toxic_terms
        self._suggestive = suggestive_terms
        self.threshold = threshold

    def score(self, text: str) -> float:
        """Toxicity score of ``text`` in [0, 1]."""
        tokens = tokenize(text)
        if not tokens:
            return 0.0
        weight = sum(
            1.0 if token in self._toxic else 0.4
            for token in tokens
            if token in self._toxic or token in self._suggestive
        )
        # Saturating map: one strong hit ~0.63, two ~0.86, ...
        return float(1.0 - np.exp(-weight))

    def is_toxic(self, text: str) -> bool:
        """True if the score exceeds the configured threshold."""
        return self.score(text) > self.threshold

    def score_many(self, texts: Sequence[str]) -> np.ndarray:
        """Vector of scores for a batch of texts."""
        return np.array([self.score(text) for text in texts])


def platform_toxicity(
    dataset: StudyDataset,
    scorer: ToxicityScorer = None,
    english_only: bool = True,
) -> Dict[str, PlatformToxicity]:
    """Score every platform's group-sharing tweets.

    Returns per-platform summaries; with the default scorer the paper's
    topic findings imply toxic prevalence Telegram > Discord > WhatsApp
    (sex topics are 23 % of Telegram's English tweets, hentai 9 % of
    Discord's, and WhatsApp's topics are money-centric).
    """
    scorer = scorer or ToxicityScorer()
    results: Dict[str, PlatformToxicity] = {}
    for platform in ("whatsapp", "telegram", "discord"):
        texts: List[str] = [
            tweet.text
            for tweet in dataset.tweets_for(platform)
            if not english_only or tweet.lang == "en"
        ]
        if not texts:
            raise ValueError(f"no tweets to score for {platform}")
        scores = scorer.score_many(texts)
        results[platform] = PlatformToxicity(
            platform=platform,
            n_scored=len(texts),
            mean_score=float(scores.mean()),
            toxic_frac=float(np.mean(scores > scorer.threshold)),
        )
    return results
