"""The declarative sweep matrix: seeds × fault profiles × scenarios.

A :class:`SweepMatrix` is the whole sweep as plain data — which seeds,
which fault profiles, which scenario packs, and the campaign knobs
every cell shares — validated once at parse time so a typo costs a
:class:`~repro.errors.ConfigError` before any process is spawned.  It
expands deterministically into :class:`SweepCell`\\ s (seed-major,
then fault, then scenario), and both the matrix and each cell carry a
content digest over their canonical JSON encoding: the digests are
what make the sweep ledger restartable — ``--resume`` trusts a
completed cell record only if its digest still matches the matrix
being resumed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.faults import PROFILES
from repro.scenarios import SCENARIO_PACKS

__all__ = ["SweepCell", "SweepMatrix"]

#: Campaign knobs every cell shares, with their defaults (sized like
#: the chaos harness's: small enough that a grid of them is cheap).
_BASE_DEFAULTS: Dict[str, Any] = {
    "n_days": 6,
    "scale": 0.004,
    "message_scale": 0.05,
    "join_day": None,  # None = min(10, n_days - 1)
}


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Any) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepCell:
    """One campaign of the sweep: a (seed, faults, scenario) point.

    ``cell_id`` is the human-readable ledger key; ``digest`` is the
    content address — SHA-256 over the cell's canonical JSON,
    including the shared base knobs and any fork source — so a resumed
    sweep can tell a completed cell of *this* matrix from a stale
    record left by a different one.
    """

    seed: int
    faults: str
    scenario: str
    base: Dict[str, Any] = field(default_factory=dict)
    fork: Optional[Dict[str, Any]] = None

    @property
    def cell_id(self) -> str:
        return f"s{self.seed}-{self.faults}-{self.scenario}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "scenario": self.scenario,
            "base": dict(self.base),
            "fork": dict(self.fork) if self.fork else None,
        }

    @property
    def digest(self) -> str:
        return _digest(self.to_dict())

    def config_kwargs(self) -> Dict[str, Any]:
        """:class:`~repro.core.study.StudyConfig` kwargs for this cell.

        Faults and scenario stay plain names (``None`` for the bare
        pipeline / paper weather) so the dict survives a JSON round
        trip to the cell subprocess unchanged.
        """
        join_day = self.base["join_day"]
        if join_day is None:
            join_day = min(10, self.base["n_days"] - 1)
        return {
            "seed": self.seed,
            "n_days": self.base["n_days"],
            "scale": self.base["scale"],
            "message_scale": self.base["message_scale"],
            "join_day": join_day,
            "faults": None if self.faults == "none" else self.faults,
            "scenario": (
                None if self.scenario == "paper-weather" else self.scenario
            ),
        }


@dataclass(frozen=True)
class SweepMatrix:
    """A validated sweep: axis lists plus the shared campaign base.

    Attributes:
        seeds: Study seeds, one campaign per seed per (fault,
            scenario) pair.  In fork mode each seed reseeds the
            forked future (see ``fork``).
        faults: Fault profile names (:data:`repro.faults.PROFILES`).
        scenarios: Scenario pack names
            (:data:`repro.scenarios.SCENARIO_PACKS`).
        base: Shared campaign knobs (``n_days``, ``scale``,
            ``message_scale``, ``join_day``).
        fork: Optional ``{"store": path, "day": n}``: every cell
            branches the checkpointed parent campaign at that day
            (via :meth:`~repro.core.study.Study.fork`) instead of
            running fresh, swapping in its own seed/faults/scenario
            for the forked future.
    """

    seeds: Tuple[int, ...]
    faults: Tuple[str, ...] = ("none",)
    scenarios: Tuple[str, ...] = ("paper-weather",)
    base: Dict[str, Any] = field(
        default_factory=lambda: dict(_BASE_DEFAULTS)
    )
    fork: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        base = dict(_BASE_DEFAULTS)
        base.update(self.base)
        object.__setattr__(self, "base", base)
        self._validate()

    def _validate(self) -> None:
        for axis, values in (
            ("seeds", self.seeds),
            ("faults", self.faults),
            ("scenarios", self.scenarios),
        ):
            if not values:
                raise ConfigError(f"sweep {axis} must be non-empty")
            if len(set(values)) != len(values):
                raise ConfigError(
                    f"sweep {axis} contains duplicates: {list(values)}"
                )
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigError(
                    f"sweep seeds must be integers, got {seed!r}"
                )
        for name in self.faults:
            if name not in PROFILES:
                raise ConfigError(
                    f"unknown fault profile {name!r}; known: "
                    f"{sorted(PROFILES)}"
                )
        for name in self.scenarios:
            if name not in SCENARIO_PACKS:
                raise ConfigError(
                    f"unknown scenario pack {name!r}; known: "
                    f"{sorted(SCENARIO_PACKS)}"
                )
        unknown = sorted(set(self.base) - set(_BASE_DEFAULTS))
        if unknown:
            raise ConfigError(
                f"unknown sweep base knobs: {unknown}; known: "
                f"{sorted(_BASE_DEFAULTS)}"
            )
        n_days = self.base["n_days"]
        if not isinstance(n_days, int) or n_days < 1:
            raise ConfigError(
                f"sweep n_days must be a positive integer, got {n_days!r}"
            )
        if not self.base["scale"] > 0:
            raise ConfigError(
                f"sweep scale must be positive, got {self.base['scale']!r}"
            )
        if not 0.0 < self.base["message_scale"] <= 1.0:
            raise ConfigError(
                "sweep message_scale must be in (0, 1], got "
                f"{self.base['message_scale']!r}"
            )
        join_day = self.base["join_day"]
        if join_day is not None and not 0 <= join_day < n_days:
            raise ConfigError(
                f"sweep join_day must fall inside the window, got "
                f"{join_day!r}"
            )
        if self.fork is not None:
            unknown = sorted(set(self.fork) - {"store", "day"})
            if unknown or not {"store", "day"} <= set(self.fork):
                raise ConfigError(
                    "sweep fork must be {'store': path, 'day': n}, got "
                    f"{self.fork!r}"
                )
            day = self.fork["day"]
            if not isinstance(day, int) or day < 0:
                raise ConfigError(
                    f"sweep fork day must be a non-negative integer, "
                    f"got {day!r}"
                )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "faults": list(self.faults),
            "scenarios": list(self.scenarios),
            "base": dict(self.base),
            "fork": dict(self.fork) if self.fork else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepMatrix":
        if not isinstance(data, dict):
            raise ConfigError(
                f"sweep spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(
            set(data) - {"seeds", "faults", "scenarios", "base", "fork"}
        )
        if unknown:
            raise ConfigError(f"unknown sweep spec keys: {unknown}")
        if "seeds" not in data:
            raise ConfigError("sweep spec must name its seeds")
        return cls(
            seeds=data["seeds"],
            faults=data.get("faults", ("none",)),
            scenarios=data.get("scenarios", ("paper-weather",)),
            base=data.get("base", {}),
            fork=data.get("fork"),
        )

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "SweepMatrix":
        """Parse a sweep file; every failure mode is a ConfigError."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigError(f"cannot read sweep file {path}: {exc}")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"sweep file {path} is not valid JSON: {exc}")
        return cls.from_dict(data)

    # -- expansion ---------------------------------------------------------

    @property
    def digest(self) -> str:
        return _digest(self.to_dict())

    def cells(self) -> List[SweepCell]:
        """Every cell, in deterministic seed-major order."""
        return [
            SweepCell(
                seed=seed,
                faults=fault,
                scenario=scenario,
                base=dict(self.base),
                fork=dict(self.fork) if self.fork else None,
            )
            for seed in self.seeds
            for fault in self.faults
            for scenario in self.scenarios
        ]

    def __len__(self) -> int:
        return len(self.seeds) * len(self.faults) * len(self.scenarios)
