"""The fleet supervisor: a bounded pool of subprocess campaigns.

:class:`FleetRunner` drives a :class:`~repro.fleet.matrix.SweepMatrix`
to completion the way :class:`~repro.parallel.supervisor.
SupervisedEngine` drives its worker pool — detection first, then
bounded healing, then graceful degradation:

* **Detection.**  Every cell subprocess carries an exit sentinel
  (:func:`repro.procs.exit_sentinel`); the scheduler blocks in one
  ``multiprocessing.connection.wait`` over all of them, sliced so
  per-cell deadlines are honoured even when nothing fires.  A crashed
  cell wakes the supervisor immediately; a hung one is stopped at its
  deadline by SIGTERM→SIGKILL escalation
  (:func:`repro.procs.terminate_escalate`).

* **Bounded retry.**  A lost cell goes back in the queue with a
  seeded simulated-time backoff — :func:`repro.resilience.retry.
  backoff_hours` bookkeeping recorded in telemetry, never slept, like
  every other delay in this codebase — until its restart budget runs
  out.

* **Graceful degradation.**  A budget-exhausted cell becomes a
  ``failed`` ledger record and a ``failed`` column in the merged
  report; the sweep itself completes and exits 0.  One bad cell must
  not cost the other ninety-nine.

Restartability rides on the ledger: cells are re-run through the
resume-or-fresh logic of :mod:`repro.fleet._child`, so an interrupted
cell (or one orphaned by a SIGKILLed fleet) finishes from its own
checkpoints, and ``resume=True`` skips any cell whose completed
record still verifies against the matrix.

Counters: ``fleet_cells_started_total``, ``fleet_cells_completed_
total``, ``fleet_cells_retried_total``, ``fleet_cells_failed_total``,
``fleet_cells_skipped_total``, ``fleet_cell_losses_total`` (labelled
by ``reason=crash|deadline``), ``fleet_restart_backoff_seconds_
total`` and ``fleet_ledger_writes_total``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.fleet.ledger import FleetLedger
from repro.fleet.matrix import SweepCell, SweepMatrix
from repro.io.atomic import atomic_write_text
from repro.procs import child_environ, exit_sentinel, terminate_escalate
from repro.resilience.retry import RetryPolicy, backoff_hours
from repro.telemetry import Telemetry

__all__ = [
    "CellOutcome",
    "DEFAULT_CELL_DEADLINE_S",
    "DEFAULT_CELL_RESTARTS",
    "FleetPolicy",
    "FleetResult",
    "FleetRunner",
]

logger = logging.getLogger(__name__)

#: How long one cell campaign may run before it is declared hung.
#: Generous: a harness-scale cell takes seconds.
DEFAULT_CELL_DEADLINE_S = 3600.0

#: Per-cell restart budget before the cell degrades to ``failed``.
DEFAULT_CELL_RESTARTS = 2


@dataclass(frozen=True)
class FleetPolicy:
    """The fleet supervisor's knobs, validated once at construction.

    Attributes:
        workers: Concurrent cell subprocesses (the pool bound).
        cell_deadline_s: Wall-clock budget per cell attempt; past it
            the cell is stopped and counted as a ``deadline`` loss.
        max_restarts: Retry budget per cell; 0 fails a cell on its
            first loss.
        backoff_seed: Seed of the retry-backoff stream (recorded in
            telemetry as simulated time, never slept).
        wait_slice_s: Upper bound on one multiplexed wait, so
            deadlines are honoured even if no sentinel ever fires.
        term_grace_s: SIGTERM→SIGKILL escalation grace per cell.
    """

    workers: int = 2
    cell_deadline_s: float = DEFAULT_CELL_DEADLINE_S
    max_restarts: int = DEFAULT_CELL_RESTARTS
    backoff_seed: int = 0
    wait_slice_s: float = 0.2
    term_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise ConfigError(
                f"fleet workers must be a positive integer, got "
                f"{self.workers!r}"
            )
        if not self.cell_deadline_s > 0:
            raise ConfigError(
                f"cell deadline must be positive, got "
                f"{self.cell_deadline_s!r}"
            )
        if (
            not isinstance(self.max_restarts, int)
            or isinstance(self.max_restarts, bool)
            or self.max_restarts < 0
        ):
            raise ConfigError(
                "cell restart budget must be a non-negative integer, "
                f"got {self.max_restarts!r}"
            )
        if not self.wait_slice_s > 0:
            raise ConfigError(
                f"wait slice must be positive, got {self.wait_slice_s!r}"
            )
        if not self.term_grace_s > 0:
            raise ConfigError(
                f"termination grace must be positive, got "
                f"{self.term_grace_s!r}"
            )


@dataclass
class CellOutcome:
    """One cell's final state after the sweep."""

    cell: SweepCell
    status: str  # "completed" | "failed"
    reason: str = ""
    #: Verified metric summary; None for failed cells.
    summary: Optional[Dict[str, Any]] = None
    #: True when a resume trusted the ledger instead of running.
    skipped: bool = False
    #: Spawn attempts this run (0 when skipped).  Off the report path:
    #: identical outcomes may differ here across interrupted runs.
    attempts: int = 0
    #: Wall-clock seconds this run spent on the cell (0 when skipped).
    #: Off the report path, like ``attempts``.
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic, report-facing view of the outcome."""
        return {
            "cell": self.cell.cell_id,
            "digest": self.cell.digest,
            "status": self.status,
            "reason": self.reason,
            "summary": self.summary,
        }


@dataclass
class FleetResult:
    """The whole sweep's outcome, in matrix cell order."""

    matrix: SweepMatrix
    outcomes: List[CellOutcome] = field(default_factory=list)

    @property
    def completed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        """Every cell reached a final status (failed cells included):
        the sweep itself completed."""
        return len(self.outcomes) == len(self.matrix)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matrix": self.matrix.to_dict(),
            "matrix_digest": self.matrix.digest,
            "cells": [o.to_dict() for o in self.outcomes],
            "completed": len(self.completed),
            "failed": len(self.failed),
        }


class _RunningCell:
    """Bookkeeping for one live cell subprocess."""

    __slots__ = ("cell", "proc", "sentinel", "attempt", "deadline_at",
                 "started_at", "log_handle")

    def __init__(self, cell, proc, sentinel, attempt, deadline_at,
                 started_at, log_handle) -> None:
        self.cell = cell
        self.proc = proc
        self.sentinel = sentinel
        self.attempt = attempt
        self.deadline_at = deadline_at
        self.started_at = started_at
        self.log_handle = log_handle


class FleetRunner:
    """Schedule a sweep matrix as supervised subprocess campaigns.

    ``cell_hook`` is the test-injection point: called as
    ``cell_hook(cell_id, status)`` right after each cell reaches a
    final status this run (``completed`` / ``failed`` — skipped cells
    don't fire it); an exception it raises aborts the sweep
    mid-flight, which is how the determinism tests simulate a dead
    fleet without arranging a real SIGKILL.
    """

    def __init__(
        self,
        matrix: SweepMatrix,
        workdir: Union[str, os.PathLike],
        *,
        policy: Optional[FleetPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        resume: bool = False,
        anchor_every: Optional[int] = 2,
        cell_hook: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.matrix = matrix
        self.workdir = Path(workdir)
        self.policy = policy if policy is not None else FleetPolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.resume = resume
        self.anchor_every = anchor_every
        self.cell_hook = cell_hook

    # -- public ------------------------------------------------------------

    def run(self) -> FleetResult:
        """Drive every cell to a final status; returns the full result."""
        ledger = FleetLedger.create(
            self.workdir, self.matrix, telemetry=self.telemetry
        )
        cells = self.matrix.cells()
        outcomes: Dict[str, CellOutcome] = {}
        pending: deque = deque()

        for cell in cells:
            summary = (
                ledger.completed_summary(cell) if self.resume else None
            )
            if summary is not None:
                outcomes[cell.cell_id] = CellOutcome(
                    cell=cell,
                    status="completed",
                    summary=summary,
                    skipped=True,
                )
                self.telemetry.count("fleet_cells_skipped_total")
            else:
                pending.append((cell, 1))
        skipped = len(cells) - len(pending)
        if self.resume and skipped:
            logger.info(
                "resuming sweep: %d of %d completed cells skipped by "
                "ledger digest", skipped, len(cells),
            )

        running: Dict[str, _RunningCell] = {}
        try:
            while pending or running:
                while pending and len(running) < self.policy.workers:
                    cell, attempt = pending.popleft()
                    running[cell.cell_id] = self._launch(
                        ledger, cell, attempt
                    )
                self._wait_one_sweep(ledger, running, pending, outcomes)
        finally:
            for rc in running.values():
                terminate_escalate(rc.proc, self.policy.term_grace_s)
                self._release(rc)

        return FleetResult(
            matrix=self.matrix,
            outcomes=[
                outcomes[c.cell_id] for c in cells if c.cell_id in outcomes
            ],
        )

    # -- scheduling --------------------------------------------------------

    def _launch(
        self, ledger: FleetLedger, cell: SweepCell, attempt: int
    ) -> _RunningCell:
        cell_dir = ledger.cell_dir(cell.cell_id)
        cell_dir.mkdir(parents=True, exist_ok=True)
        spec = {
            "cell": cell.cell_id,
            "digest": cell.digest,
            "config": cell.config_kwargs(),
            "store": str(ledger.store_dir(cell.cell_id)),
            "summary": str(ledger.summary_path(cell.cell_id)),
            "anchor_every": self.anchor_every,
            "fork": cell.fork,
            "attempt": attempt,
        }
        atomic_write_text(
            ledger.spec_path(cell.cell_id),
            json.dumps(spec, indent=2, sort_keys=True) + "\n",
        )
        ledger.record_running(cell)
        read_fd, write_fd = exit_sentinel()
        log_handle = open(ledger.log_path(cell.cell_id), "ab")
        try:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.fleet._child",
                    str(ledger.spec_path(cell.cell_id)),
                ],
                env=child_environ(),
                stdout=log_handle,
                stderr=subprocess.STDOUT,
                pass_fds=(write_fd,),
                close_fds=True,
            )
        except Exception:
            os.close(read_fd)
            log_handle.close()
            raise
        finally:
            os.close(write_fd)
        self.telemetry.count("fleet_cells_started_total")
        now = time.monotonic()
        logger.debug(
            "cell %s attempt %d started (pid %d)",
            cell.cell_id, attempt, proc.pid,
        )
        return _RunningCell(
            cell=cell,
            proc=proc,
            sentinel=read_fd,
            attempt=attempt,
            deadline_at=now + self.policy.cell_deadline_s,
            started_at=now,
            log_handle=log_handle,
        )

    def _wait_one_sweep(
        self,
        ledger: FleetLedger,
        running: Dict[str, _RunningCell],
        pending: deque,
        outcomes: Dict[str, CellOutcome],
    ) -> None:
        """One multiplexed wait over every live cell, then reap."""
        now = time.monotonic()
        soonest = min(rc.deadline_at for rc in running.values())
        timeout = max(
            0.0, min(self.policy.wait_slice_s, soonest - now)
        )
        by_sentinel = {rc.sentinel: rc for rc in running.values()}
        ready = _wait_connections(list(by_sentinel), timeout=timeout)

        for fd in ready:
            rc = by_sentinel[fd]
            rc.proc.wait()
            del running[rc.cell.cell_id]
            self._reap(ledger, rc, pending, outcomes, hung=False)

        now = time.monotonic()
        for cell_id in [
            cid for cid, rc in running.items() if rc.deadline_at <= now
        ]:
            rc = running.pop(cell_id)
            logger.warning(
                "cell %s attempt %d exceeded its %.0fs deadline; "
                "stopping it", cell_id, rc.attempt,
                self.policy.cell_deadline_s,
            )
            terminate_escalate(rc.proc, self.policy.term_grace_s)
            self._reap(ledger, rc, pending, outcomes, hung=True)

    # -- reaping -----------------------------------------------------------

    def _release(self, rc: _RunningCell) -> None:
        os.close(rc.sentinel)
        rc.log_handle.close()

    def _reap(
        self,
        ledger: FleetLedger,
        rc: _RunningCell,
        pending: deque,
        outcomes: Dict[str, CellOutcome],
        *,
        hung: bool,
    ) -> None:
        self._release(rc)
        cell = rc.cell
        duration = time.monotonic() - rc.started_at
        summary = None
        if not hung and rc.proc.returncode == 0:
            # The exit code alone is not trusted: the summary must
            # exist and verify, the same check a resume would make.
            payload = self._verified_summary(ledger, cell)
            if payload is not None:
                summary = payload

        if summary is not None:
            digest = hashlib.sha256(
                ledger.summary_path(cell.cell_id).read_bytes()
            ).hexdigest()
            ledger.record_completed(
                cell, digest, cell.base["n_days"]
            )
            outcomes[cell.cell_id] = CellOutcome(
                cell=cell,
                status="completed",
                summary=summary,
                attempts=rc.attempt,
                duration_s=duration,
            )
            self.telemetry.count("fleet_cells_completed_total")
            logger.debug(
                "cell %s completed on attempt %d (%.1fs)",
                cell.cell_id, rc.attempt, duration,
            )
            if self.cell_hook is not None:
                self.cell_hook(cell.cell_id, "completed")
            return

        reason = "deadline" if hung else "crash"
        self.telemetry.count("fleet_cell_losses_total", reason=reason)
        logger.warning(
            "cell %s attempt %d lost (%s, exit %s)",
            cell.cell_id, rc.attempt, reason, rc.proc.returncode,
        )
        if rc.attempt > self.policy.max_restarts:
            ledger.record_failed(cell, "restart budget exhausted")
            outcomes[cell.cell_id] = CellOutcome(
                cell=cell,
                status="failed",
                reason=(
                    f"restart budget exhausted after {rc.attempt} "
                    f"attempts (last loss: {reason})"
                ),
                attempts=rc.attempt,
                duration_s=duration,
            )
            self.telemetry.count("fleet_cells_failed_total")
            if self.cell_hook is not None:
                self.cell_hook(cell.cell_id, "failed")
            return

        # Seeded simulated-time backoff: recorded, never slept — the
        # same bookkeeping the worker supervisor does.
        delay_h = backoff_hours(
            RetryPolicy(),
            rc.attempt,
            self.policy.backoff_seed,
            f"fleet/{cell.cell_id}/restart",
        )
        self.telemetry.count(
            "fleet_restart_backoff_seconds_total", delay_h * 3600.0
        )
        self.telemetry.count("fleet_cells_retried_total")
        pending.append((cell, rc.attempt + 1))

    def _verified_summary(
        self, ledger: FleetLedger, cell: SweepCell
    ) -> Optional[Dict[str, Any]]:
        """The freshly-written summary iff it parses and names the cell."""
        try:
            payload = json.loads(
                ledger.summary_path(cell.cell_id).read_text()
            )
        except (OSError, json.JSONDecodeError):
            return None
        if (
            isinstance(payload, dict)
            and payload.get("cell") == cell.cell_id
            and payload.get("digest") == cell.digest
        ):
            return payload
        return None
