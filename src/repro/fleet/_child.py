"""Subprocess entry point for one fleet sweep cell.

``python -m repro.fleet._child <spec.json>`` runs one cell campaign —
fresh, resumed from the cell's own run store, or forked from a parent
store — writes the cell's metric summary atomically, and exits 0.
The fleet supervisor treats any other exit (crash, signal, missing or
unreadable summary) as a cell loss to retry.

The spec file is JSON::

    {
      "cell":    "s7-hostile-paper-weather",
      "digest":  "<cell content digest>",
      "config":  {... StudyConfig kwargs, faults/scenario as names ...},
      "store":   "/workdir/cells/<id>/store",
      "summary": "/workdir/cells/<id>/summary.json",
      "anchor_every": 2,                     # optional
      "fork": {"store": "...", "day": 2}     # optional
    }

Resume-or-fresh follows the chaos harness: a store that already holds
day records is resumed (that is how a cell killed mid-campaign — or
orphaned by a SIGKILLed fleet — finishes from its checkpoints), an
empty or absent one starts the campaign from day 0.

Two env vars inject deterministic failures for tests and CI, in the
``REPRO_PARALLEL_HANG`` style::

    REPRO_FLEET_CRASH=<cell_id>:<day>[:<max_attempt>]
        SIGKILL self at day's monitor stage while the spawn attempt
        is <= max_attempt (default: every attempt, which exhausts the
        cell's restart budget).
    REPRO_FLEET_HANG=<cell_id>:<day>:<seconds>[:ignoreterm]
        Sleep at day's monitor stage past the fleet's cell deadline;
        with ``ignoreterm`` SIGTERM is ignored so the supervisor must
        escalate to SIGKILL.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from repro.checkpoint import MANIFEST_NAME, RunStore
from repro.core.study import Study
from repro.errors import CheckpointError
from repro.fleet.summary import cell_summary, summary_bytes
from repro.io.atomic import atomic_write_bytes

CRASH_ENV = "REPRO_FLEET_CRASH"
HANG_ENV = "REPRO_FLEET_HANG"


def _injected_hook(cell_id: str, attempt: int) -> Optional[Callable]:
    """The failure-injection stage hook, or None when not targeted."""
    crash = os.environ.get(CRASH_ENV, "")
    hang = os.environ.get(HANG_ENV, "")
    crash_day = hang_day = None
    hang_secs = 0.0
    ignore_term = False
    if crash:
        parts = crash.split(":")
        if parts[0] == cell_id:
            max_attempt = int(parts[2]) if len(parts) > 2 else sys.maxsize
            if attempt <= max_attempt:
                crash_day = int(parts[1])
    if hang:
        parts = hang.split(":")
        if parts[0] == cell_id:
            hang_day = int(parts[1])
            hang_secs = float(parts[2])
            ignore_term = "ignoreterm" in parts[3:]
    if crash_day is None and hang_day is None:
        return None

    def hook(day: int, stage: str) -> None:
        if stage != "monitor":
            return
        if day == crash_day:
            os.kill(os.getpid(), signal.SIGKILL)
        if day == hang_day:
            if ignore_term:
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(hang_secs)

    return hook


def _build_study(spec: dict) -> tuple:
    """(study, run_kwargs) positioned per the spec: resumed > forked > fresh."""
    store = Path(spec["store"])
    if (store / MANIFEST_NAME).exists():
        try:
            has_days = bool(RunStore.open(store).days())
        except CheckpointError:
            has_days = False
        if has_days:
            return Study.resume(store), {}
    fork = spec.get("fork")
    if fork:
        config = spec["config"]
        study = Study.fork(
            fork["store"],
            fork["day"],
            seed=config["seed"],
            fault_plan=config["faults"],
            scenario=config["scenario"],
            fork_dir=store,
        )
        return study, {}
    from repro.core.study import StudyConfig

    study = Study(StudyConfig(**spec["config"]))
    return study, {
        "checkpoint_dir": store,
        "anchor_every": spec.get("anchor_every"),
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.fleet._child <spec.json>",
            file=sys.stderr,
        )
        return 2
    spec = json.loads(Path(argv[0]).read_text())
    study, run_kwargs = _build_study(spec)
    hook = _injected_hook(spec["cell"], spec.get("attempt", 1))
    if hook is not None:
        study.stage_hook = hook
    dataset = study.run(**run_kwargs)
    summary = cell_summary(dataset, spec["cell"], spec["digest"])
    atomic_write_bytes(Path(spec["summary"]), summary_bytes(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
