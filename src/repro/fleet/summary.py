"""Per-cell metric summaries: what the merged fleet report aggregates.

A cell summary is the small, deterministic JSON the cell subprocess
leaves behind on success — the per-platform aggregates behind Table 2
(URLs, tweets, authors, joined groups, messages, users) and Fig 6
(revocation fractions).  The fleet report computes its sensitivity
bands from these summaries alone, so a resumed sweep never has to
reload a completed cell's full dataset.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.revocation import revocation

__all__ = ["PLATFORMS", "SUMMARY_METRICS", "cell_summary", "summary_bytes"]

PLATFORMS = ("whatsapp", "telegram", "discord")

#: Metric key -> human label, in report row order.
SUMMARY_METRICS = {
    "urls": "unique URLs",
    "tweets": "tweets",
    "authors": "authors",
    "joined": "joined groups",
    "messages": "messages",
    "users": "users seen",
    "revoked_frac": "revoked frac",
    "dead_on_arrival_frac": "dead-at-first-obs frac",
}


def cell_summary(dataset, cell_id: str, digest: str) -> Dict[str, Any]:
    """The cell's aggregate metrics as a JSON-ready dict."""
    platforms: Dict[str, Dict[str, float]] = {}
    for platform in PLATFORMS:
        tweets = dataset.tweets_for(platform)
        joined = dataset.joined_for(platform)
        rev = revocation(dataset, platform)
        platforms[platform] = {
            "urls": len(dataset.records_for(platform)),
            "tweets": len(tweets),
            "authors": len({t.author_id for t in tweets}),
            "joined": len(joined),
            "messages": sum(g.n_messages for g in joined),
            "users": len(dataset.users_for(platform)),
            "revoked_frac": round(rev.revoked_frac, 6),
            "dead_on_arrival_frac": round(rev.before_first_obs_frac, 6),
        }
    return {
        "cell": cell_id,
        "digest": digest,
        "n_days": dataset.n_days,
        "scenario": dataset.scenario,
        "platforms": platforms,
    }


def summary_bytes(summary: Dict[str, Any]) -> bytes:
    """The summary's canonical on-disk encoding."""
    return (
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
