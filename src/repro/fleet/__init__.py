"""Fault-tolerant campaign fleet: supervised sharded sweeps.

``repro fleet`` runs a declarative sweep matrix — seed lists × fault
profiles × scenario packs (:mod:`repro.fleet.matrix`) — as subprocess
campaigns under a bounded, self-healing worker pool
(:mod:`repro.fleet.runner`), recording every cell in a restartable
content-addressed ledger (:mod:`repro.fleet.ledger`).  The merged
cross-campaign report lives in :mod:`repro.reporting.fleet`.
"""

from repro.fleet.ledger import (
    FLEET_FORMAT_VERSION,
    FLEET_MANIFEST_NAME,
    FleetLedger,
)
from repro.fleet.matrix import SweepCell, SweepMatrix
from repro.fleet.runner import (
    DEFAULT_CELL_DEADLINE_S,
    DEFAULT_CELL_RESTARTS,
    CellOutcome,
    FleetPolicy,
    FleetResult,
    FleetRunner,
)
from repro.fleet.summary import PLATFORMS, SUMMARY_METRICS, cell_summary

__all__ = [
    "DEFAULT_CELL_DEADLINE_S",
    "DEFAULT_CELL_RESTARTS",
    "FLEET_FORMAT_VERSION",
    "FLEET_MANIFEST_NAME",
    "PLATFORMS",
    "SUMMARY_METRICS",
    "CellOutcome",
    "FleetLedger",
    "FleetPolicy",
    "FleetResult",
    "FleetRunner",
    "SweepCell",
    "SweepMatrix",
    "cell_summary",
]
