"""The sweep ledger: what makes a fleet sweep restartable.

Layout under the fleet workdir::

    fleet.json                  sweep manifest: format, matrix, digest
    cells/<cell_id>/
        status.json             running | completed | failed record
        spec.json               the cell subprocess's input
        store/                  the cell campaign's run store
        summary.json            the cell's metric summary (on success)
        log.txt                 the cell subprocess's stdout+stderr

Every record is written through :mod:`repro.io.atomic`, so a reader —
including a resumed fleet after the supervisor was SIGKILLed — sees
either the old complete record or the new complete one, never a torn
file.  Records are pure functions of the matrix and the cell outcome
(no wall-clock timestamps, no attempt counters), which is what lets
the determinism tests demand a byte-identical ledger across reruns
and across kill-and-resume.

A ``completed`` record is trusted on resume only when three things
still hold: its digest matches the cell the matrix would run today,
the summary file exists, and the summary's bytes hash to the recorded
``summary_digest`` — content addressing, the same discipline the run
store uses for day records.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError
from repro.fleet.matrix import SweepMatrix
from repro.io.atomic import atomic_write_text
from repro.telemetry import Telemetry

__all__ = [
    "FLEET_FORMAT_VERSION",
    "FLEET_MANIFEST_NAME",
    "FleetLedger",
]

logger = logging.getLogger(__name__)

FLEET_MANIFEST_NAME = "fleet.json"
FLEET_FORMAT_VERSION = 1
_CELLS_DIR = "cells"
_STATUS_NAME = "status.json"


def _dump(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class FleetLedger:
    """Manifest + per-cell status records for one sweep workdir."""

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        matrix: SweepMatrix,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.matrix = matrix
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    # -- creation / opening ------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, os.PathLike],
        matrix: SweepMatrix,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> "FleetLedger":
        """Create (or re-adopt) the ledger for ``matrix``.

        An existing manifest for the *same* matrix is kept — rerunning
        a sweep into its own workdir is always safe because every
        record rewrite is deterministic.  A manifest for a different
        matrix is refused: two sweeps must not interleave records in
        one workdir.
        """
        directory = Path(directory)
        ledger = cls(directory, matrix, telemetry=telemetry)
        manifest_path = directory / FLEET_MANIFEST_NAME
        if manifest_path.exists():
            existing = cls.open(directory, telemetry=telemetry)
            if existing.matrix.digest != matrix.digest:
                raise CheckpointError(
                    f"fleet workdir {directory} already holds a different "
                    f"sweep (digest {existing.matrix.digest[:12]} != "
                    f"{matrix.digest[:12]}); use a fresh --workdir"
                )
            return ledger
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": FLEET_FORMAT_VERSION,
            "matrix": matrix.to_dict(),
            "matrix_digest": matrix.digest,
        }
        atomic_write_text(manifest_path, _dump(manifest))
        ledger.telemetry.count("fleet_ledger_writes_total")
        return ledger

    @classmethod
    def open(
        cls,
        directory: Union[str, os.PathLike],
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> "FleetLedger":
        """Open an existing ledger; unusable manifests raise."""
        directory = Path(directory)
        manifest_path = directory / FLEET_MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"no fleet ledger at {directory}: {exc}"
            )
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"fleet manifest {manifest_path} is corrupt: {exc}"
            )
        version = manifest.get("format_version")
        if version != FLEET_FORMAT_VERSION:
            raise CheckpointError(
                f"fleet manifest {manifest_path} has format version "
                f"{version!r}; this build reads {FLEET_FORMAT_VERSION}"
            )
        matrix = SweepMatrix.from_dict(manifest["matrix"])
        if matrix.digest != manifest.get("matrix_digest"):
            raise CheckpointError(
                f"fleet manifest {manifest_path} digest mismatch: the "
                "recorded matrix and its recorded digest disagree"
            )
        return cls(directory, matrix, telemetry=telemetry)

    # -- paths -------------------------------------------------------------

    def cell_dir(self, cell_id: str) -> Path:
        return self.directory / _CELLS_DIR / cell_id

    def store_dir(self, cell_id: str) -> Path:
        return self.cell_dir(cell_id) / "store"

    def spec_path(self, cell_id: str) -> Path:
        return self.cell_dir(cell_id) / "spec.json"

    def summary_path(self, cell_id: str) -> Path:
        return self.cell_dir(cell_id) / "summary.json"

    def log_path(self, cell_id: str) -> Path:
        return self.cell_dir(cell_id) / "log.txt"

    def status_path(self, cell_id: str) -> Path:
        return self.cell_dir(cell_id) / _STATUS_NAME

    # -- records -----------------------------------------------------------

    def write_status(self, record: Dict[str, Any]) -> None:
        cell_id = record["cell"]
        self.cell_dir(cell_id).mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.status_path(cell_id), _dump(record))
        self.telemetry.count("fleet_ledger_writes_total")

    def read_status(self, cell_id: str) -> Optional[Dict[str, Any]]:
        """The cell's record, or None when absent/unreadable.

        Atomic writes make a torn record impossible, but a ledger that
        survived operator surgery should degrade to "re-run the cell",
        never crash the sweep.
        """
        try:
            record = json.loads(self.status_path(cell_id).read_text())
        except OSError:
            return None
        except json.JSONDecodeError:
            logger.warning(
                "unreadable status record for cell %s; re-running it",
                cell_id,
            )
            return None
        return record if isinstance(record, dict) else None

    def record_running(self, cell) -> None:
        self.write_status({
            "cell": cell.cell_id,
            "digest": cell.digest,
            "status": "running",
        })

    def record_completed(self, cell, summary_digest: str, days: int) -> None:
        self.write_status({
            "cell": cell.cell_id,
            "digest": cell.digest,
            "status": "completed",
            "days": days,
            "summary_digest": summary_digest,
        })

    def record_failed(self, cell, reason: str) -> None:
        self.write_status({
            "cell": cell.cell_id,
            "digest": cell.digest,
            "status": "failed",
            "reason": reason,
        })

    # -- resume ------------------------------------------------------------

    def completed_summary(self, cell) -> Optional[Dict[str, Any]]:
        """The cell's verified summary iff its completed record holds.

        Returns None — meaning "re-run the cell" — unless the record
        says completed, the digest matches this matrix's cell, and the
        summary bytes still hash to the recorded ``summary_digest``.
        """
        record = self.read_status(cell.cell_id)
        if not record or record.get("status") != "completed":
            return None
        if record.get("digest") != cell.digest:
            logger.warning(
                "cell %s record is from a different sweep cell; "
                "re-running it", cell.cell_id,
            )
            return None
        try:
            payload = self.summary_path(cell.cell_id).read_bytes()
        except OSError:
            return None
        if hashlib.sha256(payload).hexdigest() != record.get(
            "summary_digest"
        ):
            logger.warning(
                "cell %s summary does not match its recorded digest; "
                "re-running it", cell.cell_id,
            )
            return None
        try:
            summary = json.loads(payload)
        except json.JSONDecodeError:
            return None
        return summary if isinstance(summary, dict) else None
