"""Campaign state capture and restore.

An *anchor* day record is the complete state of a campaign as of one
day boundary, captured as a pickle of the
:class:`~repro.core.study.Study` object graph.  Because every
stateful component hangs off the study — the world's RNG streams,
per-day share schedules and tweet sequence, the discovery records and
dedup/provenance sets, the monitor's snapshots and death bookkeeping,
the joiner's memberships, the fault injector's per-endpoint call
counters, and the resilience layer's breakers and
:class:`~repro.resilience.health.CollectionHealth` ledger — one
object graph is the whole campaign, shared references included (the
health ledger referenced by four components pickles once and restores
as one object).

Serialising that graph costs time proportional to the *accumulated*
state, so anchoring every single day would price checkpointing out of
exactly the long campaigns it exists for.  The campaign is fully
deterministic, which buys the classic snapshot-plus-replay bargain:
most day records are tiny *replay markers* naming the preceding
anchor, and restoring one re-executes the handful of days between the
anchor and the marker — landing on the identical state the campaign
had, RNG positions included.  The anchor cadence is a pure
cost/restore-latency trade; it never affects campaign output.

The payload carries its own state version alongside the store's
manifest version: the manifest version covers the directory layout,
the state version covers what is inside a day record.
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict

from repro.errors import CheckpointError

__all__ = [
    "SLICE_VERSION",
    "STATE_VERSION",
    "capture_campaign",
    "decode_day_record",
    "decode_day_slice",
    "decode_rollup",
    "encode_day_slice",
    "encode_rollup",
    "replay_marker",
    "restore_campaign",
]

#: Bumped on any incompatible change to the day-record payload.
#: v2: the study graph carries the telemetry handle (metrics registry,
#: span tracer, process-life counter) on every component.
STATE_VERSION = 2

#: Fixed pickle protocol: supported by every python we target
#: (3.9+) so a checkpoint written on 3.12 resumes on 3.10.
_PICKLE_PROTOCOL = 4


def capture_campaign(study: Any) -> bytes:
    """Serialise ``study`` (positioned at a day boundary) to bytes."""
    envelope = {
        "state_version": STATE_VERSION,
        "kind": "anchor",
        "study": study,
    }
    return pickle.dumps(envelope, protocol=_PICKLE_PROTOCOL)


def replay_marker(anchor_day: int) -> bytes:
    """A day record that defers to the anchor at ``anchor_day``.

    Restoring it loads that anchor and deterministically replays the
    days in between — same state, a few bytes instead of megabytes.
    """
    envelope = {
        "state_version": STATE_VERSION,
        "kind": "replay",
        "anchor_day": anchor_day,
    }
    return pickle.dumps(envelope, protocol=_PICKLE_PROTOCOL)


def decode_day_record(payload: bytes) -> Dict[str, Any]:
    """Decode and validate a day-record envelope (anchor or marker)."""
    try:
        envelope = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of error types
        raise CheckpointError(
            f"undecodable checkpoint day record: {exc}"
        ) from exc
    if not isinstance(envelope, dict) or "state_version" not in envelope:
        raise CheckpointError(
            "checkpoint day record does not contain a campaign state "
            "envelope"
        )
    version = envelope["state_version"]
    if version != STATE_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint state version {version!r} "
            f"(expected {STATE_VERSION})"
        )
    kind = envelope.get("kind", "anchor" if "study" in envelope else None)
    if kind == "anchor" and "study" in envelope:
        return {"kind": "anchor", "study": envelope["study"]}
    if kind == "replay" and isinstance(envelope.get("anchor_day"), int):
        return {"kind": "replay", "anchor_day": envelope["anchor_day"]}
    raise CheckpointError(
        "checkpoint day record does not contain a campaign state "
        "envelope"
    )


#: Bumped on any incompatible change to the analysis-slice payload
#: (independent of :data:`STATE_VERSION`: slices are JSON, readable
#: without unpickling a study graph).
SLICE_VERSION = 1


def _encode_json_record(kind: str, body: Dict[str, Any]) -> bytes:
    envelope = dict(body)
    envelope["slice_version"] = SLICE_VERSION
    envelope["kind"] = kind
    # Canonical encoding: a deterministic replay re-serialises to the
    # identical bytes, so the content-addressed rewrite is a no-op.
    payload = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return payload.encode("utf-8")


def _decode_json_record(payload: bytes, kind: str) -> Dict[str, Any]:
    try:
        envelope = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"undecodable checkpoint {kind} record: {exc}"
        ) from exc
    if not isinstance(envelope, dict) or "slice_version" not in envelope:
        raise CheckpointError(
            f"checkpoint {kind} record does not contain a slice envelope"
        )
    version = envelope["slice_version"]
    if version != SLICE_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint slice version {version!r} "
            f"(expected {SLICE_VERSION})"
        )
    if envelope.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint record is a {envelope.get('kind')!r} record, "
            f"not a {kind}"
        )
    return envelope


def encode_day_slice(body: Dict[str, Any]) -> bytes:
    """Serialise one day's analysis slice to canonical JSON bytes."""
    return _encode_json_record("slice", body)


def decode_day_slice(payload: bytes) -> Dict[str, Any]:
    """Decode and validate an analysis-slice record."""
    return _decode_json_record(payload, "slice")


def encode_rollup(body: Dict[str, Any]) -> bytes:
    """Serialise the end-of-campaign rollup to canonical JSON bytes."""
    return _encode_json_record("rollup", body)


def decode_rollup(payload: bytes) -> Dict[str, Any]:
    """Decode and validate an end-of-campaign rollup record."""
    return _decode_json_record(payload, "rollup")


def restore_campaign(payload: bytes) -> Any:
    """Rebuild the study captured by :func:`capture_campaign`.

    Only accepts anchor records; a replay marker holds no state of its
    own (resolve it through the store with
    :meth:`repro.core.study.Study.resume`, which replays from the
    marker's anchor).
    """
    record = decode_day_record(payload)
    if record["kind"] != "anchor":
        raise CheckpointError(
            "checkpoint day record is a replay marker, not a state "
            f"snapshot (it defers to anchor day {record['anchor_day']})"
        )
    return record["study"]
