"""Campaign run store: day-granular checkpoint, resume, and fork.

The paper's campaign ran 38 consecutive days; a real collector that
dies on day 37 must not lose 37 days of work.  This package gives the
reproduction the same property — and, because the simulator is
deterministic, the stronger one: a campaign resumed from any day
boundary exports a dataset *byte-identical* to the uninterrupted run.

Layout of a run store (one directory per campaign)::

    <dir>/manifest.json          format version, root seed, config
                                 digest, anchor cadence, per-day
                                 record digests
    <dir>/objects/<digest>.bin.gz
                                 content-addressed, gzip-compressed
                                 day records

Every day boundary gets a record, but not every record is a full
snapshot: *anchor* records hold the complete campaign state; the days
in between hold tiny *replay markers* naming their anchor, and
restoring one deterministically replays the gap (see
:mod:`repro.checkpoint.state` for why this is exact).  The cadence —
one anchor every :data:`~repro.checkpoint.store.DEFAULT_ANCHOR_EVERY`
days by default — trades checkpoint overhead against worst-case
restore latency and never affects campaign output.

:class:`RunStore` manages the directory; :mod:`repro.checkpoint.state`
captures and restores the campaign state itself.  The user-facing
entry points live on :class:`~repro.core.study.Study`:
``run(checkpoint_dir=...)``, ``Study.resume(...)`` and
``Study.fork(...)``.
"""

from repro.checkpoint.state import (
    SLICE_VERSION,
    STATE_VERSION,
    capture_campaign,
    decode_day_record,
    decode_day_slice,
    decode_rollup,
    encode_day_slice,
    encode_rollup,
    replay_marker,
    restore_campaign,
)
from repro.checkpoint.store import (
    CHECKPOINT_FORMAT_VERSION,
    DEFAULT_ANCHOR_EVERY,
    MANIFEST_BACKUP_NAME,
    MANIFEST_CHECKSUM_NAME,
    MANIFEST_NAME,
    OBJECTS_DIR,
    RunStore,
    config_digest,
    config_summary,
)
from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "DEFAULT_ANCHOR_EVERY",
    "MANIFEST_BACKUP_NAME",
    "MANIFEST_CHECKSUM_NAME",
    "MANIFEST_NAME",
    "OBJECTS_DIR",
    "RunStore",
    "SLICE_VERSION",
    "STATE_VERSION",
    "capture_campaign",
    "config_digest",
    "config_summary",
    "decode_day_record",
    "decode_day_slice",
    "decode_rollup",
    "encode_day_slice",
    "encode_rollup",
    "replay_marker",
    "restore_campaign",
]
