"""The on-disk run store: manifest + content-addressed day records.

A run store is a directory holding one campaign's checkpoints.  The
manifest (``manifest.json``) carries the store format version, the
campaign's root seed, a digest of the full study configuration, and
one entry per checkpointed day pointing at a content-addressed object
file.  Day records themselves are opaque byte payloads (see
:mod:`repro.checkpoint.state`), gzip-compressed on disk and verified
against their SHA-256 digest on every read — a truncated or flipped
record is reported as a :class:`~repro.errors.CheckpointError` naming
the offending path, never as a deep traceback.

Writes are crash-safe: objects and the manifest are written through
:mod:`repro.io.atomic` (same-directory temp file, fsync, atomic
rename), so a campaign killed mid-write leaves the store pointing only
at complete records.  Alongside the manifest the store keeps a
checksum sidecar (``manifest.json.sha256``, so any single flipped
manifest byte is detectable by ``repro fsck``) and a one-generation
backup (``manifest.json.bak``, the repair source for a torn
manifest).
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import io
import json
import os
import threading
import time
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import CheckpointError
from repro.io.atomic import atomic_write_bytes

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "DEFAULT_ANCHOR_EVERY",
    "MANIFEST_BACKUP_NAME",
    "MANIFEST_CHECKSUM_NAME",
    "MANIFEST_NAME",
    "OBJECTS_DIR",
    "RunStore",
    "config_digest",
    "config_summary",
    "summary_digest",
    "write_manifest_files",
]

#: Bumped on any incompatible change to the run-store layout.
CHECKPOINT_FORMAT_VERSION = 1

#: Default anchor cadence: one full state snapshot every N days, with
#: replay markers in between.  Restoring a marker replays at most
#: ``N - 1`` days; anchoring costs time proportional to accumulated
#: state, so this is a pure cost/restore-latency dial (it never
#: affects campaign output).
DEFAULT_ANCHOR_EVERY = 5

MANIFEST_NAME = "manifest.json"
#: Checksum sidecar: SHA-256 (hex) of the manifest's exact bytes.
MANIFEST_CHECKSUM_NAME = "manifest.json.sha256"
#: Previous manifest generation, kept as the torn-manifest repair source.
MANIFEST_BACKUP_NAME = "manifest.json.bak"
OBJECTS_DIR = "objects"
_OBJECTS_DIR = OBJECTS_DIR


def config_summary(config: Any) -> Dict[str, Any]:
    """A JSON-serialisable summary of a study configuration.

    ``config`` is any dataclass (in practice
    :class:`~repro.core.study.StudyConfig`); nested dataclasses —
    the fault plan and its specs — serialise recursively.  The
    summary is stored in the manifest both for humans and as the
    input to :func:`config_digest`.
    """
    summary = dataclasses.asdict(config)
    faults = config.faults
    if faults is not None:
        # Mapping-valued dataclass fields don't recurse through
        # asdict uniformly across versions; use the plan's own
        # canonical (sorted) encoding.
        summary["faults"] = faults.to_dict()
    scenario = getattr(config, "scenario", None)
    if scenario is not None:
        # Same canonical-encoding rationale as the fault plan.
        summary["scenario"] = scenario.to_dict()
    return summary


def summary_digest(summary: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a config summary.

    Shared with :mod:`repro.integrity`, which recomputes the digest
    from the manifest's own ``config`` block to catch a manifest whose
    recorded digest and recorded configuration disagree.
    """
    payload = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``config``.

    Two configs digest equal iff every campaign-defining value —
    seed, window, scales, join targets, fault plan — is equal, so a
    resume against the wrong store fails loudly instead of silently
    splicing two different campaigns.
    """
    return summary_digest(config_summary(config))


def _scenario_block(config: Any) -> Dict[str, Any]:
    """The manifest's informational scenario block: name + persona mix.

    The full pack definition already rides in the ``config`` summary
    (and the digest); this block is the human-readable header —
    which weather the store holds and which personas populate it.
    ``getattr`` tolerates configs predating the scenario field.
    """
    scenario = getattr(config, "scenario", None)
    if scenario is None:
        return {"name": "paper-weather", "personas": {"baseline": 1.0}}
    return {"name": scenario.name, "personas": scenario.persona_mix()}


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def compress_record(payload: bytes) -> bytes:
    """Gzip a day-record payload exactly as the store writes it.

    mtime=0 keeps identical payloads bitwise-identical on disk, so an
    object file is a pure function of its content — which is also what
    lets :mod:`repro.integrity` rebuild a damaged object byte-for-byte.
    Level 1: anchors are written on the campaign's critical path, and
    the extra ~10% size at higher levels is not worth doubling the
    compression time there.
    """
    buffer = io.BytesIO()
    with gzip.GzipFile(
        fileobj=buffer, mode="wb", mtime=0, compresslevel=1
    ) as handle:
        handle.write(payload)
    return buffer.getvalue()


class RunStore:
    """One campaign's checkpoint directory.

    Use :meth:`create` to start (or deterministically restart) a
    store for a campaign and :meth:`open` to attach to an existing
    one; never construct directly.
    """

    def __init__(self, directory: Path, manifest: Dict[str, Any]) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        #: Telemetry handle attached by the study that owns this store
        #: (never serialised — the store handle itself is transient).
        self.telemetry = None
        #: Bounded decompress cache (digest -> payload), off by default.
        #: Enabled by the serve daemon, whose query endpoints read the
        #: same day record over and over; see :meth:`enable_read_cache`.
        self._read_cache: Optional[OrderedDict] = None
        self._read_cache_entries = 0
        self._read_cache_lock = threading.Lock()

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, os.PathLike],
        config: Any,
        forked_from: Optional[Dict[str, Any]] = None,
        anchor_every: int = DEFAULT_ANCHOR_EVERY,
        slices: bool = False,
    ) -> "RunStore":
        """Create a run store for ``config`` under ``directory``.

        If the directory already holds a manifest for the *same*
        configuration, the store is reset and the campaign restarts
        from day 0 (a deterministic rerun rewrites identical
        records); a manifest for a different configuration raises
        :class:`CheckpointError` — resume it, or pick another
        directory.

        ``slices=True`` additionally records per-day analysis slices
        (see :mod:`repro.analysis.streaming`): the manifest grows a
        ``slices`` table, and its presence is what re-enables slice
        capture on resume — the knob is an execution choice, never
        part of the config digest.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        digest = config_digest(config)
        if anchor_every < 1:
            raise CheckpointError(
                f"anchor cadence must be >= 1 day, got {anchor_every}"
            )
        if manifest_path.exists():
            existing = cls.open(directory)
            if existing.manifest.get("config_digest") != digest:
                raise CheckpointError(
                    f"checkpoint directory {directory} already holds a "
                    "campaign with a different configuration; resume it "
                    "or choose a fresh directory"
                )
        (directory / _OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "root_seed": config.seed,
            "config_digest": digest,
            "config": config_summary(config),
            "fault_profile": (
                config.faults.name if config.faults is not None else None
            ),
            "scenario": _scenario_block(config),
            "anchor_every": anchor_every,
            "days": {},
        }
        if slices:
            manifest["slices"] = {}
        if forked_from is not None:
            manifest["forked_from"] = forked_from
        store = cls(directory, manifest)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, directory: Union[str, os.PathLike]) -> "RunStore":
        """Attach to the run store under ``directory``."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(
                f"no checkpoint manifest at {manifest_path}"
            )
        try:
            with open(manifest_path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError, EOFError, OSError) as exc:
            # ValueError covers json.JSONDecodeError; a torn, truncated
            # or unreadable manifest must surface as a CheckpointError
            # naming the path, never as a bare decoder exception.
            raise CheckpointError(
                f"corrupt checkpoint manifest {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CheckpointError(
                f"corrupt checkpoint manifest {manifest_path}: expected "
                f"a JSON object, found {type(manifest).__name__}"
            )
        version = manifest.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version {version!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION}) in {manifest_path}"
            )
        return cls(directory, manifest)

    # -- day records ------------------------------------------------------

    @property
    def anchor_every(self) -> int:
        """The store's anchor cadence (see :data:`DEFAULT_ANCHOR_EVERY`)."""
        return int(self.manifest.get("anchor_every", 1))

    def _day_table(self) -> Dict[str, Any]:
        """The manifest's day table, or ``{}`` when absent/malformed.

        Concurrent readers (the serve daemon's HTTP threads) call the
        day accessors against stores in every state, including a
        manifest a repair pass is mid-way through rebuilding; a
        missing or non-dict ``days`` block must read as "no days",
        never surface as a ``KeyError``.
        """
        days = self.manifest.get("days")
        return days if isinstance(days, dict) else {}

    def days(self) -> List[int]:
        """Checkpointed day indices, ascending."""
        try:
            return sorted(int(day) for day in self._day_table())
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint manifest in {self.directory}: "
                f"non-numeric day key ({exc})"
            ) from exc

    def has_day(self, day: int) -> bool:
        """Whether day ``day`` has a checkpoint record.

        Always answers True/False: a missing day, a missing day
        table, or a malformed manifest block all read as False — this
        is the concurrent readers' existence probe and must never
        leak a ``KeyError``.
        """
        return str(day) in self._day_table()

    def latest_day(self) -> int:
        """The most recent checkpointed day."""
        days = self.days()
        if not days:
            raise CheckpointError(
                f"checkpoint store {self.directory} holds no day records"
            )
        return days[-1]

    def _object_path(self, digest: str) -> Path:
        return self.directory / _OBJECTS_DIR / f"{digest}.bin.gz"

    def write_day(self, day: int, payload: bytes, kind: str = "anchor") -> str:
        """Store ``payload`` as day ``day``'s record; returns its digest.

        ``kind`` ("anchor" or "replay") is recorded in the manifest
        entry for inspection; the payload itself stays the source of
        truth on read.
        """
        start = time.perf_counter()
        digest = _sha256(payload)
        path = self._object_path(digest)
        if not path.exists():
            atomic_write_bytes(path, compress_record(payload))
        self.manifest["days"][str(day)] = {
            "digest": digest,
            "bytes": len(payload),
            "kind": kind,
        }
        self._write_manifest()
        if self.telemetry is not None:
            self.telemetry.count("checkpoint_records_total", kind=kind)
            self.telemetry.count(
                "checkpoint_payload_bytes_total", len(payload), kind=kind
            )
            self.telemetry.observe(
                "checkpoint_write_seconds",
                time.perf_counter() - start,
                kind=kind,
            )
        return digest

    def day_entry(self, day: int) -> Dict[str, Any]:
        """The manifest entry for day ``day`` (digest, bytes, kind).

        Raises :class:`CheckpointError` — never ``KeyError`` — for a
        day that is not (or not yet) checkpointed, or whose manifest
        entry is malformed.
        """
        entry = self._day_table().get(str(day))
        if entry is None:
            days = self.days()
            have = (
                f"days {days[0]}..{days[-1]}" if days else "no days"
            )
            raise CheckpointError(
                f"day {day} is not checkpointed in {self.directory} "
                f"(store holds {have})"
            )
        if not isinstance(entry, dict) or not entry.get("digest"):
            raise CheckpointError(
                f"corrupt checkpoint manifest in {self.directory}: "
                f"day {day} entry carries no object digest"
            )
        return entry

    def read_day(self, day: int) -> bytes:
        """Load and verify day ``day``'s record payload."""
        entry = self.day_entry(day)
        return self.read_object(
            entry["digest"], kind=str(entry.get("kind", "anchor"))
        )

    def read_object(self, digest: str, kind: str = "anchor") -> bytes:
        """Load and verify the object holding ``digest``'s payload.

        The content-addressed read path under :meth:`read_day`,
        callable directly by readers that already resolved a digest
        (the serve daemon's published-day view reads objects by
        digest so it never touches the manifest a concurrent writer
        is updating).  With the read cache enabled, a repeat read of
        the same digest returns the cached payload without touching
        the filesystem or gunzipping.
        """
        start = time.perf_counter()
        cached = self._read_cache_get(digest)
        if cached is not None:
            if self.telemetry is not None:
                self.telemetry.count(
                    "checkpoint_read_cache_hits_total", kind=kind
                )
            return cached
        path = self._object_path(digest)
        try:
            with gzip.open(path, "rb") as handle:
                payload = handle.read()
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"missing checkpoint day record {path}"
            ) from exc
        except (OSError, EOFError, zlib.error) as exc:
            # gzip.BadGzipFile is an OSError; EOFError is a truncated
            # stream; zlib.error is a flipped byte inside the deflate
            # data.  Either way: the record, not the caller, is bad.
            raise CheckpointError(
                f"corrupt checkpoint day record {path}: {exc}"
            ) from exc
        if _sha256(payload) != digest:
            raise CheckpointError(
                f"checkpoint day record {path} fails its digest check"
            )
        self._read_cache_put(digest, payload)
        if self.telemetry is not None:
            self.telemetry.count("checkpoint_reads_total", kind=kind)
            if self._read_cache is not None:
                self.telemetry.count(
                    "checkpoint_read_cache_misses_total", kind=kind
                )
            self.telemetry.observe(
                "checkpoint_read_seconds",
                time.perf_counter() - start,
                kind=kind,
            )
        return payload

    # -- analysis slices --------------------------------------------------

    @property
    def slices_enabled(self) -> bool:
        """Whether this store records per-day analysis slices.

        The knob is the manifest's ``slices`` table itself: created
        with the store, its presence re-enables slice capture on
        resume without touching the config digest.
        """
        return isinstance(self.manifest.get("slices"), dict)

    def _slice_table(self) -> Dict[str, Any]:
        """The manifest's slice table, or ``{}`` when absent/malformed.

        Same tolerance contract as :meth:`_day_table`: concurrent
        readers probe stores in every state and must never surface a
        ``KeyError``.
        """
        slices = self.manifest.get("slices")
        return slices if isinstance(slices, dict) else {}

    def slice_days(self) -> List[int]:
        """Days with a recorded analysis slice, ascending."""
        try:
            return sorted(int(day) for day in self._slice_table())
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint manifest in {self.directory}: "
                f"non-numeric slice day key ({exc})"
            ) from exc

    def has_slice(self, day: int) -> bool:
        """Whether day ``day`` has an analysis slice (never raises)."""
        return str(day) in self._slice_table()

    def write_slice(self, day: int, payload: bytes) -> str:
        """Store ``payload`` as day ``day``'s analysis slice.

        Content-addressed like day records, so the deterministic
        rewrite after a kill-and-resume lands on the identical object
        and the manifest entry is a no-op update.  Unlike day records,
        the object file is rewritten even when present: slices are
        tiny, and the unconditional write lets a resume heal a slice
        object corrupted in place, not just one lost outright.
        """
        if not self.slices_enabled:
            raise CheckpointError(
                f"checkpoint store {self.directory} was created without "
                "analysis slices; recreate it with slices enabled"
            )
        digest = _sha256(payload)
        path = self._object_path(digest)
        atomic_write_bytes(path, compress_record(payload))
        self.manifest["slices"][str(day)] = {
            "digest": digest,
            "bytes": len(payload),
            "kind": "slice",
        }
        self._write_manifest()
        if self.telemetry is not None:
            self.telemetry.count("checkpoint_records_total", kind="slice")
            self.telemetry.count(
                "checkpoint_payload_bytes_total", len(payload), kind="slice"
            )
        return digest

    def slice_entry(self, day: int) -> Dict[str, Any]:
        """The manifest entry for day ``day``'s slice.

        Raises :class:`CheckpointError` — never ``KeyError`` — for a
        missing or malformed entry.
        """
        entry = self._slice_table().get(str(day))
        if entry is None:
            raise CheckpointError(
                f"day {day} has no analysis slice in {self.directory}"
            )
        if not isinstance(entry, dict) or not entry.get("digest"):
            raise CheckpointError(
                f"corrupt checkpoint manifest in {self.directory}: "
                f"slice {day} entry carries no object digest"
            )
        return entry

    def read_slice(self, day: int) -> bytes:
        """Load and verify day ``day``'s analysis-slice payload."""
        entry = self.slice_entry(day)
        return self.read_object(entry["digest"], kind="slice")

    @property
    def has_rollup(self) -> bool:
        """Whether the end-of-campaign rollup has been written."""
        entry = self.manifest.get("rollup")
        return isinstance(entry, dict) and bool(entry.get("digest"))

    def write_rollup(self, payload: bytes) -> str:
        """Store the end-of-campaign rollup record.

        Written once, after the campaign finalises: joined-group and
        user aggregates only materialise at collection close, so they
        ride in one bounded record instead of per-day slices.  Always
        rewrites the object file (heals in-place corruption, matching
        :meth:`write_slice`).
        """
        if not self.slices_enabled:
            raise CheckpointError(
                f"checkpoint store {self.directory} was created without "
                "analysis slices; recreate it with slices enabled"
            )
        digest = _sha256(payload)
        path = self._object_path(digest)
        atomic_write_bytes(path, compress_record(payload))
        self.manifest["rollup"] = {
            "digest": digest,
            "bytes": len(payload),
            "kind": "rollup",
        }
        self._write_manifest()
        if self.telemetry is not None:
            self.telemetry.count("checkpoint_records_total", kind="rollup")
        return digest

    def read_rollup(self) -> bytes:
        """Load and verify the end-of-campaign rollup payload."""
        entry = self.manifest.get("rollup")
        if not isinstance(entry, dict) or not entry.get("digest"):
            raise CheckpointError(
                f"checkpoint store {self.directory} holds no campaign "
                "rollup (the campaign has not finished, or slices were "
                "not enabled)"
            )
        return self.read_object(entry["digest"], kind="rollup")

    # -- decompress cache -------------------------------------------------

    def enable_read_cache(self, max_entries: int = 16) -> None:
        """Cache up to ``max_entries`` decompressed payloads by digest.

        Off by default: batch resume/fork reads each record once, so
        a cache would only hold memory.  The serve daemon enables it
        because its query endpoints decode the same (immutable,
        content-addressed) day records on every request — a repeat
        read skips the gunzip and digest check entirely, and the
        payload is byte-identical by construction since entries are
        only inserted after the digest verification passed.
        """
        if max_entries < 1:
            raise CheckpointError(
                f"read cache needs >= 1 entry, got {max_entries}"
            )
        with self._read_cache_lock:
            self._read_cache = OrderedDict()
            self._read_cache_entries = int(max_entries)

    def disable_read_cache(self) -> None:
        """Drop the decompress cache and return to uncached reads."""
        with self._read_cache_lock:
            self._read_cache = None
            self._read_cache_entries = 0

    def read_cache_stats(self) -> Dict[str, int]:
        """Entry count and capacity of the decompress cache."""
        with self._read_cache_lock:
            if self._read_cache is None:
                return {"enabled": 0, "entries": 0, "max_entries": 0}
            return {
                "enabled": 1,
                "entries": len(self._read_cache),
                "max_entries": self._read_cache_entries,
            }

    def _read_cache_get(self, digest: str) -> Optional[bytes]:
        with self._read_cache_lock:
            if self._read_cache is None:
                return None
            payload = self._read_cache.get(digest)
            if payload is not None:
                self._read_cache.move_to_end(digest)
            return payload

    def _read_cache_put(self, digest: str, payload: bytes) -> None:
        with self._read_cache_lock:
            if self._read_cache is None:
                return
            self._read_cache[digest] = payload
            self._read_cache.move_to_end(digest)
            while len(self._read_cache) > self._read_cache_entries:
                self._read_cache.popitem(last=False)
                if self.telemetry is not None:
                    self.telemetry.count(
                        "checkpoint_read_cache_evictions_total"
                    )

    def record_engine(self, workers: int) -> None:
        """Record the execution-engine configuration in the manifest.

        Informational only: the worker count is a pure execution
        choice, never part of the campaign's config identity — any
        worker count may resume any store — so it lives outside the
        ``config`` block and the digest.  The manifest keeps the most
        recent run's engine block.
        """
        engine = {"workers": int(workers)}
        if self.manifest.get("engine") != engine:
            self.manifest["engine"] = engine
            self._write_manifest()

    # -- config guard -----------------------------------------------------

    def check_config(self, config: Any) -> None:
        """Raise unless ``config`` matches the store's campaign."""
        if config_digest(config) != self.manifest.get("config_digest"):
            raise CheckpointError(
                f"configuration does not match checkpoint store "
                f"{self.directory} (digest mismatch)"
            )

    # -- manifest ---------------------------------------------------------

    def _write_manifest(self) -> None:
        write_manifest_files(self.directory, self.manifest)


def write_manifest_files(
    directory: Path, manifest: Dict[str, Any]
) -> None:
    """Write a store's manifest, backup, and checksum sidecar.

    Shared with :mod:`repro.integrity.repair`, which rewrites the
    manifest after healing a store.  The previous generation is kept
    as ``manifest.json.bak`` (the torn-manifest repair source), and
    the sidecar is written last so it only ever covers a manifest
    that is already durable.  Any single flipped byte of the manifest
    (or of the sidecar itself) then fails the fsck checksum
    comparison.
    """
    payload = json.dumps(manifest, indent=2, sort_keys=True)
    data = payload.encode("utf-8")
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        atomic_write_bytes(
            directory / MANIFEST_BACKUP_NAME, manifest_path.read_bytes()
        )
    atomic_write_bytes(manifest_path, data)
    atomic_write_bytes(
        directory / MANIFEST_CHECKSUM_NAME,
        (_sha256(data) + "\n").encode("ascii"),
    )
