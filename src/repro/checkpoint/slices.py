"""Per-day analysis-slice capture (the producer side of streaming).

A *slice* is the analysis-relevant delta of one campaign day, emitted
by the study right before the day's checkpoint record: the new shares
per URL, aggregate counts over the day's newly collected tweets, the
day's monitor snapshots, the control-tweet delta, and the cumulative
health ledger.  Slices are tiny (aggregates and per-URL scalars, never
tweet or snapshot objects) and JSON-encoded with a canonical byte
encoding, so the deterministic re-emission after a kill-and-resume
rewrites the identical content-addressed object.

The *rollup* is the end-of-campaign companion record: joined-group and
user aggregates only materialise when the joiner collects at campaign
close, and their volume is bounded by the join targets — not the
campaign length — so they ride in one final record instead of per-day
slices.

The fold side — turning a store's slices back into the Section 4-6
analysis results — lives in :mod:`repro.analysis.streaming`; this
module deliberately imports nothing from the analysis layer so the
core study can capture slices without a layering cycle.

Emission bookkeeping lives in :class:`SliceCursor`, which pickles
inside every anchor: a resumed campaign replays the marker gap,
re-emits the gap days' slices (idempotent rewrites), and continues
with exactly the delta a never-killed campaign would have emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Dict, List, Set

from repro.core.patterns import extract_group_urls

__all__ = ["SliceCursor", "capture_day_slice", "build_rollup"]

_PLATFORMS = ("whatsapp", "telegram", "discord")


@dataclass
class SliceCursor:
    """How much of the campaign's state has been emitted into slices.

    Plain counters only, so the cursor pickles inside anchors and a
    resume continues the emission exactly where the anchor left it.

    Attributes:
        share_counts: canonical -> number of that record's shares
            already emitted (share lists are append-only).
        n_tweets: Tweets already emitted, as a prefix length of the
            discovery engine's insertion-ordered tweet dict.
        n_control: Control tweets already emitted (append-only list).
    """

    share_counts: Dict[str, int] = field(default_factory=dict)
    n_tweets: int = 0
    n_control: int = 0


def _tweet_entity_counts(tweets) -> Dict[str, Any]:
    """Fig 3/4 aggregate counters over one batch of tweets."""
    langs: Dict[str, int] = {}
    counts = {
        "n": 0,
        "hashtag1": 0,
        "hashtag2": 0,
        "mention1": 0,
        "mention2": 0,
        "retweets": 0,
    }
    for tweet in tweets:
        counts["n"] += 1
        if len(tweet.hashtags) >= 1:
            counts["hashtag1"] += 1
        if len(tweet.hashtags) >= 2:
            counts["hashtag2"] += 1
        if len(tweet.mentions) >= 1:
            counts["mention1"] += 1
        if len(tweet.mentions) >= 2:
            counts["mention2"] += 1
        if tweet.is_retweet:
            counts["retweets"] += 1
        langs[tweet.lang] = langs.get(tweet.lang, 0) + 1
    counts["langs"] = langs
    return counts


def capture_day_slice(study: Any, day: int) -> Dict[str, Any]:
    """Build day ``day``'s analysis slice and advance the cursor.

    Must be called exactly once per completed day, in day order — the
    cursor advances as a side effect.  The discovery engine appends a
    tweet's shares to every matching record at the single moment the
    tweet is first collected, so the per-day deltas partition the
    campaign's shares exactly (no share is emitted twice, none is
    missed by late ``first_seen_t`` adjustments — those only *lower*
    an already-emitted record's first-seen time, which the fold tracks
    via per-slice share timestamps).
    """
    cursor = getattr(study, "_slice_cursor", None)
    if cursor is None:
        cursor = SliceCursor()
        study._slice_cursor = cursor

    # -- discovery deltas: new shares per record ---------------------------
    discovery: Dict[str, Dict[str, Any]] = {}
    for record in study.engine.records.values():
        emitted = cursor.share_counts.get(record.canonical, 0)
        fresh = record.shares[emitted:]
        if not fresh:
            continue
        cursor.share_counts[record.canonical] = len(record.shares)
        block = discovery.setdefault(
            record.platform,
            {"per_day": {}, "pairs": [], "per_url": {}},
        )
        per_day = block["per_day"]
        days_seen: Set[int] = set()
        min_t = None
        for _tweet_id, t in fresh:
            tday = int(t)
            per_day[str(tday)] = per_day.get(str(tday), 0) + 1
            days_seen.add(tday)
            if min_t is None or t < min_t:
                min_t = t
        block["pairs"].extend(
            [record.canonical, tday] for tday in sorted(days_seen)
        )
        block["per_url"][record.canonical] = [len(fresh), min_t]

    # -- tweet deltas: aggregate counters, never tweet objects -------------
    all_tweets = study.engine.tweets
    fresh_tweets = list(
        islice(all_tweets.values(), cursor.n_tweets, None)
    )
    cursor.n_tweets = len(all_tweets)
    per_platform_tweets: Dict[str, List[Any]] = {}
    per_platform_authors: Dict[str, Set[int]] = {}
    multi_platform = 0
    pair_counts: Dict[str, int] = {}
    for tweet in fresh_tweets:
        platforms = sorted(
            {g.platform for g in extract_group_urls(tweet.urls)}
        )
        for platform in platforms:
            per_platform_tweets.setdefault(platform, []).append(tweet)
            per_platform_authors.setdefault(platform, set()).add(
                tweet.author_id
            )
        if len(platforms) >= 2:
            multi_platform += 1
            for i, a in enumerate(platforms):
                for b in platforms[i + 1:]:
                    key = f"{a}|{b}"
                    pair_counts[key] = pair_counts.get(key, 0) + 1
    tweet_block: Dict[str, Any] = {
        "n_new": len(fresh_tweets),
        "multi_platform": multi_platform,
        "pairs": pair_counts,
        "per_platform": {},
    }
    for platform, tweets in per_platform_tweets.items():
        counts = _tweet_entity_counts(tweets)
        counts["authors"] = sorted(per_platform_authors[platform])
        tweet_block["per_platform"][platform] = counts

    # -- the day's monitor snapshots ---------------------------------------
    snapshots: Dict[str, List[List[Any]]] = {}
    for canonical, snaps in study.monitor.snapshots.items():
        todays = []
        for snap in reversed(snaps):
            if snap.day != day:
                break
            todays.append(snap)
        if not todays:
            continue
        record = study.engine.records.get(canonical)
        platform = record.platform if record is not None else "unknown"
        rows = snapshots.setdefault(platform, [])
        rows.extend(
            [
                snap.canonical,
                bool(snap.alive),
                snap.state,
                snap.size,
                snap.online,
                snap.created_t,
            ]
            for snap in reversed(todays)
        )

    # -- control-tweet delta ----------------------------------------------
    control_tweets = study._dataset.control_tweets if study._dataset else []
    fresh_control = control_tweets[cursor.n_control:]
    cursor.n_control = len(control_tweets)

    return {
        "day": day,
        "discovery": discovery,
        "tweets": tweet_block,
        "snapshots": snapshots,
        "control": _tweet_entity_counts(fresh_control),
        # Cumulative, not a delta: the ledger is already day-sparse and
        # a mid-campaign fold needs the as-of-day view directly.
        "health": study.health.to_dict(),
    }


def build_rollup(dataset: Any, config: Any) -> Dict[str, Any]:
    """Build the end-of-campaign rollup from the finalised dataset.

    Everything here is bounded by the join targets and the platform
    count, independent of campaign length: per-joined-group scalars,
    merged per-user message counts, user totals, the final health
    ledger, and the staleness values that need joined-group creation
    dates.
    """
    joined_block: Dict[str, Any] = {}
    for platform in _PLATFORMS:
        groups = dataset.joined_for(platform)
        type_counts: Dict[str, int] = {}
        rates: List[float] = []
        per_user: Dict[str, int] = {}
        known_posters: Set[str] = set()
        n_members = 0
        members_known = False
        staleness_values: List[float] = []
        n_messages_total = 0
        for data in groups:
            n_messages_total += data.n_messages
            for mtype, count in data.type_counts.items():
                key = mtype.value if hasattr(mtype, "value") else str(mtype)
                type_counts[key] = type_counts.get(key, 0) + count
            days = data.observation_days
            if days <= 0:
                rates.append(0.0)
            else:
                rates.append(
                    data.n_messages / days / dataset.message_scale
                )
            for sender, count in data.sender_counts.items():
                per_user[sender] = per_user.get(sender, 0) + count
            if data.size_at_join is not None:
                known_posters.update(data.sender_counts)
                n_members += data.size_at_join
                members_known = True
            if data.created_t is not None:
                record = dataset.records.get(data.canonical)
                if record is not None:
                    staleness_values.append(
                        max(record.first_seen_t - data.created_t, 0.0)
                    )
        joined_block[platform] = {
            "n_joined": len(groups),
            "n_messages": n_messages_total,
            "type_counts": type_counts,
            "rates": rates,
            "user_counts": list(per_user.values()),
            "n_posters": len(per_user),
            "n_members": n_members if members_known else None,
            "n_known_posters": len(known_posters),
            "staleness": staleness_values,
            "n_users": len(dataset.users_for(platform)),
        }
    return {
        "n_days": dataset.n_days,
        "seed": config.seed,
        "scale": dataset.scale,
        "message_scale": dataset.message_scale,
        "joined": joined_block,
        "n_users_total": len(dataset.users),
        "health": (
            dataset.health.to_dict() if dataset.health is not None else {}
        ),
        "scenario": dataset.scenario,
        "personas": dict(dataset.personas),
    }
