"""Invite-URL patterns and extraction (Section 3.1).

The paper compiled six URL patterns by reviewing each platform's
documentation: ``chat.whatsapp.com/``, ``t.me/``, ``telegram.me/``,
``telegram.org/``, ``discord.gg/``, and ``discord.com/``.  This module
holds those patterns (fed verbatim to the Twitter APIs) and extracts
canonical group identities from matched tweets so that the same group
shared under different URL variants (``t.me/x`` vs ``telegram.me/x``)
deduplicates to one record.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_PATTERNS",
    "GroupURL",
    "extract_group_urls",
    "platform_of_url",
]

#: The six search patterns, exactly as the paper queried Twitter.
DEFAULT_PATTERNS: Tuple[str, ...] = (
    "chat.whatsapp.com/",
    "t.me/",
    "telegram.me/",
    "telegram.org/",
    "discord.gg/",
    "discord.com/",
)

#: (platform, compiled regex) in match-priority order.  Discord's
#: ``discord.com`` pattern is restricted to ``/invite/`` paths when
#: extracting ids (the search pattern is broader, as in the paper, but
#: non-invite discord.com links carry no group id).
_PLATFORM_RES: Tuple[Tuple[str, re.Pattern], ...] = (
    (
        "whatsapp",
        re.compile(r"chat\.whatsapp\.com/(?:invite/)?([A-Za-z0-9]{8,32})"),
    ),
    (
        "telegram",
        re.compile(
            r"(?:t\.me|telegram\.me|telegram\.org)/"
            r"(?:joinchat/)?([A-Za-z0-9_]{4,40})"
        ),
    ),
    (
        "discord",
        re.compile(r"(?:discord\.gg|discord\.com/invite)/([A-Za-z0-9]{2,16})"),
    ),
)


@dataclass(frozen=True)
class GroupURL:
    """A group URL extracted from a tweet.

    Attributes:
        platform: Messaging platform the URL belongs to.
        code: The platform-local invite code / public name.
        url: The URL as it appeared in the tweet.
    """

    platform: str
    code: str
    url: str

    @property
    def canonical(self) -> str:
        """Deduplication key: platform plus invite code."""
        return f"{self.platform}:{self.code}"


def platform_of_url(url: str) -> Optional[str]:
    """Return the platform a URL belongs to, or None."""
    for platform, regex in _PLATFORM_RES:
        if regex.search(url):
            return platform
    return None


def extract_group_urls(urls: Iterable[str]) -> List[GroupURL]:
    """Extract every group URL from an iterable of URL strings.

    A single tweet can carry several group URLs (even for different
    platforms); all are returned, duplicates included — callers that
    want per-tweet deduplication can key on :attr:`GroupURL.canonical`.
    """
    found: List[GroupURL] = []
    for url in urls:
        for platform, regex in _PLATFORM_RES:
            match = regex.search(url)
            if match:
                found.append(
                    GroupURL(platform=platform, code=match.group(1), url=url)
                )
                break
    return found
