"""Joining sampled groups and collecting in-group data (Section 3.3).

The paper joined 416 WhatsApp groups, 100 Telegram groups, and 100
Discord servers, selected uniformly at random, each platform under its
own constraints:

* WhatsApp — no API; Web-client accounts, each banned somewhere between
  250 and 300 joined groups, so several accounts (SIM cards) are needed
  for 416 groups.  Only post-join messages are visible.
* Telegram — official API; full history since creation; member lists
  hidden by admins in most groups; phone numbers visible only on opt-in.
* Discord — bots cannot self-join, so a regular user account is used
  (limit: 100 servers).  Full history; profiles leak linked accounts.

Messages are aggregated at collection time (counts by type, day, and
sender); raw phone numbers are hashed on sight.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import JoinedGroupData, UserObservation
from repro.core.discovery import URLRecord
from repro.errors import (
    GroupFullError,
    JoinLimitError,
    MemberListHiddenError,
    RevokedURLError,
    TransientError,
    UnknownURLError,
)
from repro.faults import FaultInjector, FaultyDiscordAPI, FaultyJoinClient, FaultyPreviewClient
from repro.platforms.base import Message
from repro.platforms.discord import DiscordAPI, DiscordService
from repro.platforms.telegram import TelegramAPI, TelegramService, TelegramWebClient
from repro.platforms.whatsapp import WhatsAppAccount, WhatsAppService
from repro.privacy.hashing import PhoneHasher
from repro.resilience import ResilienceExecutor
from repro.rng import derive_rng
from repro.telemetry import Telemetry

__all__ = ["GroupJoiner", "DEFAULT_JOIN_TARGETS"]

#: The paper's joined-group counts per platform.
DEFAULT_JOIN_TARGETS: Dict[str, int] = {
    "whatsapp": 416,
    "telegram": 100,
    "discord": 100,
}


class GroupJoiner:
    """Joins a uniform-random sample of discovered groups per platform."""

    def __init__(
        self,
        whatsapp: WhatsAppService,
        telegram: TelegramService,
        discord: DiscordService,
        hasher: PhoneHasher,
        seed: int,
        member_fetch_cap: int = 5_000,
        resilience: Optional[ResilienceExecutor] = None,
        injector: Optional[FaultInjector] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._services = {
            "whatsapp": whatsapp,
            "telegram": telegram,
            "discord": discord,
        }
        self._hasher = hasher
        self._seed = seed
        self._member_fetch_cap = member_fetch_cap
        self._resilience = resilience or ResilienceExecutor(seed=seed)
        self._injector = injector
        #: Join-capable clients (possibly behind fault proxies).
        self._wa_accounts: List[object] = []
        self._tg_api = self._wrap_join(
            TelegramAPI(telegram, "tg-study-account"), "telegram"
        )
        tg_web = TelegramWebClient(telegram)
        if injector is not None:
            tg_web = FaultyPreviewClient(tg_web, injector, "telegram")
        self._tg_web = tg_web
        self._dc_apis: List[object] = []
        #: canonical -> (platform-specific join handle info)
        self._joined: List[Tuple[URLRecord, float, object]] = []

    def _wrap_join(self, client: object, platform: str) -> object:
        """Put a join-capable client behind the fault proxy, if any."""
        if self._injector is None:
            return client
        return FaultyJoinClient(client, self._injector, platform)

    def reseed(self, seed: int) -> None:
        """Change the seed for *future* join sampling (checkpoint forks)."""
        self._seed = seed

    def replace_injector(self, injector: Optional[FaultInjector]) -> None:
        """Re-wrap every join-capable client under a new fault plan.

        Used by checkpoint forks.  Existing memberships survive: the
        handles recorded in ``_joined`` are remapped onto the freshly
        wrapped clients, so post-fork collection (message history,
        invite re-reads) flows through the new injector — or through
        no proxy at all when the fork removes faults.
        """
        from repro.faults.proxies import FaultProxy

        def bare(client: object) -> object:
            while isinstance(client, FaultProxy):
                client = client._target
            return client

        self._injector = injector
        remapped: Dict[int, object] = {}

        def rewrap(client: object, wrap) -> object:
            old = client
            new = wrap(bare(client))
            remapped[id(old)] = new
            return new

        def wrap_preview(client: object) -> object:
            if injector is None:
                return client
            return FaultyPreviewClient(client, injector, "telegram")

        def wrap_discord(client: object) -> object:
            if injector is None:
                return client
            return FaultyDiscordAPI(client, injector)

        self._tg_api = rewrap(
            self._tg_api, lambda c: self._wrap_join(c, "telegram")
        )
        self._tg_web = rewrap(self._tg_web, wrap_preview)
        self._wa_accounts = [
            rewrap(account, lambda c: self._wrap_join(c, "whatsapp"))
            for account in self._wa_accounts
        ]
        self._dc_apis = [rewrap(api, wrap_discord) for api in self._dc_apis]
        self._joined = [
            (record, join_t, remapped.get(id(handle), handle))
            for record, join_t, handle in self._joined
        ]

    # -- joining -------------------------------------------------------------

    def join_sample(
        self,
        records: Sequence[URLRecord],
        targets: Dict[str, int],
        join_t: float,
    ) -> int:
        """Join up to ``targets[platform]`` groups per platform.

        Candidates are shuffled uniformly at random; dead invites
        encountered at join time are skipped (and do not count).
        Returns the number of groups actually joined.
        """
        rng = derive_rng(self._seed, "joiner/sample")
        joined = 0
        for platform, target in targets.items():
            candidates = [r for r in records if r.platform == platform]
            order = rng.permutation(len(candidates))
            count = 0
            for idx in order:
                if count >= target:
                    break
                record = candidates[int(idx)]
                handle = self._join_one(platform, record, join_t)
                if handle is not None:
                    self._joined.append((record, join_t, handle))
                    count += 1
            self._telemetry.count(
                "join_joined_total", count, platform=platform
            )
            joined += count
        return joined

    def _join_one(
        self, platform: str, record: URLRecord, join_t: float
    ) -> Optional[object]:
        try:
            return self._resilience.call(
                platform,
                "join",
                join_t,
                lambda: self._join_one_attempt(platform, record, join_t),
            )
        except (RevokedURLError, UnknownURLError, GroupFullError):
            self._telemetry.count(
                "join_dead_invites_total", platform=platform
            )
            return None
        except TransientError:
            # Retries exhausted (or breaker open): skip this candidate
            # rather than abort the join day.
            self._resilience.health.bump(
                platform, int(join_t), "join_skips"
            )
            self._telemetry.count("join_skips_total", platform=platform)
            return None

    def _join_one_attempt(
        self, platform: str, record: URLRecord, join_t: float
    ) -> object:
        if platform == "whatsapp":
            return self._join_whatsapp(record, join_t)
        if platform == "telegram":
            self._tg_api.join(record.url, join_t)
            return self._tg_api
        return self._join_discord(record, join_t)

    def _join_whatsapp(self, record: URLRecord, join_t: float) -> object:
        while True:
            if not self._wa_accounts:
                self._new_wa_account()
            account = self._wa_accounts[-1]
            try:
                account.join(record.url, join_t)
                return account
            except JoinLimitError:
                self._new_wa_account()

    def _new_wa_account(self) -> None:
        account_id = f"wa-study-{len(self._wa_accounts)}"
        self._wa_accounts.append(
            self._wrap_join(
                WhatsAppAccount(self._services["whatsapp"], account_id),
                "whatsapp",
            )
        )
        self._telemetry.count("join_accounts_total", platform="whatsapp")

    def _join_discord(self, record: URLRecord, join_t: float) -> object:
        while True:
            if not self._dc_apis:
                self._new_dc_api()
            api = self._dc_apis[-1]
            try:
                api.join(record.url, join_t)
                return api
            except JoinLimitError:
                self._new_dc_api()

    def _new_dc_api(self) -> None:
        account_id = f"dc-study-{len(self._dc_apis)}"
        api = DiscordAPI(self._services["discord"], account_id)
        if self._injector is not None:
            api = FaultyDiscordAPI(api, self._injector)
        self._dc_apis.append(api)
        self._telemetry.count("join_accounts_total", platform="discord")

    @property
    def n_joined(self) -> int:
        """Groups joined so far."""
        return len(self._joined)

    # -- collection --------------------------------------------------------

    def collect(
        self, until_t: float, message_scale: float = 1.0
    ) -> Tuple[List[JoinedGroupData], Dict[Tuple[str, str], UserObservation]]:
        """Collect messages and user observations from all joined groups."""
        joined_data: List[JoinedGroupData] = []
        users: Dict[Tuple[str, str], UserObservation] = {}
        for record, join_t, handle in self._joined:
            if record.platform == "whatsapp":
                data = self._collect_whatsapp(
                    record, join_t, handle, until_t, message_scale, users
                )
            elif record.platform == "telegram":
                data = self._collect_telegram(
                    record, join_t, until_t, message_scale, users
                )
            else:
                data = self._collect_discord(
                    record, join_t, handle, until_t, message_scale, users
                )
            self._telemetry.count(
                "collect_groups_total", platform=record.platform
            )
            self._telemetry.count(
                "collect_messages_total",
                data.n_messages,
                platform=record.platform,
            )
            joined_data.append(data)
        self._telemetry.gauge("collect_users_observed", len(users))
        return joined_data, users

    def _aggregate_messages(
        self, data: JoinedGroupData, messages: Iterable[Message]
    ) -> None:
        for message in messages:
            data.n_messages += 1
            data.type_counts[message.mtype] = (
                data.type_counts.get(message.mtype, 0) + 1
            )
            day = int(np.floor(message.t))
            data.daily_counts[day] = data.daily_counts.get(day, 0) + 1
            data.sender_counts[message.sender_id] = (
                data.sender_counts.get(message.sender_id, 0) + 1
            )

    def _collect_whatsapp(
        self,
        record: URLRecord,
        join_t: float,
        account: WhatsAppAccount,
        until_t: float,
        message_scale: float,
        users: Dict[Tuple[str, str], UserObservation],
    ) -> JoinedGroupData:
        gid = self._services["whatsapp"].group_by_invite(record.code).gid
        data = JoinedGroupData(
            platform="whatsapp",
            canonical=record.canonical,
            gid=gid,
            join_t=join_t,
            created_t=account.creation_date(gid),
        )
        self._aggregate_messages(
            data,
            account.messages(gid, until_t, scale=message_scale, with_text=False),
        )
        phones = account.member_phone_numbers(gid, until_t)
        data.member_ids = list(phones)
        data.size_at_join = len(phones)
        for user_id, phone in phones.items():
            hashed = self._hasher.record(phone)
            users.setdefault(
                ("whatsapp", user_id),
                UserObservation(
                    platform="whatsapp",
                    user_id=user_id,
                    phone_hash=hashed,
                    country=hashed.country,
                    via="member_list",
                ),
            )
        return data

    def _collect_telegram(
        self,
        record: URLRecord,
        join_t: float,
        until_t: float,
        message_scale: float,
        users: Dict[Tuple[str, str], UserObservation],
    ) -> JoinedGroupData:
        api = self._tg_api
        gid = self._services["telegram"].group_by_invite(record.code).gid
        data = JoinedGroupData(
            platform="telegram",
            canonical=record.canonical,
            gid=gid,
            join_t=join_t,
            kind=api.kind(gid),
            created_t=api.creation_date(gid),
            creator_id=api.creator(gid),
        )
        self._aggregate_messages(
            data, api.history(gid, until_t, scale=message_scale, with_text=False)
        )
        # Total size comes from the group's public web page (the paper's
        # 688 K Telegram members include groups with hidden member lists).
        try:
            data.size_at_join = self._resilience.call(
                "telegram",
                "preview",
                join_t,
                lambda: self._tg_web.preview(record.url, join_t),
            ).size
        except (RevokedURLError, UnknownURLError, TransientError):
            pass
        try:
            member_ids = api.members(gid, until_t)
            data.member_ids = member_ids[: self._member_fetch_cap]
            for user_id in data.member_ids:
                self._observe_telegram_user(api, user_id, "member_list", users)
        except MemberListHiddenError:
            data.member_list_hidden = True
        for user_id in data.sender_counts:
            self._observe_telegram_user(api, user_id, "poster", users)
        return data

    def _observe_telegram_user(
        self,
        api: TelegramAPI,
        user_id: str,
        via: str,
        users: Dict[Tuple[str, str], UserObservation],
    ) -> None:
        key = ("telegram", user_id)
        if key in users:
            return
        info = api.get_user(user_id)
        hashed = self._hasher.record(info.phone) if info.phone else None
        users[key] = UserObservation(
            platform="telegram",
            user_id=user_id,
            phone_hash=hashed,
            country=hashed.country if hashed else "",
            via=via,
        )

    def _collect_discord(
        self,
        record: URLRecord,
        join_t: float,
        api: DiscordAPI,
        until_t: float,
        message_scale: float,
        users: Dict[Tuple[str, str], UserObservation],
    ) -> JoinedGroupData:
        service = self._services["discord"]
        gid = service.group_by_invite(record.code).gid
        data = JoinedGroupData(
            platform="discord",
            canonical=record.canonical,
            gid=gid,
            join_t=join_t,
        )
        # Invite metadata (creation date, size) was read at join time;
        # re-reading may fail if the invite has since expired.
        try:
            info = self._resilience.call(
                "discord",
                "invite",
                join_t,
                lambda: api.get_invite(record.url, join_t),
            )
            data.created_t = info.created_t
            data.size_at_join = info.size
            data.creator_id = info.creator_id
        except (RevokedURLError, UnknownURLError, TransientError):
            pass
        self._aggregate_messages(
            data, api.history(gid, until_t, scale=message_scale, with_text=False)
        )
        for user_id in data.sender_counts:
            key = ("discord", user_id)
            if key in users:
                continue
            info_user = api.get_user(user_id)
            users[key] = UserObservation(
                platform="discord",
                user_id=user_id,
                linked_accounts=info_user.linked_accounts,
                via="poster",
            )
        return data
