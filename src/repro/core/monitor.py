"""Daily group-metadata monitoring (Section 3.2).

From the day a URL is discovered until it is revoked, the monitor
visits it once per day through the cheapest observation channel each
platform offers *without joining*:

* WhatsApp — Web-client landing page (title, size, creator phone).
* Telegram — group web page (title, size, online count, kind).
* Discord — REST ``get_invite`` (title, sizes, creator, creation date).

Revoked landing pages show nothing but the revocation notice, so the
monitor records a dead snapshot and drops the URL from its active set.
Creator phone numbers are hashed before storage (ethics protocol).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.dataset import Snapshot
from repro.core.discovery import URLRecord
from repro.errors import RevokedURLError, UnknownURLError
from repro.platforms.base import GroupKind
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher

__all__ = ["MetadataMonitor", "MONITOR_HOUR_FRAC"]

#: Fraction of the day at which the daily snapshot is taken (a late
#: evening pass over the whole catalogue).
MONITOR_HOUR_FRAC = 0.98


class MetadataMonitor:
    """Tracks every discovered URL with one snapshot per day."""

    def __init__(
        self,
        whatsapp: WhatsAppWebClient,
        telegram: TelegramWebClient,
        discord: DiscordAPI,
        hasher: PhoneHasher,
    ) -> None:
        self._whatsapp = whatsapp
        self._telegram = telegram
        self._discord = discord
        self._hasher = hasher
        #: canonical -> snapshots, chronological.
        self.snapshots: Dict[str, List[Snapshot]] = {}
        self._dead: set = set()

    def observe_day(self, day: int, records: Iterable[URLRecord]) -> None:
        """Take the day's snapshot of every live, already-discovered URL."""
        t = day + MONITOR_HOUR_FRAC
        for record in records:
            if record.canonical in self._dead:
                continue
            if record.first_seen_t > t:
                continue  # not discovered yet at observation time
            snapshot = self._observe_one(record, day, t)
            self.snapshots.setdefault(record.canonical, []).append(snapshot)
            if not snapshot.alive:
                self._dead.add(record.canonical)

    def _observe_one(self, record: URLRecord, day: int, t: float) -> Snapshot:
        try:
            if record.platform == "whatsapp":
                return self._observe_whatsapp(record, day, t)
            if record.platform == "telegram":
                return self._observe_telegram(record, day, t)
            return self._observe_discord(record, day, t)
        except (RevokedURLError, UnknownURLError):
            return Snapshot(
                canonical=record.canonical, day=day, t=t, alive=False
            )

    def _observe_whatsapp(self, record: URLRecord, day: int, t: float) -> Snapshot:
        preview = self._whatsapp.preview(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=preview.size,
            title=preview.title,
            kind=GroupKind.GROUP,
            creator_dialing_code=preview.creator_dialing_code,
            creator_phone_hash=self._hasher.record(preview.creator_phone),
        )

    def _observe_telegram(self, record: URLRecord, day: int, t: float) -> Snapshot:
        preview = self._telegram.preview(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=preview.size,
            online=preview.online,
            title=preview.title,
            kind=preview.kind,
        )

    def _observe_discord(self, record: URLRecord, day: int, t: float) -> Snapshot:
        info = self._discord.get_invite(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=info.size,
            online=info.online,
            title=info.title,
            kind=GroupKind.SERVER,
            creator_id=info.creator_id,
            created_t=info.created_t,
        )

    def is_dead(self, canonical: str) -> bool:
        """True if the monitor has seen this URL's revocation."""
        return canonical in self._dead
