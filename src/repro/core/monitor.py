"""Daily group-metadata monitoring (Section 3.2).

From the day a URL is discovered until it is revoked, the monitor
visits it once per day through the cheapest observation channel each
platform offers *without joining*:

* WhatsApp — Web-client landing page (title, size, creator phone).
* Telegram — group web page (title, size, online count, kind).
* Discord — REST ``get_invite`` (title, sizes, creator, creation date).

Revoked landing pages show nothing but the revocation notice, so the
monitor records a dead snapshot and drops the URL from its active set;
a URL that never matched any group records a dead snapshot with
``state='unknown'`` so revocation analyses do not count it.  Transient
failures (timeouts, rate limits, unreachable pages) go through the
resilience layer — retries with backoff, per-platform breakers — and,
if they still fail, yield a ``missed`` snapshot: the URL stays in the
active set and is re-probed the next day, never falsely marked dead.
Creator phone numbers are hashed before storage (ethics protocol).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.dataset import Snapshot
from repro.core.discovery import URLRecord
from repro.errors import CircuitOpenError, RevokedURLError, TransientError, UnknownURLError
from repro.platforms.base import GroupKind
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.resilience import ResilienceExecutor
from repro.telemetry import Telemetry

__all__ = ["MetadataMonitor", "MONITOR_HOUR_FRAC"]

#: Fraction of the day at which the daily snapshot is taken (a late
#: evening pass over the whole catalogue).
MONITOR_HOUR_FRAC = 0.98


def _outcome(snapshot: Snapshot) -> str:
    """Telemetry label for what one probe actually observed."""
    if not snapshot.alive:
        return "unknown" if snapshot.state == "unknown" else "revoked"
    return "missed" if snapshot.state == "missed" else "observed"


class MetadataMonitor:
    """Tracks every discovered URL with one snapshot per day."""

    def __init__(
        self,
        whatsapp: WhatsAppWebClient,
        telegram: TelegramWebClient,
        discord: DiscordAPI,
        hasher: PhoneHasher,
        resilience: Optional[ResilienceExecutor] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._whatsapp = whatsapp
        self._telegram = telegram
        self._discord = discord
        self._hasher = hasher
        self._resilience = resilience or ResilienceExecutor()
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        #: canonical -> snapshots, chronological.
        self.snapshots: Dict[str, List[Snapshot]] = {}
        self._dead: set = set()

    @property
    def health(self):
        """The failure ledger shared with the resilience executor."""
        return self._resilience.health

    def clients(self):
        """The (whatsapp, telegram, discord) observation clients."""
        return self._whatsapp, self._telegram, self._discord

    def replace_clients(
        self,
        whatsapp: WhatsAppWebClient,
        telegram: TelegramWebClient,
        discord: DiscordAPI,
    ) -> None:
        """Swap the observation clients, keeping all snapshot state.

        Used by checkpoint forks to re-wrap the clients under a
        different fault plan: snapshots and the dead-URL set carry
        over unchanged.
        """
        self._whatsapp = whatsapp
        self._telegram = telegram
        self._discord = discord

    @staticmethod
    def observation_time(day: int) -> float:
        """The instant day ``day``'s snapshot pass runs (the evening pass)."""
        return day + MONITOR_HOUR_FRAC

    def due(self, record: URLRecord, t: float) -> bool:
        """Whether ``record`` gets a probe at observation time ``t``.

        A URL is due iff its revocation has not been seen and it was
        discovered *at or before* ``t``: the discovery-time boundary is
        closed, so ``first_seen_t == t`` is probed the same day.  This
        predicate is the single source of truth for both the sequential
        loop and the parallel engine's shard lists — sharded and
        sequential runs can never disagree about a day's probe set.
        """
        return (
            record.canonical not in self._dead
            and record.first_seen_t <= t
        )

    def observe_day(self, day: int, records: Iterable[URLRecord]) -> None:
        """Take the day's snapshot of every live, already-discovered URL.

        A URL is probed iff :meth:`due` says so at
        ``observation_time(day)``; in particular a URL discovered at
        exactly the observation instant is probed that same day (closed
        boundary).  A transient platform failure never escapes this
        loop: the affected URL gets a ``missed`` snapshot and the
        remaining probes proceed (or are cheaply deferred while that
        platform's breaker is open).
        """
        t = self.observation_time(day)
        for record in records:
            if not self.due(record, t):
                continue
            snapshot = self._observe_one(record, day, t)
            self.snapshots.setdefault(record.canonical, []).append(snapshot)
            self._telemetry.count(
                "monitor_snapshots_total",
                platform=record.platform,
                outcome=_outcome(snapshot),
            )
            if not snapshot.alive:
                self._dead.add(record.canonical)
        self._telemetry.gauge("monitor_dead_urls", len(self._dead))

    def merge_day(
        self,
        day: int,
        records: Iterable[URLRecord],
        outcomes: Dict[str, Snapshot],
    ) -> None:
        """Apply day ``day``'s precomputed snapshots (parallel merge).

        The counterpart of :meth:`observe_day` for the parallel
        engine's snapshot mode: ``outcomes`` maps canonical URL to the
        finished snapshot a worker computed for it.  Snapshots are
        applied in the sequential loop's iteration order over
        ``records`` — filtered by the same :meth:`due` predicate — so
        dict insertion order, the dead set and the day-end gauge evolve
        exactly as a sequential pass would.  Per-probe telemetry
        (snapshot counters, resilience histograms) was recorded
        worker-side and arrives via the registry merge, not here.
        """
        t = self.observation_time(day)
        for record in records:
            if not self.due(record, t):
                continue
            snapshot = outcomes[record.canonical]
            self.snapshots.setdefault(record.canonical, []).append(snapshot)
            if not snapshot.alive:
                self._dead.add(record.canonical)
        # Set after the merged per-shard registries (whose shard-local
        # values of this gauge are meaningless) so the campaign value
        # wins.
        self._telemetry.gauge("monitor_dead_urls", len(self._dead))

    def _observe_one(self, record: URLRecord, day: int, t: float) -> Snapshot:
        try:
            return self._resilience.call(
                record.platform,
                "observe",
                t,
                lambda: self._observe_platform(record, day, t),
            )
        except RevokedURLError:
            return Snapshot(
                canonical=record.canonical, day=day, t=t, alive=False
            )
        except UnknownURLError:
            return Snapshot(
                canonical=record.canonical,
                day=day,
                t=t,
                alive=False,
                state="unknown",
            )
        except CircuitOpenError:
            # Breaker open: the probe was deferred without touching
            # the platform.  Re-probe tomorrow.  Counted once, as
            # ``deferred`` — never also as ``missed``, so the ledger's
            # per-day totals add up to the number of probes issued.
            self.health.bump(record.platform, day, "deferred")
            return self._missed_snapshot(record, day, t)
        except TransientError:
            self.health.bump(record.platform, day, "missed")
            return self._missed_snapshot(record, day, t)

    def _missed_snapshot(self, record: URLRecord, day: int, t: float) -> Snapshot:
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            state="missed",
        )

    def _observe_platform(
        self, record: URLRecord, day: int, t: float
    ) -> Snapshot:
        if record.platform == "whatsapp":
            return self._observe_whatsapp(record, day, t)
        if record.platform == "telegram":
            return self._observe_telegram(record, day, t)
        return self._observe_discord(record, day, t)

    def _observe_whatsapp(self, record: URLRecord, day: int, t: float) -> Snapshot:
        preview = self._whatsapp.preview(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=preview.size,
            title=preview.title,
            kind=GroupKind.GROUP,
            creator_dialing_code=preview.creator_dialing_code,
            creator_phone_hash=self._hasher.record(preview.creator_phone),
        )

    def _observe_telegram(self, record: URLRecord, day: int, t: float) -> Snapshot:
        preview = self._telegram.preview(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=preview.size,
            online=preview.online,
            title=preview.title,
            kind=preview.kind,
        )

    def _observe_discord(self, record: URLRecord, day: int, t: float) -> Snapshot:
        info = self._discord.get_invite(record.url, t)
        return Snapshot(
            canonical=record.canonical,
            day=day,
            t=t,
            alive=True,
            size=info.size,
            online=info.online,
            title=info.title,
            kind=GroupKind.SERVER,
            creator_id=info.creator_id,
            created_t=info.created_t,
        )

    def is_dead(self, canonical: str) -> bool:
        """True if the monitor has seen this URL's revocation."""
        return canonical in self._dead
