"""Group-URL discovery: hourly Search polls merged with the Stream.

The paper used both of Twitter's APIs because "a preliminary
investigation revealed discrepancies between the tweets retrieved
using the two APIs" — each API misses tweets the other catches.  The
:class:`DiscoveryEngine` reproduces that double collection: 24 Search
polls per day (each with the API's 7-day lookback) plus the filtered
Stream, deduplicated by tweet id, with per-source provenance kept so
the merge benefit can be measured (the discovery ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.patterns import DEFAULT_PATTERNS, extract_group_urls
from repro.errors import TransientError
from repro.resilience import ResilienceExecutor
from repro.telemetry import Telemetry
from repro.twitter.model import Tweet
from repro.twitter.search import SearchAPI
from repro.twitter.streaming import StreamingAPI

__all__ = ["DiscoveryEngine", "URLRecord"]

#: Search polls per day (the paper queried the Search API every hour).
POLLS_PER_DAY = 24


@dataclass
class URLRecord:
    """Everything discovery learns about one canonical group URL.

    Attributes:
        canonical: ``platform:code`` deduplication key.
        platform: Messaging platform.
        code: Invite code / public name.
        url: A representative full URL (for the monitor to visit).
        first_seen_t: Time of the earliest collected tweet sharing it.
        shares: (tweet_id, t) of every collected sharing tweet.
        via_search: Tweets contributed by the Search API.
        via_stream: Tweets contributed by the Streaming API.
    """

    canonical: str
    platform: str
    code: str
    url: str
    first_seen_t: float
    shares: List[Tuple[int, float]] = field(default_factory=list)
    via_search: int = 0
    via_stream: int = 0

    @property
    def n_shares(self) -> int:
        """Number of distinct tweets sharing this URL."""
        return len(self.shares)

    @property
    def share_days(self) -> List[int]:
        """Whole-day indices on which the URL was shared."""
        return [int(t) for _, t in self.shares]


class DiscoveryEngine:
    """Collects and merges group-URL tweets from both Twitter APIs."""

    def __init__(
        self,
        search: Optional[SearchAPI],
        stream: Optional[StreamingAPI],
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        resilience: Optional[ResilienceExecutor] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if search is None and stream is None:
            raise ValueError("at least one of search/stream is required")
        self._search = search
        self._stream = stream
        self._patterns = tuple(patterns)
        self._resilience = resilience or ResilienceExecutor()
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._last_search_t: Optional[float] = None
        #: canonical -> record
        self.records: Dict[str, URLRecord] = {}
        #: tweet_id -> tweet, for every collected matching tweet
        self.tweets: Dict[int, Tweet] = {}
        #: tweet_id -> set of sources that delivered it
        self._provenance: Dict[int, set] = {}

    def replace_clients(
        self, search: Optional[SearchAPI], stream: Optional[StreamingAPI]
    ) -> None:
        """Swap the API clients, keeping all collection state.

        Used by checkpoint forks to re-wrap the clients under a
        different fault plan: records, tweets, provenance, and the
        Search ``since`` cursor all carry over.
        """
        if search is None and stream is None:
            raise ValueError("at least one of search/stream is required")
        self._search = search
        self._stream = stream

    def run_day(self, day: int) -> None:
        """Run one day of collection: 24 Search polls plus the stream.

        A poll that fails transiently (after retries / while the
        Twitter breaker is open) is skipped without advancing the
        ``since`` cursor, so the next successful poll re-covers the
        gap through the API's 7-day lookback.  A dropped stream window
        loses that day's deliveries — the Search side usually catches
        them, exactly the redundancy the paper's double collection
        bought.
        """
        tel = self._telemetry
        if self._search is not None:
            for hour in range(1, POLLS_PER_DAY + 1):
                now = day + hour / POLLS_PER_DAY
                try:
                    results = self._resilience.call(
                        "twitter",
                        "search",
                        now,
                        lambda: self._search.search(
                            self._patterns, now, since=self._last_search_t
                        ),
                    )
                except TransientError:
                    self._resilience.health.bump("twitter", day, "missed")
                    tel.count("discovery_missed_total", source="search")
                    continue
                tel.count("discovery_polls_total", source="search")
                tel.count(
                    "discovery_tweets_total", len(results), source="search"
                )
                self._ingest(results, "search")
                self._last_search_t = now
        if self._stream is not None:
            try:
                delivered = self._resilience.call(
                    "twitter",
                    "stream",
                    day + 1,
                    lambda: self._stream.filtered(
                        self._patterns, day, day + 1
                    ),
                )
                tel.count("discovery_polls_total", source="stream")
                tel.count(
                    "discovery_tweets_total", len(delivered), source="stream"
                )
            except TransientError:
                self._resilience.health.bump("twitter", day, "missed")
                tel.count("discovery_missed_total", source="stream")
                delivered = []
            self._ingest(delivered, "stream")
        tel.gauge("discovery_records", len(self.records))
        tel.gauge("discovery_distinct_tweets", len(self.tweets))

    def _ingest(self, tweets: Iterable[Tweet], source: str) -> None:
        for tweet in tweets:
            first_time = tweet.tweet_id not in self.tweets
            if first_time:
                self.tweets[tweet.tweet_id] = tweet
                self._provenance[tweet.tweet_id] = set()
            sources = self._provenance[tweet.tweet_id]
            count_for_source = source not in sources
            sources.add(source)
            if not first_time and not count_for_source:
                continue
            for group_url in extract_group_urls(tweet.urls):
                record = self.records.get(group_url.canonical)
                if record is None:
                    record = URLRecord(
                        canonical=group_url.canonical,
                        platform=group_url.platform,
                        code=group_url.code,
                        url=group_url.url,
                        first_seen_t=tweet.t,
                    )
                    self.records[group_url.canonical] = record
                if first_time:
                    record.shares.append((tweet.tweet_id, tweet.t))
                    record.first_seen_t = min(record.first_seen_t, tweet.t)
                if count_for_source:
                    if source == "search":
                        record.via_search += 1
                    else:
                        record.via_stream += 1

    # -- summaries ---------------------------------------------------------

    def records_for(self, platform: str) -> List[URLRecord]:
        """All records belonging to one platform."""
        return [r for r in self.records.values() if r.platform == platform]

    def n_tweets(self, platform: Optional[str] = None) -> int:
        """Distinct collected tweets (optionally for one platform)."""
        if platform is None:
            return len(self.tweets)
        seen: set = set()
        for record in self.records_for(platform):
            seen.update(tid for tid, _ in record.shares)
        return len(seen)

    def n_authors(self, platform: Optional[str] = None) -> int:
        """Distinct tweet authors (optionally for one platform)."""
        if platform is None:
            return len({tw.author_id for tw in self.tweets.values()})
        authors: set = set()
        for record in self.records_for(platform):
            for tid, _ in record.shares:
                authors.add(self.tweets[tid].author_id)
        return len(authors)
