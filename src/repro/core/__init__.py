"""The paper's measurement pipeline (its primary contribution).

Five stages, mirroring Section 3:

1. :mod:`~repro.core.patterns` — the six invite-URL patterns and their
   extraction/canonicalisation from tweets.
2. :mod:`~repro.core.discovery` — hourly Search polls merged with the
   Streaming API into a deduplicated URL catalogue.
3. :mod:`~repro.core.monitor` — one metadata snapshot per discovered
   group per day, until revocation.
4. :mod:`~repro.core.joiner` — joining a uniform-random sample of
   groups under each platform's constraints, collecting messages and
   user observations.
5. :mod:`~repro.core.study` — the end-to-end orchestrator producing a
   :class:`~repro.core.dataset.StudyDataset` for the analyses.
"""

from repro.core.dataset import JoinedGroupData, Snapshot, StudyDataset, UserObservation
from repro.core.discovery import DiscoveryEngine, URLRecord
from repro.core.joiner import GroupJoiner
from repro.core.monitor import MetadataMonitor
from repro.core.patterns import (
    DEFAULT_PATTERNS,
    GroupURL,
    extract_group_urls,
    platform_of_url,
)
from repro.core.study import Study, StudyConfig

__all__ = [
    "DEFAULT_PATTERNS",
    "DiscoveryEngine",
    "GroupJoiner",
    "GroupURL",
    "JoinedGroupData",
    "MetadataMonitor",
    "Snapshot",
    "Study",
    "StudyConfig",
    "StudyDataset",
    "URLRecord",
    "UserObservation",
    "extract_group_urls",
    "platform_of_url",
]
